"""Tests for slow-path capacity limits and fail-open behaviour."""

import pytest

from helpers import attack_payload, attack_ruleset, signature_span
from repro.core import AlertKind, SplitDetectIPS
from repro.evasion import build_attack
from repro.traffic import inject_attacks


def many_attacks(count, strategy="tcp_seg_8"):
    return [
        build_attack(
            strategy,
            attack_payload(),
            signature_span=signature_span(),
            src=f"10.77.0.{i + 1}",
            seed=i,
        )
        for i in range(count)
    ]


def run(ips, packets):
    alerts = []
    for packet in packets:
        alerts.extend(ips.process(packet))
    return alerts


class TestOverload:
    def test_unbounded_by_default(self):
        ips = SplitDetectIPS(attack_ruleset())
        merged = inject_attacks([], many_attacks(6))
        alerts = run(ips, merged)
        assert ips.overload_refusals == 0
        assert not any(a.kind is AlertKind.RESOURCE for a in alerts)

    def test_capacity_refusals_counted_and_alerted(self):
        ips = SplitDetectIPS(attack_ruleset(), slow_capacity_flows=2, probation_packets=0)
        merged = inject_attacks([], many_attacks(6))
        alerts = run(ips, merged)
        assert ips.overload_refusals > 0
        resource = [a for a in alerts if a.kind is AlertKind.RESOURCE]
        assert resource, "overload must be visible"
        # One RESOURCE alert per refused flow, not per packet.
        assert len(resource) == len({a.flow.canonical() for a in resource})

    def test_accepted_flows_still_detected(self):
        ips = SplitDetectIPS(attack_ruleset(), slow_capacity_flows=2, probation_packets=0)
        merged = inject_attacks([], many_attacks(6))
        alerts = run(ips, merged)
        caught = {
            a.flow.canonical()
            for a in alerts
            if a.sid == 5001 and a.kind in (AlertKind.SIGNATURE, AlertKind.PARTIAL_SIGNATURE)
        }
        assert len(caught) >= 2  # at least the flows that fit the capacity

    def test_fail_open_flow_keeps_fastpath_coverage(self):
        """A refused flow is still scanned per packet: an attack that puts
        the whole signature in one packet is caught even under overload."""
        ips = SplitDetectIPS(attack_ruleset(), slow_capacity_flows=1, probation_packets=0)
        # Saturate the slow path with one tiny-segment flow.
        saturate = many_attacks(1, strategy="tcp_seg_8")[0]
        run(ips, saturate)
        assert ips.slow_path.active_flows >= 1
        # Now a plain attack (whole signature in one packet) from a new flow.
        plain = build_attack(
            "plain", attack_payload(), signature_span=signature_span(), src="10.88.0.1"
        )
        alerts = run(ips, plain)
        assert any(a.sid == 5001 and a.path == "fast" for a in alerts) or any(
            a.sid == 5001 for a in alerts
        )

    def test_fragment_refusal_fails_open(self):
        ips = SplitDetectIPS(attack_ruleset(), slow_capacity_flows=1, probation_packets=0)
        run(ips, many_attacks(1, strategy="tcp_seg_8")[0])
        frag_attack = build_attack(
            "ip_frag_8", attack_payload(), signature_span=signature_span(), src="10.88.0.2"
        )
        alerts = run(ips, frag_attack)
        assert any(a.kind is AlertKind.RESOURCE for a in alerts)
