"""Alert and diversion vocabulary shared by every IPS variant."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..packet import FlowKey


class DivertReason(enum.Enum):
    """Why the fast path handed a flow to the slow path."""

    PIECE_MATCH = "piece_match"
    """A signature piece appeared whole inside one packet."""

    TINY_SEGMENT = "tiny_segment"
    """A non-final data segment carried fewer than B payload bytes."""

    OUT_OF_ORDER = "out_of_order"
    """A data segment arrived past the expected sequence number."""

    RETRANSMISSION = "retransmission"
    """A data segment arrived at or before the expected sequence number."""

    IP_FRAGMENT = "ip_fragment"
    """The packet was an IP fragment (the fast path never defragments)."""

    SHORT_SIGNATURE = "short_signature"
    """An unsplittable (too short) signature matched whole in a packet.

    Retained for report compatibility: since the fast path started
    treating a fully-confirmed whole-signature match as a final verdict
    (alert, no slow-path round trip), nothing diverts with this reason.
    A whole match still *awaiting* its extra contents diverts as
    :attr:`PIECE_MATCH`."""

    TTL_FLOOR = "ttl_floor"
    """A data packet's TTL was low enough that it might expire between the
    IPS and the protected host -- the precondition of insertion attacks."""


class AlertKind(enum.Enum):
    """What an alert asserts about the flow."""

    SIGNATURE = "signature"
    """The signature byte string was observed in the (normalized) stream."""

    PARTIAL_SIGNATURE = "partial_signature"
    """A signature suffix aligned with the diversion point was observed;
    the prefix predates diversion and could not be re-examined."""

    AMBIGUITY = "ambiguity"
    """Overlapping data disagreed -- an evasion attempt in itself."""

    RESOURCE = "resource"
    """The slow path hit its provisioned capacity; a flow that should have
    been diverted is running fail-open with fast-path-only coverage."""


@dataclass(frozen=True)
class Alert:
    """One detection, attributable to a signature and a flow."""

    kind: AlertKind
    flow: FlowKey
    sid: int | None = None
    msg: str = ""
    stream_offset: int = 0
    timestamp: float = 0.0
    path: str = "slow"
    """Which path raised it: "fast" or "slow"."""

    def __str__(self) -> str:
        what = f"sid={self.sid}" if self.sid is not None else self.msg
        return f"[{self.kind.value}/{self.path}] {self.flow} {what} @{self.stream_offset}"


@dataclass(frozen=True)
class Diversion:
    """The moment a flow left the fast path."""

    flow: FlowKey
    reason: DivertReason
    timestamp: float
    detail: str = ""
