"""The sharded runtime: routing properties, equivalence, and merging.

The load-bearing guarantee is in the middle section: the unsharded
engine, :class:`SerialRunner` at N shards, and :class:`ParallelRunner`
at N workers must produce the *identical* ordered alert list and the
same summed packet/byte/diversion counters on the same trace -- both a
benign trace and an evasion gauntlet with fragmentation in it.
"""

from __future__ import annotations

import random

import pytest

from repro.core import SplitDetectIPS
from repro.evasion import build_attack
from repro.packet import FlowKey, IPv4Packet, TimedPacket, fragment
from repro.runtime import (
    Backpressure,
    EngineSpec,
    ParallelRunner,
    RunnerConfig,
    SerialRunner,
    ShardPolicy,
    ShardProcessor,
    ShardRouter,
    equivalence_digest,
    iter_batches,
    merge_shard_reports,
    shard_key_bytes,
)
from repro.runtime.report import ShardReport
from repro.signatures import SplitPolicy
from repro.traffic import TrafficProfile, generate_trace, inject_attacks

from helpers import ATTACK_SIGNATURE, SIGNATURE_OFFSET, attack_payload, attack_ruleset


# ---------------------------------------------------------------------------
# Routing properties
# ---------------------------------------------------------------------------


def random_flow(rng: random.Random) -> FlowKey:
    return FlowKey(
        f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}",
        f"172.16.{rng.randrange(256)}.{rng.randrange(1, 255)}",
        rng.randrange(1024, 65536),
        rng.choice([80, 443, 25, 53, 8080]),
        rng.choice([6, 17]),
    )


@pytest.mark.parametrize("policy", list(ShardPolicy))
@pytest.mark.parametrize("shards", [1, 2, 4, 7])
def test_direction_symmetry(policy, shards):
    """Both directions of a conversation always land on the same shard."""
    router = ShardRouter(shards, policy)
    rng = random.Random(1234)
    for _ in range(200):
        flow = random_flow(rng)
        assert router.shard_of_flow(flow) == router.shard_of_flow(flow.reversed())


def test_shard_range_and_determinism():
    router = ShardRouter(4)
    rng = random.Random(99)
    flows = [random_flow(rng) for _ in range(500)]
    first = [router.shard_of_flow(f) for f in flows]
    assert all(0 <= s < 4 for s in first)
    assert [router.shard_of_flow(f) for f in flows] == first
    # A 500-flow sample should not degenerate onto one shard.
    assert len(set(first)) == 4


def test_golden_assignments_are_platform_stable():
    """Hard-coded FNV results: the hash must never drift across platforms,
    Python versions, or PYTHONHASHSEED -- shard layouts are part of the
    on-disk/benchmark contract."""
    flows = [
        FlowKey("10.0.0.1", "10.0.0.2", 1234, 80, 6),
        FlowKey("192.168.1.50", "8.8.8.8", 53211, 53, 17),
        FlowKey("172.16.0.9", "172.16.0.10", 40000, 443, 6),
        FlowKey("10.9.9.9", "10.0.0.2", 44000, 80, 6),
        FlowKey("10.250.0.1", "10.0.0.2", 44000, 80, 6),
    ]
    flow_router = ShardRouter(4, ShardPolicy.FLOW)
    tuple_router = ShardRouter(4, ShardPolicy.TUPLE5)
    assert [flow_router.shard_of_flow(f) for f in flows] == [0, 2, 3, 2, 1]
    assert [tuple_router.shard_of_flow(f) for f in flows] == [0, 2, 2, 2, 3]


def test_shard_key_bytes_is_canonical():
    flow = FlowKey("9.9.9.9", "1.1.1.1", 5555, 80, 6)
    for with_ports in (False, True):
        assert shard_key_bytes(flow, with_ports=with_ports) == shard_key_bytes(
            flow.reversed(), with_ports=with_ports
        )
    assert b"5555" in shard_key_bytes(flow, with_ports=True)
    assert b"5555" not in shard_key_bytes(flow, with_ports=False)


def test_fragments_colocate_with_their_connection_under_flow_policy():
    """The RSS pitfall: under FLOW, every fragment of a datagram AND the
    connection's unfragmented packets agree on one shard."""
    router = ShardRouter(4, ShardPolicy.FLOW)
    whole = IPv4Packet(
        src="10.1.2.3",
        dst="10.4.5.6",
        protocol=6,
        payload=(1234).to_bytes(2, "big") + (80).to_bytes(2, "big") + b"\x00" * 16
        + b"x" * 1600,
        identification=77,
    )
    frags = fragment(whole, 600)
    assert len(frags) > 2
    shards = {router.shard_of(TimedPacket(0.0, p)) for p in [whole, *frags]}
    assert len(shards) == 1


def test_tuple5_fragments_fall_back_to_address_pair():
    router = ShardRouter(4, ShardPolicy.TUPLE5)
    whole = IPv4Packet(
        src="10.1.2.3",
        dst="10.4.5.6",
        protocol=6,
        payload=(1234).to_bytes(2, "big") + (80).to_bytes(2, "big") + b"\x00" * 16
        + b"y" * 1600,
    )
    frags = fragment(whole, 600)
    expected = router.shard_of_flow(
        FlowKey("10.1.2.3", "10.4.5.6", 0, 0, 6), fragment=True
    )
    assert all(router.shard_of(TimedPacket(0.0, f)) == expected for f in frags)


def test_non_tcp_udp_goes_to_shard_zero():
    router = ShardRouter(8)
    icmp = IPv4Packet(src="1.2.3.4", dst="5.6.7.8", protocol=1, payload=b"ping")
    assert router.shard_of(TimedPacket(0.0, icmp)) == 0


def test_router_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        ShardRouter(0)


# ---------------------------------------------------------------------------
# Batching
# ---------------------------------------------------------------------------


def test_iter_batches_sizes_and_order():
    batches = list(iter_batches(iter(range(10)), 4))
    assert batches == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]


def test_iter_batches_is_lazy():
    def gen():
        yield 1
        raise RuntimeError("must not be pulled eagerly")

    it = iter_batches(gen(), 1)
    assert next(it) == [1]


def test_iter_batches_rejects_bad_size():
    with pytest.raises(ValueError):
        list(iter_batches([1], 0))


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


def test_runner_config_validation():
    with pytest.raises(ValueError):
        RunnerConfig(batch_size=0)
    with pytest.raises(ValueError):
        RunnerConfig(queue_depth=0)
    with pytest.raises(ValueError):
        RunnerConfig(evict_interval=0.0)
    with pytest.raises(ValueError):
        ParallelRunner(EngineSpec(rules=attack_ruleset()), workers=0)


# ---------------------------------------------------------------------------
# Equivalence: unsharded == SerialRunner(N) == ParallelRunner(N)
# ---------------------------------------------------------------------------

BATCH = 64


def make_spec() -> EngineSpec:
    return EngineSpec(rules=attack_ruleset(), split_policy=SplitPolicy(piece_length=8))


def gauntlet_trace() -> list[TimedPacket]:
    """Benign background plus catalog attacks, fragmentation included."""
    trace = generate_trace(TrafficProfile(flows=40), seed=7)
    payload = attack_payload()
    span = (SIGNATURE_OFFSET, len(ATTACK_SIGNATURE))
    attacks = [
        build_attack(
            name,
            payload,
            signature_span=span,
            src=f"10.66.0.{i + 1}",
            dst_port=80,
            seed=i,
        )
        for i, name in enumerate(
            ["tcp_seg_8", "ip_frag_8", "stealth_segments", "tcp_overlap_new"]
        )
    ]
    return inject_attacks(trace, attacks)


def benign_only_trace() -> list[TimedPacket]:
    return generate_trace(TrafficProfile(flows=40), seed=21)


def run_unsharded(trace: list[TimedPacket]):
    """The reference: one engine, same batch boundaries as the runners."""
    ips = SplitDetectIPS(
        attack_ruleset(), split_policy=SplitPolicy(piece_length=8)
    )
    alerts = []
    for batch in iter_batches(trace, BATCH):
        alerts.extend(ips.process_batch(batch))
    return alerts, ips.stats


@pytest.mark.parametrize("make_trace", [gauntlet_trace, benign_only_trace])
def test_serial_and_parallel_match_unsharded(make_trace):
    trace = make_trace()
    ref_alerts, ref_stats = run_unsharded(trace)
    config = RunnerConfig(batch_size=BATCH)
    spec = make_spec()

    serial = SerialRunner(spec, shards=4, config=config).run(trace)
    parallel = ParallelRunner(spec, workers=4, config=config).run(trace)

    # Identical ordered alert lists between the two runners.
    assert serial.alerts == parallel.alerts
    # Same alert *set* and counters as the unsharded engine.
    ref_digest = equivalence_digest(ref_alerts, ref_stats)
    assert serial.digest() == ref_digest
    assert parallel.digest() == ref_digest
    for report in (serial, parallel):
        assert report.stats.packets_total == ref_stats.packets_total == len(trace)
        assert report.stats.fast_bytes_scanned == ref_stats.fast_bytes_scanned
        assert report.stats.slow_bytes_normalized == ref_stats.slow_bytes_normalized
        assert report.stats.diversions == ref_stats.diversions
        assert report.stats.alerts == ref_stats.alerts
        assert report.shed_packets == 0
    # The gauntlet must actually exercise detection for this to mean much.
    if make_trace is gauntlet_trace:
        assert serial.alerts


def test_serial_runner_shard_count_is_transparent():
    """1 shard vs 4 shards: same digest (sharding never changes results)."""
    trace = gauntlet_trace()
    config = RunnerConfig(batch_size=BATCH)
    one = SerialRunner(make_spec(), shards=1, config=config).run(trace)
    four = SerialRunner(make_spec(), shards=4, config=config).run(trace)
    assert one.digest() == four.digest()
    assert one.mode == four.mode == "serial"
    assert len(four.shards) == 4
    assert sum(s.stats.packets_total for s in four.shards) == len(trace)


def test_parallel_shed_accounting_invariant():
    """Under SHED, every input packet is either processed or counted shed."""
    trace = gauntlet_trace()
    config = RunnerConfig(
        batch_size=8,
        queue_depth=1,
        backpressure=Backpressure.SHED,
        telemetry=True,
    )
    report = ParallelRunner(make_spec(), workers=2, config=config).run(trace)
    assert report.packets + report.shed_packets == len(trace)
    if report.shed_packets:
        assert report.shed_batches > 0
        # shed counter mirrored into merged telemetry when enabled
        if report.telemetry is not None:
            assert "repro_runtime_shed_packets_total" in report.telemetry["counters"]


def test_evict_interval_triggers_sweeps():
    """Packet-time eviction ticks reclaim idle flows mid-run."""
    spec = make_spec()
    config = RunnerConfig(batch_size=4, evict_interval=5.0, sample_state=True)
    processor = ShardProcessor(0, spec, config)
    # Two bursts separated by a long idle gap; the second burst's tick
    # must sweep the first burst's dead flows.
    span = (SIGNATURE_OFFSET, len(ATTACK_SIGNATURE))
    early = [
        p
        for i in range(6)
        for p in build_attack(
            "tcp_seg_8",
            attack_payload(),
            signature_span=span,
            src=f"10.70.0.{i + 1}",
            dst_port=80,
            seed=i,
        )
    ]
    late = build_attack("plain", b"B" * 400, src="10.71.0.1", dst_port=80, seed=99)
    late = [TimedPacket(p.timestamp + 3600.0, p.ip) for p in late]
    for batch in iter_batches(early + late, 4):
        processor.feed(batch)
    report = processor.finish()
    assert report.evictions > 0


def test_merge_orders_alerts_by_time_then_shard_then_sequence():
    from repro.core.alerts import Alert, AlertKind

    flow = FlowKey("1.1.1.1", "2.2.2.2", 1, 2, 6)

    def alert(ts, msg):
        return Alert(kind=AlertKind.SIGNATURE, flow=flow, sid=1, msg=msg, timestamp=ts)

    shard0 = ShardReport(shard=0, alerts=[alert(5.0, "s0-a"), alert(5.0, "s0-b")])
    shard1 = ShardReport(shard=1, alerts=[alert(1.0, "s1-a"), alert(5.0, "s1-b")])
    merged = merge_shard_reports(
        [shard1, shard0], mode="serial", workers=2, wall_seconds=0.1
    )
    assert [a.msg for a in merged.alerts] == ["s1-a", "s0-a", "s0-b", "s1-b"]


def test_digest_is_order_insensitive_and_content_sensitive():
    from repro.core import EngineStats
    from repro.core.alerts import Alert, AlertKind

    flow = FlowKey("1.1.1.1", "2.2.2.2", 1, 2, 6)
    a = Alert(kind=AlertKind.SIGNATURE, flow=flow, sid=1, msg="a", timestamp=1.0)
    b = Alert(kind=AlertKind.SIGNATURE, flow=flow, sid=2, msg="b", timestamp=2.0)
    stats = EngineStats(packets_total=10)
    assert equivalence_digest([a, b], stats) == equivalence_digest([b, a], stats)
    assert equivalence_digest([a], stats) != equivalence_digest([b], stats)
    assert equivalence_digest([a], stats) != equivalence_digest(
        [a], EngineStats(packets_total=11)
    )


def test_parallel_reports_worker_failure():
    """An engine that cannot even build in the child surfaces as
    WorkerFailure with the shard's traceback, not a hang."""
    from repro.runtime import WorkerFailure

    spec = EngineSpec(rules=None)  # SplitDetectIPS(None) raises in the worker
    runner = ParallelRunner(spec, workers=1, config=RunnerConfig(drain_timeout=30.0))
    with pytest.raises(WorkerFailure) as excinfo:
        runner.run(benign_only_trace()[:16])
    assert "shard 0" in str(excinfo.value)


def test_parallel_merged_telemetry_matches_serial():
    """The merged parallel registry sums to exactly what the serial
    runner's merged registry holds for the same trace."""
    trace = gauntlet_trace()
    config = RunnerConfig(batch_size=BATCH, telemetry=True)
    serial = SerialRunner(make_spec(), shards=2, config=config).run(trace)
    parallel = ParallelRunner(make_spec(), workers=2, config=config).run(trace)
    for report in (serial, parallel):
        assert report.registry is not None and report.telemetry is not None
        assert "repro_engine_packets_total" in report.telemetry["counters"]
        assert "repro_runtime_workers" in report.telemetry["gauges"]
    def samples_of(report):
        metric = report.registry.get("repro_engine_packets_total")
        return sorted(
            (tuple(sorted(labels.items())), value)
            for labels, value in metric.samples()
        )

    assert samples_of(serial) == samples_of(parallel)


# ---------------------------------------------------------------------------
# Sketch state backend through the sharded runtime
# ---------------------------------------------------------------------------


def make_sketch_spec() -> EngineSpec:
    from repro.core import FastPathConfig

    return EngineSpec(
        rules=attack_ruleset(),
        split_policy=SplitPolicy(piece_length=8),
        fast_config=FastPathConfig(
            state_backend="sketch",
            sketch_slots=1 << 12,
            sketch_hot_capacity=256,
            sketch_width=1 << 10,
        ),
    )


def test_sketch_backend_serial_parallel_digest_equality():
    """Serial(4) == parallel(4) must hold with the sketch backend: each
    shard's sketch evolution is deterministic, and the sketch never
    feeds the digest."""
    trace = gauntlet_trace()
    config = RunnerConfig(batch_size=BATCH)
    serial = SerialRunner(make_sketch_spec(), shards=4, config=config).run(trace)
    parallel = ParallelRunner(make_sketch_spec(), workers=4, config=config).run(trace)
    assert serial.alerts == parallel.alerts
    assert serial.digest() == parallel.digest()
    assert serial.alerts  # the gauntlet must actually detect something


def test_sketch_backend_merges_shard_sketches_bucketwise():
    trace = gauntlet_trace()
    config = RunnerConfig(batch_size=BATCH)
    serial = SerialRunner(make_sketch_spec(), shards=4, config=config).run(trace)
    parallel = ParallelRunner(make_sketch_spec(), workers=4, config=config).run(trace)
    for report in (serial, parallel):
        assert report.sketch is not None
        shard_sketches = [s.sketch for s in report.shards if s.sketch is not None]
        assert len(shard_sketches) == 4
        # The merged sketch is the cell-wise sum: total increments add up.
        assert report.sketch.total() == sum(s.total() for s in shard_sketches)
    # Shard partitioning is identical, so the merged sketches agree too.
    assert serial.sketch == parallel.sketch
    assert serial.sketch.total() > 0  # diversions actually fed the sketch


def test_exact_backends_report_no_sketch():
    trace = benign_only_trace()
    config = RunnerConfig(batch_size=BATCH)
    report = SerialRunner(make_spec(), shards=2, config=config).run(trace)
    assert report.sketch is None
    assert all(s.sketch is None for s in report.shards)
