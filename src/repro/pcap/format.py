"""Classic libpcap savefile format: global header and per-record headers.

Implements the original ``.pcap`` container (not pcapng): a 24-byte global
header followed by records, each with a 16-byte header carrying seconds,
microseconds, captured length, and original length.  Both byte orders are
read; files are written native little-endian with magic 0xa1b2c3d4.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_MAGIC_NS = 0xA1B23C4D
PCAP_MAGIC_NS_SWAPPED = 0x4D3CB2A1
PCAP_VERSION_MAJOR = 2
PCAP_VERSION_MINOR = 4

LINKTYPE_ETHERNET = 1
LINKTYPE_RAW_IP = 101

_GLOBAL_FMT = "IHHiIII"
_RECORD_FMT = "IIII"
GLOBAL_HEADER_SIZE = struct.calcsize("<" + _GLOBAL_FMT)
RECORD_HEADER_SIZE = struct.calcsize("<" + _RECORD_FMT)


class PcapFormatError(Exception):
    """Raised when a savefile violates the pcap container format."""


@dataclass(frozen=True)
class PcapHeader:
    """Decoded global header of a savefile."""

    linktype: int
    snaplen: int
    byte_order: str  # "<" or ">"
    version: tuple[int, int] = (PCAP_VERSION_MAJOR, PCAP_VERSION_MINOR)
    nanosecond: bool = False
    """True when the magic declares nanosecond-resolution timestamps."""


def encode_global_header(linktype: int, snaplen: int = 65535) -> bytes:
    """Build the 24-byte global header (native little-endian)."""
    return struct.pack(
        "<" + _GLOBAL_FMT,
        PCAP_MAGIC,
        PCAP_VERSION_MAJOR,
        PCAP_VERSION_MINOR,
        0,  # thiszone: GMT
        0,  # sigfigs: always 0 in practice
        snaplen,
        linktype,
    )


def decode_global_header(raw: bytes) -> PcapHeader:
    """Decode and validate the 24-byte global header, detecting byte order."""
    if len(raw) < GLOBAL_HEADER_SIZE:
        raise PcapFormatError(
            f"truncated global header: {len(raw)} < {GLOBAL_HEADER_SIZE} bytes"
        )
    magic = struct.unpack_from("<I", raw)[0]
    nanosecond = False
    if magic == PCAP_MAGIC:
        order = "<"
    elif magic == PCAP_MAGIC_SWAPPED:
        order = ">"
    elif magic == PCAP_MAGIC_NS:
        order = "<"
        nanosecond = True
    elif magic == PCAP_MAGIC_NS_SWAPPED:
        order = ">"
        nanosecond = True
    else:
        raise PcapFormatError(f"bad magic 0x{magic:08x}; not a pcap file")
    (
        _magic,
        major,
        minor,
        _thiszone,
        _sigfigs,
        snaplen,
        linktype,
    ) = struct.unpack_from(order + _GLOBAL_FMT, raw)
    if major != PCAP_VERSION_MAJOR:
        raise PcapFormatError(f"unsupported pcap version {major}.{minor}")
    return PcapHeader(
        linktype=linktype,
        snaplen=snaplen,
        byte_order=order,
        version=(major, minor),
        nanosecond=nanosecond,
    )


def encode_record_header(timestamp: float, captured: int, original: int) -> bytes:
    """Build a 16-byte record header from a float timestamp and lengths."""
    sec = int(timestamp)
    usec = int(round((timestamp - sec) * 1_000_000))
    if usec >= 1_000_000:  # rounding can spill into the next second
        sec += 1
        usec -= 1_000_000
    return struct.pack("<" + _RECORD_FMT, sec, usec, captured, original)


def decode_record_header(
    raw: bytes, byte_order: str, *, nanosecond: bool = False
) -> tuple[float, int, int]:
    """Decode a record header into (timestamp, captured_len, original_len)."""
    if len(raw) < RECORD_HEADER_SIZE:
        raise PcapFormatError(
            f"truncated record header: {len(raw)} < {RECORD_HEADER_SIZE} bytes"
        )
    sec, frac, captured, original = struct.unpack_from(byte_order + _RECORD_FMT, raw)
    scale = 1_000_000_000 if nanosecond else 1_000_000
    if frac >= scale:
        raise PcapFormatError(f"record sub-second field {frac} out of range")
    return sec + frac / scale, captured, original
