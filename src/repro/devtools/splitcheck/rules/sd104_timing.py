"""SD104: busy accounting uses CPU time; wall clocks are for wall fields.

Invariant (PR 3): per-shard ``busy_ns`` measures *engine work*, so it
must come from ``time.process_time_ns`` -- on a host with fewer cores
than workers, a wall clock would count scheduler preemption as load and
``aggregate_shard_pps`` would report contention instead of capacity.
Conversely ``wall_seconds`` is end-to-end latency and must come from a
wall clock (``perf_counter``), never CPU time.

In ``runtime/`` this rule flags, for assignments (including augmented
and annotated), and for keyword arguments at call sites:

- a ``busy``-named target fed by ``perf_counter``/``monotonic``/
  ``time.time`` (directly, or through a simple local like
  ``t0 = perf_counter_ns()``);
- a ``wall``-named target fed by ``process_time``/``thread_time``.
"""

from __future__ import annotations

import ast

from ..astutil import ImportMap, dotted_name
from ..engine import FileContext, Rule, register

__all__ = ["TimingDisciplineRule"]

WALL_CLOCKS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.time",
        "time.time_ns",
    }
)
CPU_CLOCKS = frozenset(
    {
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
    }
)


def _clock_kinds(
    expr: ast.expr, imports: ImportMap, taint: dict[str, str]
) -> set[str]:
    """Which clock families ('wall'/'cpu') feed this expression."""
    kinds: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            resolved = imports.resolve(name)
            if resolved in WALL_CLOCKS:
                kinds.add("wall")
            elif resolved in CPU_CLOCKS:
                kinds.add("cpu")
        elif isinstance(node, ast.Name) and node.id in taint:
            kinds.add(taint[node.id])
    return kinds


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Attribute):
        return [target.attr]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


@register
class TimingDisciplineRule(Rule):
    id = "SD104"
    title = "wrong clock family for busy/wall accounting"
    default_paths = ("*/repro/runtime/*.py",)

    def check(self, ctx: FileContext) -> None:
        imports = ImportMap(ctx.tree)
        # One-level taint: remember which clock family simple locals
        # were read from (``t0 = process_time_ns()``), so a later
        # ``busy_ns += perf_counter_ns() - t0`` style mix still resolves.
        taint: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                kinds = _clock_kinds(node.value, imports, taint)
                if len(kinds) == 1 and isinstance(node.targets[0], ast.Name):
                    taint[node.targets[0].id] = next(iter(kinds))

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._check_target(ctx, target, node.value, imports, taint)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if node.value is not None:
                    self._check_target(ctx, node.target, node.value, imports, taint)
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is None:
                        continue
                    self._check_named(
                        ctx, keyword.arg, keyword.value, keyword.value, imports, taint
                    )

    def _check_target(
        self,
        ctx: FileContext,
        target: ast.expr,
        value: ast.expr,
        imports: ImportMap,
        taint: dict[str, str],
    ) -> None:
        for name in _target_names(target):
            self._check_named(ctx, name, value, target, imports, taint)

    def _check_named(
        self,
        ctx: FileContext,
        name: str,
        value: ast.expr,
        where: ast.expr,
        imports: ImportMap,
        taint: dict[str, str],
    ) -> None:
        lowered = name.lower()
        kinds = _clock_kinds(value, imports, taint)
        if "busy" in lowered and "wall" in kinds:
            ctx.report(
                self,
                where,
                f"{name!r} is busy accounting but is fed by a wall clock; "
                "use time.process_time_ns() so preemption on oversubscribed "
                "hosts does not masquerade as shard load",
            )
        elif "wall" in lowered and "cpu" in kinds:
            ctx.report(
                self,
                where,
                f"{name!r} is wall-clock latency but is fed by a CPU-time "
                "clock; use time.perf_counter() for end-to-end durations",
            )
