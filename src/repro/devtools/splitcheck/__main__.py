"""``python -m repro.devtools.splitcheck`` entry point."""

from __future__ import annotations

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
