"""SD203: TCP sequence arithmetic goes through the modular helpers.

Invariant (PR 1, paper S4): sequence numbers live in Z/2^32.  Raw
``+``/``-`` on a seq-family value silently produces the wrong answer at
wraparound, and raw ``<``/``>`` ordering is wrong for half the space --
which is precisely the ambiguity an evader aims a split attack at.  In
the packet/stream/core layers, arithmetic on seq-tainted values must go
through ``seq_add``/``seq_diff`` (packet/tcp.py).

Taint is computed per function in :mod:`..facts`: names spelled
``seq``/``ack``/``*_seq`` plus one assignment level (``x = seg.seq``
taints ``x``; ``d = seq_diff(...)`` does not -- a diff is a plain signed
integer).  Arithmetic immediately reduced ``% 2**32`` and the bodies of
``seq_*`` helpers themselves are exempt: that *is* the discipline.
"""

from __future__ import annotations

from ..project import ProjectContext, ProjectRule, register

__all__ = ["SeqDisciplineRule"]

_HELP = {
    "+": "use seq_add(a, n)",
    "-": "use seq_add(a, -n) or seq_diff(a, b)",
    "+=": "use seq_add(a, n)",
    "-=": "use seq_add(a, -n)",
    "<": "compare via seq_diff(a, b) < 0",
    ">": "compare via seq_diff(a, b) > 0",
    "<=": "compare via seq_diff(a, b) <= 0",
    ">=": "compare via seq_diff(a, b) >= 0",
}


@register
class SeqDisciplineRule(ProjectRule):
    id = "SD203"
    title = "raw arithmetic/ordering on a TCP sequence number"
    default_paths = (
        "*/repro/core/*.py",
        "*/repro/streams/*.py",
        "*/repro/packet/*.py",
    )

    def check_project(self, ctx: ProjectContext) -> None:
        for facts in ctx.facts():
            for op in facts.seq_ops:
                symbol = op["op"]
                ctx.report(
                    self,
                    facts.path,
                    op["lineno"],
                    op["col"],
                    f"raw {symbol!r} on a sequence-number value in "
                    f"{op['scope']}; {_HELP.get(symbol, 'use the seq_* helpers')} "
                    "so 2^32 wraparound cannot corrupt the comparison "
                    "(the evasion class the fast path defends against)",
                )
