"""Single-pattern matchers: Boyer-Moore-Horspool and a naive reference.

BMH is what a slow path uses to confirm one specific signature inside a
reassembled stream; the naive matcher exists for differential testing of
both BMH and Aho-Corasick.
"""

from __future__ import annotations


class BoyerMooreHorspool:
    """Boyer-Moore-Horspool search for one byte pattern.

    Precomputes the bad-character shift table once; ``find_all`` then
    skips ahead by the table amount on mismatches, touching a sublinear
    number of bytes on typical payloads.
    """

    def __init__(self, pattern: bytes) -> None:
        if not pattern:
            raise ValueError("pattern is empty")
        self.pattern = bytes(pattern)
        m = len(pattern)
        self._shift = [m] * 256
        for i, byte in enumerate(pattern[:-1]):
            self._shift[byte] = m - 1 - i

    def find(self, data: bytes, start: int = 0) -> int:
        """Offset of the first occurrence at or after ``start``, or -1."""
        pattern = self.pattern
        m = len(pattern)
        n = len(data)
        shift = self._shift
        i = start
        while i + m <= n:
            if data[i : i + m] == pattern:
                return i
            i += shift[data[i + m - 1]]
        return -1

    def find_all(self, data: bytes) -> list[int]:
        """Start offsets of every (possibly overlapping) occurrence."""
        out: list[int] = []
        i = self.find(data)
        while i != -1:
            out.append(i)
            i = self.find(data, i + 1)
        return out


def naive_find_all(pattern: bytes, data: bytes) -> list[int]:
    """Reference quadratic search; ground truth for differential tests."""
    if not pattern:
        raise ValueError("pattern is empty")
    return [
        i for i in range(len(data) - len(pattern) + 1) if data[i : i + len(pattern)] == pattern
    ]
