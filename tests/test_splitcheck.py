"""Tests for the splitcheck static invariant analyzer.

Each SDxxx rule gets: fixture snippets that must flag, and near-miss
snippets (the guarded / deterministic / module-level / CPU-clock /
well-formed versions of the same code) that must pass.  A self-run
asserts the real ``core/``, ``match/``, and ``runtime/`` trees are
clean with zero baseline entries -- the invariant this PR exists to
pin.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.splitcheck import (
    Config,
    Finding,
    PragmaIndex,
    Severity,
    all_rules,
    check_paths,
    load_baseline,
    load_config,
    partition,
    write_baseline,
)
from repro.devtools.splitcheck import config as splitcheck_config
from repro.devtools.splitcheck.cli import main as splitcheck_main

# Python 3.10 has no stdlib tomllib; without a tomli fallback installed the
# analyzer skips the [tool.splitcheck] table and runs with defaults.
requires_toml = pytest.mark.skipif(
    splitcheck_config.tomllib is None,
    reason="no TOML parser available (Python < 3.11 without tomli)",
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"


def run_rules(
    tmp_path: Path, rel_name: str, source: str, *, select: str | None = None
) -> list[Finding]:
    """Write ``source`` under a repro-shaped tree and analyze it."""
    target = tmp_path / "repro" / rel_name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    config = Config(root=tmp_path)
    selected = frozenset({select}) if select else None
    findings, checked = check_paths([tmp_path], config, select=selected)
    assert checked == 1
    return findings


def run_tree(
    tmp_path: Path,
    files: dict[str, str],
    *,
    select: str | None = None,
    design: str | None = None,
) -> list[Finding]:
    """Write a multi-file repro-shaped tree (plus optional DESIGN.md)
    and analyze it -- the fixture shape for SD2xx project rules."""
    for rel_name, source in files.items():
        target = tmp_path / "repro" / rel_name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    if design is not None:
        (tmp_path / "DESIGN.md").write_text(design, encoding="utf-8")
    config = Config(root=tmp_path)
    selected = frozenset({select}) if select else None
    findings, _ = check_paths([tmp_path], config, select=selected)
    return findings


def rule_ids(findings: list[Finding]) -> set[str]:
    return {finding.rule for finding in findings}


# ---------------------------------------------------------------------------
# SD101: hot-path telemetry guard
# ---------------------------------------------------------------------------


class TestSD101:
    def test_unguarded_inc_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/engine.py",
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self._c_packets.inc()\n",
        )
        assert rule_ids(findings) == {"SD101"}
        assert findings[0].line == 3

    def test_unguarded_observe_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "match/streaming.py",
            "class M:\n"
            "    def scan(self, data):\n"
            "        self._h_latency.observe(1.0)\n",
        )
        assert rule_ids(findings) == {"SD101"}

    def test_if_guard_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/engine.py",
            "class E:\n"
            "    def process(self, pkt):\n"
            "        if self._tel_on:\n"
            "            self._c_packets.inc()\n",
        )
        assert findings == []

    def test_local_guard_variable_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/engine.py",
            "class E:\n"
            "    def process(self, pkt):\n"
            "        tel_on = self._tel_on\n"
            "        if tel_on:\n"
            "            self._h_stage.observe(2.0)\n",
        )
        assert findings == []

    def test_early_return_guard_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "streams/active.py",
            "class S:\n"
            "    def sample(self):\n"
            "        if not self._tel_on:\n"
            "            return\n"
            "        self._g_flows.set(3)\n",
        )
        assert findings == []

    def test_registry_enabled_guard_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/fastpath.py",
            "class F:\n"
            "    def track(self):\n"
            "        if self.telemetry.enabled:\n"
            "            self._c_anomaly.inc()\n",
        )
        assert findings == []

    def test_init_and_refresh_are_exempt(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/slowpath.py",
            "class S:\n"
            "    def __init__(self):\n"
            "        self._g_flows.set(0)\n"
            "    def refresh_telemetry(self):\n"
            "        self._g_flows.set(1)\n",
        )
        assert findings == []

    def test_threading_event_set_not_flagged(self, tmp_path):
        # .set() on a bare name is threading, not telemetry.
        findings = run_rules(
            tmp_path,
            "core/engine.py",
            "class E:\n"
            "    def stop(self, event):\n"
            "        event.set()\n",
        )
        assert findings == []

    def test_outside_hot_dirs_not_in_scope(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "metrics/report.py",
            "class R:\n"
            "    def tally(self):\n"
            "        self._c_runs.inc()\n",
            select="SD101",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SD102: merge/digest determinism
# ---------------------------------------------------------------------------


class TestSD102:
    def test_wall_clock_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/report.py",
            "import time\n\ndef merge():\n    return time.time()\n",
        )
        assert rule_ids(findings) == {"SD102"}

    def test_random_call_flags(self, tmp_path):
        # The import alone is fine now (the seeded-instance idiom is
        # allowed); module-level random functions still flag.
        findings = run_rules(
            tmp_path,
            "runtime/report.py",
            "import random\n\ndef merge(xs):\n    return random.choice(xs)\n",
        )
        assert {"SD102"} == rule_ids(findings)
        assert len(findings) == 1

    def test_unseeded_random_instance_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/report.py",
            "import random\n\ndef merge():\n    return random.Random()\n",
        )
        assert rule_ids(findings) == {"SD102"}

    def test_seeded_random_instance_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/report.py",
            "import random\n\n"
            "def merge(seed):\n"
            "    a = random.Random(99)\n"
            "    b = random.Random(seed)\n"
            "    return a, b\n",
        )
        assert findings == []

    def test_secrets_import_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/report.py",
            "import secrets\n\ndef tok():\n    return secrets.token_hex(8)\n",
        )
        assert rule_ids(findings) == {"SD102"}
        assert len(findings) == 2  # the import and the call

    def test_datetime_now_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/report.py",
            "from datetime import datetime\n\n"
            "def stamp():\n    return datetime.now()\n",
        )
        assert rule_ids(findings) == {"SD102"}

    def test_set_iteration_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/report.py",
            "def merge(shards):\n"
            "    out = []\n"
            "    for shard in set(shards):\n"
            "        out.append(shard)\n"
            "    return out\n",
        )
        assert rule_ids(findings) == {"SD102"}

    def test_keys_iteration_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/report.py",
            "def merge(reasons):\n"
            "    return [k for k in reasons.keys()]\n",
        )
        assert rule_ids(findings) == {"SD102"}

    def test_sorted_set_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/report.py",
            "def merge(shards, reasons):\n"
            "    a = [s for s in sorted(set(shards))]\n"
            "    b = [k for k in sorted(reasons.keys())]\n"
            "    return a + b\n",
        )
        assert findings == []

    def test_packet_timestamp_arithmetic_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/report.py",
            "def merge(alerts):\n"
            "    return sorted(alerts, key=lambda a: a.timestamp)\n",
        )
        assert findings == []

    def test_items_iteration_passes(self, tmp_path):
        # dict insertion order is deterministic per shard; only set order
        # and .keys() of rebuilt dicts are digest hazards.
        findings = run_rules(
            tmp_path,
            "runtime/report.py",
            "def merge(reasons):\n"
            "    return {k: v for k, v in reasons.items()}\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SD103: shard safety
# ---------------------------------------------------------------------------


class TestSD103:
    def test_lambda_to_queue_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/parallel.py",
            "def feed(queue):\n    queue.put(lambda b: b)\n",
        )
        assert rule_ids(findings) == {"SD103"}

    def test_closure_to_queue_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/parallel.py",
            "def feed(queue):\n"
            "    def handler(batch):\n"
            "        return batch\n"
            "    queue.put_nowait(handler)\n",
        )
        assert rule_ids(findings) == {"SD103"}

    def test_lambda_process_target_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/parallel.py",
            "from multiprocessing import Process\n\n"
            "def launch():\n"
            "    return Process(target=lambda: None)\n",
        )
        assert rule_ids(findings) == {"SD103"}

    def test_bound_method_target_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/parallel.py",
            "from multiprocessing import Process\n\n"
            "class Runner:\n"
            "    def launch(self):\n"
            "        return Process(target=self.work)\n",
        )
        assert rule_ids(findings) == {"SD103"}

    def test_module_level_target_and_data_pass(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/parallel.py",
            "from multiprocessing import Process\n\n"
            "def worker_main(spec, queue):\n"
            "    pass\n\n"
            "def launch(spec, queue, batch):\n"
            "    queue.put(batch)\n"
            "    queue.put(None)\n"
            "    return Process(target=worker_main, args=(spec, queue))\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SD104: timing discipline
# ---------------------------------------------------------------------------


class TestSD104:
    def test_wall_clock_busy_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "from time import perf_counter_ns\n\n"
            "class Shard:\n"
            "    def feed(self, batch):\n"
            "        t0 = perf_counter_ns()\n"
            "        self.busy_ns += perf_counter_ns() - t0\n",
        )
        assert rule_ids(findings) == {"SD104"}

    def test_tainted_local_busy_flags(self, tmp_path):
        # the wall clock reaches busy_ns only through the local t0
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "from time import monotonic_ns\n\n"
            "class Shard:\n"
            "    def feed(self, batch):\n"
            "        t0 = monotonic_ns()\n"
            "        work(batch)\n"
            "        self.busy_ns += compute() - t0\n",
        )
        assert rule_ids(findings) == {"SD104"}

    def test_cpu_clock_wall_keyword_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/serial.py",
            "from time import process_time\n\n"
            "def run(report_cls, start):\n"
            "    return report_cls(wall_seconds=process_time() - start)\n",
        )
        assert rule_ids(findings) == {"SD104"}

    def test_correct_clock_families_pass(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "from time import perf_counter, process_time_ns\n\n"
            "class Shard:\n"
            "    def feed(self, batch, report_cls):\n"
            "        t0 = process_time_ns()\n"
            "        work(batch)\n"
            "        self.busy_ns += process_time_ns() - t0\n"
            "        start = perf_counter()\n"
            "        return report_cls(wall_seconds=perf_counter() - start)\n",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SD105: packet-layer byte hygiene
# ---------------------------------------------------------------------------


class TestSD105:
    def test_str_bytes_concat_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "packet/tcp.py",
            "def build():\n    return b'host' + 'name'\n",
        )
        assert rule_ids(findings) == {"SD105"}

    def test_str_bytes_comparison_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "packet/ip.py",
            "def check():\n    return b'GET' == 'GET'\n",
        )
        assert rule_ids(findings) == {"SD105"}

    def test_invalid_format_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "packet/udp.py",
            "import struct\n\nFMT = struct.Struct('!ZZ')\n",
        )
        assert rule_ids(findings) == {"SD105"}

    def test_pack_arity_mismatch_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "packet/udp.py",
            "import struct\n\n"
            "def build(a, b):\n"
            "    return struct.pack('!HHH', a, b)\n",
        )
        assert rule_ids(findings) == {"SD105"}

    def test_bound_struct_arity_mismatch_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "packet/tcp.py",
            "import struct\n\n"
            "_HDR = struct.Struct('!HHI')\n\n"
            "def build(a, b):\n"
            "    return _HDR.pack(a, b)\n",
        )
        assert rule_ids(findings) == {"SD105"}

    def test_str_into_bytes_field_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "packet/ether.py",
            "import struct\n\n"
            "def build():\n"
            "    return struct.pack('!4s', 'abcd')\n",
        )
        assert rule_ids(findings) == {"SD105"}

    def test_well_formed_packing_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "packet/tcp.py",
            "import struct\n\n"
            "_HDR = struct.Struct('!HHI')\n\n"
            "def build(sport, dport, seq, payload):\n"
            "    if payload == b'GET':\n"
            "        pass\n"
            "    return _HDR.pack(sport, dport, seq) + struct.pack('!4s', b'abcd')\n",
        )
        assert findings == []

    def test_repeat_and_pad_codes_counted(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "packet/ip.py",
            "import struct\n\n"
            "def build(a, b, c):\n"
            "    return struct.pack('!2Hxx4s', a, b, c)\n",  # 2H=2 + 4s=1 -> 3 ok
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SD106: worker status discipline
# ---------------------------------------------------------------------------


class TestSD106:
    def test_silent_return_in_handler_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "def shard_worker_main(shard, in_queue, out_queue):\n"
            "    try:\n"
            "        batch = in_queue.get()\n"
            "    except Exception:\n"
            "        return\n"
            "    out_queue.put(('ok', shard, 0, batch))\n",
        )
        assert rule_ids(findings) == {"SD106"}

    def test_silent_os_exit_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "import os\n\n"
            "def shard_worker_main(shard, in_queue, out_queue):\n"
            "    try:\n"
            "        batch = in_queue.get()\n"
            "    except Exception:\n"
            "        os._exit(1)\n"
            "    out_queue.put(('ok', shard, 0, batch))\n",
        )
        assert rule_ids(findings) == {"SD106"}

    def test_put_before_return_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "def shard_worker_main(shard, in_queue, out_queue):\n"
            "    try:\n"
            "        batch = in_queue.get()\n"
            "    except Exception as exc:\n"
            "        out_queue.put(('error', shard, 0, str(exc)))\n"
            "        return\n"
            "    out_queue.put(('ok', shard, 0, batch))\n",
        )
        assert findings == []

    def test_reraise_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "def shard_worker_main(shard, in_queue, out_queue):\n"
            "    try:\n"
            "        batch = in_queue.get()\n"
            "    except Exception:\n"
            "        raise\n"
            "    out_queue.put(('ok', shard, 0, batch))\n",
        )
        assert findings == []

    def test_handler_that_continues_is_exempt(self, tmp_path):
        """A handler that swallows and keeps looping is not an exit."""
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "def shard_worker_main(shard, in_queue, out_queue):\n"
            "    while True:\n"
            "        try:\n"
            "            batch = in_queue.get()\n"
            "        except Exception:\n"
            "            continue\n"
            "        out_queue.put(('ok', shard, 0, batch))\n",
        )
        assert findings == []

    def test_functions_without_out_queue_exempt(self, tmp_path):
        """Engine-side helpers (no out_queue param) may return silently."""
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "def feed(processor, batch):\n"
            "    try:\n"
            "        processor.feed(batch)\n"
            "    except ValueError:\n"
            "        return\n",
        )
        assert findings == []

    def test_scoped_to_worker_modules(self, tmp_path):
        """The rule's default paths only cover runtime/worker*.py."""
        findings = run_rules(
            tmp_path,
            "runtime/parallel.py",
            "def pump(batches, out_queue):\n"
            "    try:\n"
            "        out_queue.get()\n"
            "    except Exception:\n"
            "        return\n",
        )
        assert "SD106" not in rule_ids(findings)


# ---------------------------------------------------------------------------
# SD107: trace/journal emission guard
# ---------------------------------------------------------------------------


class TestSD107:
    def test_unguarded_tracer_record_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/engine.py",
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self.tracer.record(pkt.flow, 'fast', 'anomaly', pkt.ts)\n",
            select="SD107",
        )
        assert rule_ids(findings) == {"SD107"}
        assert findings[0].line == 3

    def test_unguarded_record_system_flags(self, tmp_path):
        # SD101's instrument set deliberately omits record_system; SD107
        # must cover it or system spans dodge the guard discipline.
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "class W:\n"
            "    def drain(self, batch):\n"
            "        self.tracer.record_system('runtime', 'quarantine')\n",
            select="SD107",
        )
        assert rule_ids(findings) == {"SD107"}

    def test_unguarded_journal_event_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "class W:\n"
            "    def drain(self, batch):\n"
            "        self.registry.journal.event('divert', flow='x')\n",
            select="SD107",
        )
        assert rule_ids(findings) == {"SD107"}

    def test_trace_enabled_guard_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/fastpath.py",
            "class F:\n"
            "    def track(self, pkt):\n"
            "        if self._trace_enabled:\n"
            "            self.tracer.record(pkt.flow, 'fast', 'anomaly', pkt.ts)\n",
            select="SD107",
        )
        assert findings == []

    def test_early_return_guard_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "class W:\n"
            "    def drain(self, batch):\n"
            "        if not self._trace_enabled:\n"
            "            return\n"
            "        self.tracer.record_system('runtime', 'quarantine')\n",
            select="SD107",
        )
        assert findings == []

    def test_tracer_enabled_attribute_guard_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/slowpath.py",
            "class S:\n"
            "    def process(self, pkt):\n"
            "        if self.tracer.enabled:\n"
            "            self.tracer.record(pkt.flow, 'slow', 'reassemble', pkt.ts)\n",
            select="SD107",
        )
        assert findings == []

    def test_non_tracer_record_not_flagged(self, tmp_path):
        # Near miss: a .record() on something that is not a tracer or
        # journal (e.g. the fast path's anomaly monitor) is SD101's
        # business, not SD107's.
        findings = run_rules(
            tmp_path,
            "core/fastpath.py",
            "class F:\n"
            "    def track(self, pkt):\n"
            "        self.monitor.record(pkt.seq)\n",
            select="SD107",
        )
        assert findings == []

    def test_tracer_construction_exempt(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "class W:\n"
            "    def __init__(self, tracer):\n"
            "        self.tracer = tracer\n"
            "        self.tracer.record_system('runtime', 'start')\n",
            select="SD107",
        )
        assert findings == []

    def test_null_tracer_class_record_exempt(self, tmp_path):
        # The tracer's own record() definition is not a call site.
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "class NullTracer:\n"
            "    def record(self, flow, stage, event, ts):\n"
            "        pass\n",
            select="SD107",
        )
        assert findings == []

    def test_covers_runtime_unlike_sd101(self, tmp_path):
        # SD101's default paths stop at core/match/streams; the worker
        # loop's emissions are exactly what SD107 adds.
        findings = run_rules(
            tmp_path,
            "runtime/worker.py",
            "class W:\n"
            "    def drain(self, batch):\n"
            "        self.tracer.record(batch.flow, 'runtime', 'drain', 0.0)\n",
        )
        assert "SD107" in rule_ids(findings)
        assert "SD101" not in rule_ids(findings)


# ---------------------------------------------------------------------------
# SD108: blocking calls in service/ must carry timeouts
# ---------------------------------------------------------------------------


class TestSD108:
    def test_queue_get_without_timeout_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "service/sources.py",
            "class S:\n"
            "    def poll(self):\n"
            "        return self._queue.get()\n",
            select="SD108",
        )
        assert rule_ids(findings) == {"SD108"}
        assert findings[0].line == 3

    def test_queue_put_without_timeout_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "service/sources.py",
            "def hand_off(out_queue, record):\n"
            "    out_queue.put(record)\n",
            select="SD108",
        )
        assert rule_ids(findings) == {"SD108"}

    def test_queue_get_with_timeout_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "service/sources.py",
            "class S:\n"
            "    def poll(self, timeout):\n"
            "        return self._queue.get(timeout=timeout)\n",
            select="SD108",
        )
        assert findings == []

    def test_nowait_and_nonblocking_variants_pass(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "service/sources.py",
            "class S:\n"
            "    def drain(self):\n"
            "        self._queue.put_nowait(1)\n"
            "        self._queue.get(block=False)\n"
            "        return self._queue.get_nowait()\n",
            select="SD108",
        )
        assert findings == []

    def test_dict_get_is_not_a_queue(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "service/lifecycle.py",
            "def backlog(state):\n"
            "    return state.get('backlog_fraction', 0.0)\n",
            select="SD108",
        )
        assert findings == []

    def test_recv_without_settimeout_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "service/sources.py",
            "class Reader:\n"
            "    def read(self, conn, n):\n"
            "        return conn.recv(n)\n",
            select="SD108",
        )
        assert rule_ids(findings) == {"SD108"}

    def test_recv_in_class_with_settimeout_passes(self, tmp_path):
        # The established pattern: the loop entry arms the timeout once,
        # helpers below it poll under that bound.
        findings = run_rules(
            tmp_path,
            "service/sources.py",
            "class Reader:\n"
            "    def attach(self, conn):\n"
            "        conn.settimeout(0.2)\n"
            "        self.conn = conn\n"
            "    def read(self, n):\n"
            "        return self.conn.recv(n)\n",
            select="SD108",
        )
        assert findings == []

    def test_accept_without_settimeout_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "service/sources.py",
            "def serve(listener):\n"
            "    conn, peer = listener.accept()\n"
            "    return conn\n",
            select="SD108",
        )
        assert rule_ids(findings) == {"SD108"}

    def test_thread_join_without_timeout_flags(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "service/sources.py",
            "def close(threads):\n"
            "    for thread in threads:\n"
            "        thread.join()\n",
            select="SD108",
        )
        assert rule_ids(findings) == {"SD108"}

    def test_thread_join_with_timeout_passes(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "service/sources.py",
            "def close(threads):\n"
            "    for thread in threads:\n"
            "        thread.join(timeout=2.0)\n",
            select="SD108",
        )
        assert findings == []

    def test_scoped_to_service_only(self, tmp_path):
        # The runner's blocking queue puts are its lossless-backpressure
        # feature; SD108 must not fire outside service/.
        findings = run_rules(
            tmp_path,
            "runtime/parallel.py",
            "def feed(in_queue, batch):\n"
            "    in_queue.put(batch)\n",
            select="SD108",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Framework: pragmas, baseline, config, CLI
# ---------------------------------------------------------------------------


class TestFramework:
    def test_line_pragma_suppresses_named_rule(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/engine.py",
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self._c_packets.inc()  # splitcheck: ignore[SD101]\n",
        )
        assert findings == []

    def test_bare_pragma_suppresses_everything(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "runtime/report.py",
            "import time\n\n"
            "def merge():\n"
            "    return time.time()  # splitcheck: ignore\n",
        )
        assert findings == []

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/engine.py",
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self._c_packets.inc()  # splitcheck: ignore[SD105]\n",
        )
        assert rule_ids(findings) == {"SD101"}

    def test_skip_file_pragma(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/engine.py",
            "# splitcheck: skip-file\n"
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self._c_packets.inc()\n",
        )
        assert findings == []

    def test_pragma_index_parsing(self):
        index = PragmaIndex(
            "x = 1  # splitcheck: ignore[SD101, SD102]\n"
            "y = 2  # splitcheck: ignore\n"
        )
        assert index.ignores(1, "SD101") and index.ignores(1, "sd102")
        assert not index.ignores(1, "SD105")
        assert index.ignores(2, "SD105")
        assert not index.ignores(3, "SD101")

    def test_baseline_roundtrip_and_partition(self, tmp_path):
        target = tmp_path / "repro" / "core" / "engine.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self._c_packets.inc()\n",
            encoding="utf-8",
        )
        config = Config(root=tmp_path)
        findings, _ = check_paths([tmp_path], config)
        assert len(findings) == 1

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        fresh, known = partition(findings, baseline)
        assert fresh == [] and len(known) == 1

        # fingerprints survive pure line shifts ...
        target.write_text(
            "import os\n\n\n"
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self._c_packets.inc()\n",
            encoding="utf-8",
        )
        shifted, _ = check_paths([tmp_path], config)
        fresh, known = partition(shifted, baseline)
        assert fresh == [] and len(known) == 1

        # ... but not content changes on the flagged line
        target.write_text(
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self._c_other_counter.inc()\n",
            encoding="utf-8",
        )
        changed, _ = check_paths([tmp_path], config)
        fresh, known = partition(changed, baseline)
        assert len(fresh) == 1 and known == []

    @requires_toml
    def test_pyproject_config_loading(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.splitcheck]\n"
            'baseline = "base.json"\n'
            'exclude = ["*/generated/*"]\n'
            'disable = ["SD105"]\n'
            "[tool.splitcheck.rules.SD101]\n"
            'paths = ["*/custom/*.py"]\n'
            'severity = "warning"\n',
            encoding="utf-8",
        )
        config = load_config(tmp_path)
        assert config.baseline == "base.json"
        assert config.baseline_path == tmp_path / "base.json"
        assert config.exclude == ("*/generated/*",)
        assert config.disable == frozenset({"SD105"})
        rule = config.rule_config("sd101")
        assert rule.paths == ("*/custom/*.py",)
        assert rule.severity == "warning"

    @requires_toml
    def test_disabled_rule_does_not_run(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.splitcheck]\ndisable = ["SD101"]\n', encoding="utf-8"
        )
        target = tmp_path / "repro" / "core" / "engine.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self._c_packets.inc()\n",
            encoding="utf-8",
        )
        findings, _ = check_paths([tmp_path], load_config(tmp_path))
        assert findings == []

    @requires_toml
    def test_severity_override_downgrades_exit_code(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.splitcheck.rules.SD101]\nseverity = "warning"\n',
            encoding="utf-8",
        )
        target = tmp_path / "repro" / "core" / "engine.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self._c_packets.inc()\n",
            encoding="utf-8",
        )
        findings, _ = check_paths([tmp_path], load_config(tmp_path))
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING
        # warnings do not fail the run unless --strict-warnings
        assert splitcheck_main([str(target), "--root", str(tmp_path)]) == 0
        assert (
            splitcheck_main(
                [str(target), "--root", str(tmp_path), "--strict-warnings"]
            )
            == 1
        )

    def test_syntax_error_becomes_sd000(self, tmp_path):
        target = tmp_path / "repro" / "core" / "broken.py"
        target.parent.mkdir(parents=True)
        target.write_text("def broken(:\n", encoding="utf-8")
        findings, _ = check_paths([tmp_path], Config(root=tmp_path))
        assert rule_ids(findings) == {"SD000"}

    def test_all_rules_registered(self):
        assert set(all_rules()) == {
            "SD101",
            "SD102",
            "SD103",
            "SD104",
            "SD105",
            "SD106",
            "SD107",
            "SD108",
            "SD201",
            "SD202",
            "SD203",
            "SD204",
        }

    def test_every_rule_has_flag_and_near_miss_fixtures(self):
        """Meta-test: each registered SDxxx rule keeps at least one
        fixture that must flag and one near-miss that must pass."""
        module = sys.modules[__name__]
        for rule_id in all_rules():
            cls = getattr(module, f"Test{rule_id}", None)
            assert cls is not None, f"no Test{rule_id} fixture class"
            names = [name for name in vars(cls) if name.startswith("test_")]
            assert any("flag" in name for name in names), (
                f"{rule_id} has no flagging fixture"
            )
            assert any(
                "pass" in name or "exempt" in name for name in names
            ), f"{rule_id} has no near-miss (passing) fixture"


class TestCli:
    def write_bad_file(self, tmp_path: Path) -> Path:
        target = tmp_path / "repro" / "core" / "engine.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self._c_packets.inc()\n",
            encoding="utf-8",
        )
        return target

    def test_exit_codes(self, tmp_path, capsys):
        target = self.write_bad_file(tmp_path)
        assert splitcheck_main([str(target), "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SD101" in out and "1 new finding" in out

    def test_json_output(self, tmp_path, capsys):
        target = self.write_bad_file(tmp_path)
        code = splitcheck_main([str(target), "--root", str(tmp_path), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["checked_files"] == 1
        assert payload["new"][0]["rule"] == "SD101"
        assert payload["new"][0]["fingerprint"]
        assert payload["baselined"] == []

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        target = self.write_bad_file(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert (
            splitcheck_main(
                [
                    str(target),
                    "--root",
                    str(tmp_path),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            splitcheck_main(
                [str(target), "--root", str(tmp_path), "--baseline", str(baseline)]
            )
            == 0
        )
        assert "1 baselined" in capsys.readouterr().out

    def test_select_unknown_rule_is_usage_error(self, tmp_path):
        target = self.write_bad_file(tmp_path)
        assert (
            splitcheck_main(
                [str(target), "--root", str(tmp_path), "--select", "SD999"]
            )
            == 2
        )

    def test_missing_path_is_usage_error(self, tmp_path):
        assert (
            splitcheck_main(
                [str(tmp_path / "nope.py"), "--root", str(tmp_path)]
            )
            == 2
        )

    def test_list_rules(self, capsys):
        assert splitcheck_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SD101", "SD102", "SD103", "SD104", "SD105", "SD106"):
            assert rule_id in out

    def test_splitdetect_check_subcommand(self, tmp_path):
        """The ``splitdetect check`` wiring reaches the same engine."""
        from repro.cli import main as repro_main

        target = self.write_bad_file(tmp_path)
        assert repro_main(["check", str(target), "--root", str(tmp_path)]) == 1
        assert (
            repro_main(
                ["check", str(target), "--root", str(tmp_path), "--no-baseline",
                 "--select", "SD102"]
            )
            == 0
        )

    def test_module_entry_point(self, tmp_path):
        target = self.write_bad_file(tmp_path)
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.devtools.splitcheck",
                str(target),
                "--root",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "SD101" in proc.stdout


# ---------------------------------------------------------------------------
# SD201: metric/span registry (project rule)
# ---------------------------------------------------------------------------


class TestSD201:
    def test_malformed_metric_name_flags(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {"core/fast.py": 'C = registry.counter("bad-name", "desc")\n'},
            select="SD201",
        )
        assert rule_ids(findings) == {"SD201"}
        assert "convention" in findings[0].message

    def test_unknown_subsystem_flags(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {
                "core/fast.py": (
                    'C = registry.counter("repro_wizard_packets_total", "d")\n'
                )
            },
            select="SD201",
        )
        assert rule_ids(findings) == {"SD201"}
        assert "unknown subsystem" in findings[0].message

    def test_kind_conflict_across_files_flags(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {
                "core/a.py": 'C = reg.counter("repro_engine_things_total", "d")\n',
                "core/b.py": 'G = reg.gauge("repro_engine_things_total", "d")\n',
            },
            select="SD201",
        )
        assert rule_ids(findings) == {"SD201"}
        assert "one name, one" in findings[0].message

    def test_undocumented_and_orphaned_rows_flag(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {
                "core/a.py": (
                    'GOOD = reg.counter("repro_engine_good_total", "d")\n'
                    'EXTRA = reg.counter("repro_engine_extra_total", "d")\n'
                )
            },
            select="SD201",
            design=(
                "| `repro_engine_good_total` | counter | core |\n"
                "| `repro_engine_ghost_total` | gauge | core |\n"
            ),
        )
        assert rule_ids(findings) == {"SD201"}
        messages = sorted(f.message for f in findings)
        assert len(findings) == 2
        assert any("not documented" in m for m in messages)
        assert any("orphaned" in m for m in messages)
        assert {f.path for f in findings} == {"repro/core/a.py", "DESIGN.md"}

    def test_documented_kind_mismatch_flags(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {"core/a.py": 'G = reg.gauge("repro_engine_depth_total", "d")\n'},
            select="SD201",
            design="| `repro_engine_depth_total` | counter | core |\n",
        )
        assert len(findings) == 1
        assert "says counter but the code registers a gauge" in findings[0].message

    def test_documented_metrics_and_spans_pass(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {
                "core/a.py": (
                    'C = reg.counter("repro_engine_good_total", "d")\n'
                    "def route(tracer, flow):\n"
                    '    tracer.record(flow, "decode", "fast_route")\n'
                )
            },
            select="SD201",
            design=(
                "| `repro_engine_good_total` | counter | core |\n"
                "| `decode:fast_route` | span | core |\n"
            ),
        )
        assert findings == []

    def test_no_design_doc_skips_registry_checks(self, tmp_path):
        # Convention checks still run; documentation checks need the doc.
        findings = run_tree(
            tmp_path,
            {"core/a.py": 'C = reg.counter("repro_engine_lone_total", "d")\n'},
            select="SD201",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SD202: worker wire-protocol exhaustiveness (project rule)
# ---------------------------------------------------------------------------

WORKER_OK = (
    "def work(shard, out_queue):\n"
    '    out_queue.put(("ok", shard, 0, None))\n'
    '    out_queue.put(("error", shard, 0, "boom"))\n'
)

PUMP_OK = (
    "def pump(out_queue):\n"
    "    kind, shard, n, payload = out_queue.get()\n"
    '    if kind == "ok":\n'
    "        return payload\n"
    '    elif kind == "error":\n'
    "        raise RuntimeError(payload)\n"
)


class TestSD202:
    def test_emitted_kind_without_handler_flags(self, tmp_path):
        worker = WORKER_OK + '    out_queue.put(("stats", shard, 0, None))\n'
        findings = run_tree(
            tmp_path,
            {"runtime/worker.py": worker, "runtime/parallel.py": PUMP_OK},
            select="SD202",
        )
        assert rule_ids(findings) == {"SD202"}
        assert len(findings) == 1
        assert "stats" in findings[0].message
        assert findings[0].path == "repro/runtime/worker.py"

    def test_dead_handler_arm_flags(self, tmp_path):
        pump = PUMP_OK + (
            '    elif kind == "retired":\n'
            "        return None\n"
        )
        findings = run_tree(
            tmp_path,
            {"runtime/worker.py": WORKER_OK, "runtime/parallel.py": pump},
            select="SD202",
        )
        assert rule_ids(findings) == {"SD202"}
        assert "retired" in findings[0].message
        assert findings[0].path == "repro/runtime/parallel.py"

    def test_arity_mismatch_flags(self, tmp_path):
        worker = (
            "def work(shard, out_queue):\n"
            '    out_queue.put(("ok", shard))\n'
            '    out_queue.put(("error", shard, 0, "boom"))\n'
        )
        findings = run_tree(
            tmp_path,
            {"runtime/worker.py": worker, "runtime/parallel.py": PUMP_OK},
            select="SD202",
        )
        assert rule_ids(findings) == {"SD202"}
        assert any(
            "puts 2-tuples" in f.message and "unpacks 4-tuples" in f.message
            for f in findings
        )

    def test_matching_protocol_passes(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {"runtime/worker.py": WORKER_OK, "runtime/parallel.py": PUMP_OK},
            select="SD202",
        )
        assert findings == []

    def test_silent_when_either_side_absent(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {"runtime/worker.py": WORKER_OK},
            select="SD202",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SD203: sequence-number arithmetic discipline (project rule)
# ---------------------------------------------------------------------------


class TestSD203:
    def test_raw_add_flags(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {"core/seqmath.py": "def advance(seq, n):\n    return seq + n\n"},
            select="SD203",
        )
        assert rule_ids(findings) == {"SD203"}
        assert "seq_add" in findings[0].message

    def test_augmented_and_compare_flag(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {
                "core/seqmath.py": (
                    "def bump(seq, ack):\n"
                    "    if seq < ack:\n"
                    "        seq += 1\n"
                    "    return seq\n"
                )
            },
            select="SD203",
        )
        assert rule_ids(findings) == {"SD203"}
        assert len(findings) == 2

    def test_helpers_and_explicit_mod_pass(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {
                "core/seqmath.py": (
                    "from repro.packet.tcp import seq_add, seq_diff\n"
                    "def advance(seq, n):\n"
                    "    return seq_add(seq, n)\n"
                    "def span(end_seq, start_seq):\n"
                    "    return seq_diff(end_seq, start_seq)\n"
                    "def wrap(seq):\n"
                    "    return (seq + 1) % 2**32\n"
                )
            },
            select="SD203",
        )
        assert findings == []

    def test_untainted_names_pass(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {
                "core/seqmath.py": (
                    "def total(size, count):\n"
                    "    return size + count\n"
                    "def grown(seq_len):\n"
                    "    return seq_len + 1\n"
                )
            },
            select="SD203",
        )
        assert findings == []

    def test_out_of_scope_dirs_pass(self, tmp_path):
        # The discipline is scoped to core/, streams/, packet/.
        findings = run_tree(
            tmp_path,
            {"analysis/plots.py": "def advance(seq, n):\n    return seq + n\n"},
            select="SD203",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# SD204: resource lifecycle (project rule)
# ---------------------------------------------------------------------------


class TestSD204:
    def test_self_socket_without_close_flags(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {
                "service/listener.py": (
                    "import socket\n"
                    "class Listener:\n"
                    "    def start(self):\n"
                    "        self.sock = socket.socket()\n"
                )
            },
            select="SD204",
        )
        assert rule_ids(findings) == {"SD204"}
        assert "self.sock" in findings[0].message

    def test_local_never_closed_flags(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {
                "service/probe.py": (
                    "import socket\n"
                    "def probe(addr):\n"
                    "    sock = socket.socket()\n"
                    "    sock.connect(addr)\n"
                )
            },
            select="SD204",
        )
        assert rule_ids(findings) == {"SD204"}
        assert "never closed" in findings[0].message

    def test_leaky_return_before_close_flags(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {
                "service/probe.py": (
                    "import socket\n"
                    "def probe(addr, dry):\n"
                    "    sock = socket.socket()\n"
                    "    if dry:\n"
                    "        return 0\n"
                    "    sock.close()\n"
                    "    return 1\n"
                )
            },
            select="SD204",
        )
        assert rule_ids(findings) == {"SD204"}
        assert "leak" in findings[0].message

    def test_with_finally_close_and_escape_pass(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {
                "service/clean.py": (
                    "import socket\n"
                    "def scoped(addr):\n"
                    "    with socket.socket() as sock:\n"
                    "        sock.connect(addr)\n"
                    "def guarded(addr):\n"
                    "    sock = socket.socket()\n"
                    "    try:\n"
                    "        sock.connect(addr)\n"
                    "    finally:\n"
                    "        sock.close()\n"
                    "def handoff(pool):\n"
                    "    sock = socket.socket()\n"
                    "    pool.append(sock)\n"
                    "class Owner:\n"
                    "    def start(self):\n"
                    "        self.sock = socket.socket()\n"
                    "    def stop(self):\n"
                    "        self.sock.close()\n"
                )
            },
            select="SD204",
        )
        assert findings == []

    def test_out_of_scope_dirs_pass(self, tmp_path):
        findings = run_tree(
            tmp_path,
            {
                "analysis/grab.py": (
                    "import socket\n"
                    "def probe(addr):\n"
                    "    sock = socket.socket()\n"
                    "    sock.connect(addr)\n"
                )
            },
            select="SD204",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Project infrastructure: cache, graph dump, output formats, scoping
# ---------------------------------------------------------------------------


class TestCache:
    def bad_file(self, tmp_path: Path) -> Path:
        target = tmp_path / "repro" / "core" / "engine.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self._c_packets.inc()\n",
            encoding="utf-8",
        )
        return target

    def test_warm_run_is_finding_transparent(self, tmp_path):
        self.bad_file(tmp_path)
        cache = tmp_path / "cache.json"
        cold, _ = check_paths(
            [tmp_path], Config(root=tmp_path), cache_path=cache
        )
        assert cache.exists()
        warm, _ = check_paths(
            [tmp_path], Config(root=tmp_path), cache_path=cache
        )
        assert [f.to_dict() for f in cold] == [f.to_dict() for f in warm]
        assert rule_ids(cold) == {"SD101"}

    def test_content_edit_invalidates_entry(self, tmp_path):
        target = self.bad_file(tmp_path)
        cache = tmp_path / "cache.json"
        cold, _ = check_paths(
            [tmp_path], Config(root=tmp_path), cache_path=cache
        )
        assert cold
        target.write_text(
            "class E:\n"
            "    def process(self, pkt):\n"
            "        if self.tel_on:\n"
            "            self._c_packets.inc()\n",
            encoding="utf-8",
        )
        fixed, _ = check_paths(
            [tmp_path], Config(root=tmp_path), cache_path=cache
        )
        assert fixed == []

    def test_signature_mismatch_resets_cache(self, tmp_path):
        from repro.devtools.splitcheck import FactsCache
        from repro.devtools.splitcheck.cache import fingerprint
        from repro.devtools.splitcheck.facts import extract_facts
        import ast as ast_mod

        source = "X = 1\n"
        facts = extract_facts(
            "repro/core/x.py", ast_mod.parse(source), source
        )
        path = tmp_path / "cache.json"
        first = FactsCache(path, "signature-a")
        first.put("repro/core/x.py", fingerprint(source.encode()), facts, [])
        first.write()
        same = FactsCache(path, "signature-a")
        assert same.get("repro/core/x.py", fingerprint(source.encode()))
        other = FactsCache(path, "signature-b")
        assert other.get("repro/core/x.py", fingerprint(source.encode())) is None

    def test_prune_drops_departed_files(self, tmp_path):
        self.bad_file(tmp_path)
        cache = tmp_path / "cache.json"
        check_paths([tmp_path], Config(root=tmp_path), cache_path=cache)
        entries = json.loads(cache.read_text(encoding="utf-8"))["files"]
        assert "repro/core/engine.py" in entries
        (tmp_path / "repro" / "core" / "engine.py").unlink()
        check_paths([tmp_path], Config(root=tmp_path), cache_path=cache)
        entries = json.loads(cache.read_text(encoding="utf-8"))["files"]
        assert entries == {}


class TestProjectCli:
    def bad_file(self, tmp_path: Path) -> Path:
        target = tmp_path / "repro" / "core" / "engine.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "class E:\n"
            "    def process(self, pkt):\n"
            "        self._c_packets.inc()\n",
            encoding="utf-8",
        )
        return target

    def test_graph_dump(self, tmp_path, capsys):
        target = tmp_path / "repro" / "core" / "fast.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "from repro.packet.tcp import seq_add\n"
            'C = reg.counter("repro_engine_x_total", "d")\n'
            "def hot(seq):\n"
            "    return seq_add(seq, 1)\n",
            encoding="utf-8",
        )
        code = splitcheck_main(
            [str(tmp_path), "--root", str(tmp_path), "--graph"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        entry = payload["files"]["repro/core/fast.py"]
        assert entry["module"] == "repro.core.fast"
        assert entry["imports"]["seq_add"] == "repro.packet.tcp.seq_add"
        assert entry["metrics"][0]["name"] == "repro_engine_x_total"
        assert [f["name"] for f in entry["functions"]] == ["hot"]

    def test_github_output_format(self, tmp_path, capsys):
        target = self.bad_file(tmp_path)
        code = splitcheck_main(
            [
                str(target),
                "--root",
                str(tmp_path),
                "--output-format",
                "github",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=SD101" in out

    @requires_toml
    def test_per_rule_exclude_carves_file_out(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.splitcheck.rules.SD101]\n"
            'exclude = ["*/core/engine.py"]\n',
            encoding="utf-8",
        )
        target = self.bad_file(tmp_path)
        findings, _ = check_paths([tmp_path], load_config(tmp_path))
        assert findings == []
        # Without the carve-out the same file flags.
        findings, _ = check_paths([tmp_path], Config(root=tmp_path))
        assert rule_ids(findings) == {"SD101"}

    def test_no_cache_flag_leaves_no_file(self, tmp_path):
        target = self.bad_file(tmp_path)
        assert (
            splitcheck_main(
                [str(target), "--root", str(tmp_path), "--no-cache"]
            )
            == 1
        )
        assert not (tmp_path / ".splitcheck-cache.json").exists()

    def test_default_cache_written_at_root(self, tmp_path):
        target = self.bad_file(tmp_path)
        assert splitcheck_main([str(target), "--root", str(tmp_path)]) == 1
        assert (tmp_path / ".splitcheck-cache.json").exists()


class TestMypyRatchet:
    @requires_toml
    def test_override_list_parsing(self):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            from check_mypy_ratchet import override_modules
        finally:
            sys.path.pop(0)
        text = (
            "[tool.mypy]\nstrict = true\n"
            "[[tool.mypy.overrides]]\n"
            'module = ["repro.core.*", "repro.cli"]\n'
            "disallow_untyped_defs = false\n"
        )
        assert override_modules(text) == ["repro.core.*", "repro.cli"]
        assert override_modules("[tool.mypy]\nstrict = true\n") is None

    @requires_toml
    def test_current_repo_passes_ratchet(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_mypy_ratchet.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


# ---------------------------------------------------------------------------
# Self-run: the real tree must be clean
# ---------------------------------------------------------------------------


class TestSelfRun:
    def test_core_match_runtime_service_clean_with_zero_baseline(self):
        """The acceptance invariant: hot-path dirs clean (including the
        SD2xx project pass), baseline empty."""
        config = load_config(REPO_ROOT)
        findings, checked = check_paths(
            [SRC / "core", SRC / "match", SRC / "runtime", SRC / "service"],
            config,
        )
        assert checked > 10
        assert findings == [], "\n".join(f.render() for f in findings)
        baseline = load_baseline(config.baseline_path)
        assert baseline == {}, "repo policy: no grandfathered findings"

    def test_full_package_clean(self):
        config = load_config(REPO_ROOT)
        findings, checked = check_paths([SRC], config)
        assert checked > 50
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_extended_scope_benchmarks_and_helpers_clean(self):
        """The per-rule pyproject scopes pull benchmarks/ and
        tests/helpers.py into the determinism/timing/byte subset; they
        must stay clean too."""
        config = load_config(REPO_ROOT)
        findings, checked = check_paths(
            [
                SRC,
                REPO_ROOT / "benchmarks",
                REPO_ROOT / "tests" / "helpers.py",
            ],
            config,
        )
        assert checked > 100
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_telemetry_and_packet_clean(self):
        config = load_config(REPO_ROOT)
        findings, _ = check_paths(
            [SRC / "telemetry", SRC / "packet", SRC / "streams"], config
        )
        assert findings == [], "\n".join(f.render() for f in findings)
