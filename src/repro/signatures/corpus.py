"""The bundled signature corpus and its deterministic generator.

The paper evaluates against a Snort signature set.  Snort's rules are not
redistributable here, so the package ships a synthetic corpus with the
same relevant statistics: ~300 exact-content strings whose length
distribution, byte composition (text vs binary), and port skew mirror the
classic web/shellcode/backdoor rule categories.  ``load_bundled_rules``
reads the shipped file; ``synthesize_corpus`` regenerates it (and is what
produced it -- the corpus is a reproducible artifact, not a fixture).
"""

from __future__ import annotations

import importlib.resources
import random

from .model import RuleSet, Signature
from .rules import dump_rules, parse_rules

BUNDLED_RULES_FILE = "community.rules"

# Base content strings in the style of the classic public rule categories.
# Each entry: (category, port or None, content bytes).
_BASES: list[tuple[str, int | None, bytes]] = [
    ("WEB-IIS cmd.exe access", 80, b"cmd.exe"),
    ("WEB-IIS unicode directory traversal", 80, b"/..%c0%af../winnt/system32/"),
    ("WEB-IIS ISAPI .ida access", 80, b"GET /default.ida?NNNNNNNNNNNNNNNN"),
    ("WEB-CGI phf access", 80, b"GET /cgi-bin/phf?Qalias=x%0a/bin/cat"),
    ("WEB-MISC robots.txt probe chain", 80, b"GET /robots.txt HTTP/1.0#probe-chain"),
    ("WEB-PHP remote include", 80, b"GET /index.php?page=http://"),
    ("WEB-ATTACKS /etc/passwd retrieval", 80, b"cat /etc/passwd | mail"),
    ("WEB-FRONTPAGE _vti_bin access", 80, b"POST /_vti_bin/shtml.exe/_vti_rpc"),
    ("WEB-COLDFUSION admin probe", 80, b"GET /cfdocs/expeval/openfile.cfm"),
    ("WEB-MISC Apache chunked overflow", 80, b"Transfer-Encoding: chunked#overflow-xx"),
    ("SHELLCODE x86 NOP sled", None, b"\x90" * 14),
    ("SHELLCODE x86 setuid(0)", None, b"\x31\xc0\x31\xdb\xb0\x17\xcd\x80\x31\xc0\xb0\x2e\xcd\x80"),
    ("SHELLCODE /bin/sh execve", None, b"\x31\xc0\x50\x68//sh\x68/bin\x89\xe3\xcd\x80"),
    ("SHELLCODE sparc NOP", None, b"\x80\x1c\x40\x11\x80\x1c\x40\x11\x80\x1c\x40\x11"),
    ("EXPLOIT named overflow ADMROCKS", 53, b"ADMROCKS-xx"),
    ("EXPLOIT wu-ftpd SITE EXEC format", 21, b"SITE EXEC %020d|%.f%.f|"),
    ("EXPLOIT ssh CRC32 compensation", 22, b"\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x98"),
    ("BACKDOOR BackOrifice header", None, b"\xce\x63\xd1\xd2\x16\xe7\x13\xcf\x38\xa5\xa5\x86"),
    ("BACKDOOR SubSeven banner", 27374, b"connected. time/date:"),
    ("BACKDOOR netbus getinfo", 12345, b"GetInfo\r\nNetBus"),
    ("TROJAN typot covert channel", None, b"\x55\xaaINVOKE\x55\xaaRETURN\x55\xaa"),
    ("FTP site exec attempt", 21, b"SITE EXEC /bin/sh -c"),
    ("SMTP expn root probe chain", 25, b"EXPN root@localhost#probe"),
    ("SMTP sendmail 8.6.9 pipe", 25, b"MAIL FROM: |/usr/bin/tail"),
    ("DNS version.bind probe chain", 53, b"\x07version\x04bind\x00#chain"),
    ("RPC portmap sadmind request", 111, b"\x01\x86\xa0\x00\x00\x00\x02\x00\x00\x00\x03\x00\x01"),
    ("NETBIOS SMB trans2 overflow", 139, b"\x00\x00\x00\x90\xffSMB\x32\x00\x00\x00\x00"),
    ("POLICY VNC server response", 5900, b"RFB 003.00x-probe"),
    ("SCAN cybercop os probe", None, b"AAAAAAAAAAAAAAAAAAA-cybercop"),
    ("MISC gopher proxy chain", 70, b"gopher://probe-chain:70/"),
    ("WORM CodeRed II payload marker", 80, b"CODERED-II-XXXX-INFECT-MARKER"),
    ("WORM slammer payload head", None, b"\x04\x01\x01\x01\x01\x01\x01\x01\x01\x01\x01\x01\x01sock"),
    ("WORM nimda readme.eml", 80, b"readme.eml-autoload-window"),
    ("P2P kazaa download request", None, b"GET /.hash=d41d8cd98f00b204"),
    ("IMAP login overflow", 143, b"LOGIN {4096}AAAAAAAAAAAAAAAA"),
    ("POP3 user overflow", 110, b"USER AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"),
    ("X11 open permission probe", 6000, b"\x6c\x00\x0b\x00\x00\x00\x00\x00xopen"),
    ("ORACLE tns listener stop", 1521, b"(CONNECT_DATA=(COMMAND=stop))"),
    ("MSSQL xp_cmdshell exec", 1433, b"x\x00p\x00_\x00c\x00m\x00d\x00s\x00h\x00e\x00l\x00l\x00"),
    ("TELNET solaris login -f root", 23, b"login: -froot\x00probe"),
]

# Suffix/prefix mutators used to expand the bases into families, the way
# real rule sets contain many variants of one exploit string.
_VARIANT_TAGS = [b"", b"/v2", b"-gen2", b".asp", b"%20", b"\x90\x90", b"?id=", b"~bak"]


def synthesize_corpus(
    *,
    families: int = 8,
    seed: int = 20060811,  # SIGCOMM 2006 publication date
) -> RuleSet:
    """Build the deterministic synthetic corpus (~``len(_BASES) * families``).

    Variant patterns append/prepend short decorations and, for binary
    content, splice random rare bytes, producing the heavy mid-length
    distribution real rule sets show (most patterns 10-40 bytes, a text
    majority, a long tail past 100 bytes).
    """
    rng = random.Random(seed)
    rules = RuleSet()
    sid = 1000001
    for msg, port, content in _BASES:
        for variant in range(families):
            pattern = content
            if variant:
                tag = _VARIANT_TAGS[variant % len(_VARIANT_TAGS)]
                pattern = (pattern + tag) if variant % 2 else (tag + pattern)
                if rng.random() < 0.3:
                    splice = bytes([rng.randrange(1, 255) for _ in range(rng.randrange(2, 6))])
                    pattern = pattern + splice
            rules.add(
                Signature(
                    sid=sid,
                    pattern=pattern,
                    msg=msg if not variant else f"{msg} (variant {variant})",
                    dst_port=port,
                )
            )
            sid += 1
    # A long tail of big signatures (worm payloads, encoded blobs).
    for i in range(12):
        size = rng.randrange(80, 220)
        pattern = bytes([rng.randrange(33, 127) for _ in range(size)])
        rules.add(
            Signature(
                sid=sid,
                pattern=pattern,
                msg=f"WORM long payload blob {i}",
                dst_port=rng.choice([80, 445, None]),
            )
        )
        sid += 1
    # A handful of too-short signatures to exercise the unsplittable path.
    for i, short in enumerate([b"JJ-probe", b"\x90\x90\x90\x90\x90", b"root::0:0", b"+ +\n"]):
        rules.add(
            Signature(
                sid=sid,
                pattern=short,
                msg=f"SHORT legacy signature {i}",
                dst_port=None,
            )
        )
        sid += 1
    # UDP rules (matched whole per datagram; see SplitRuleSet.udp_whole).
    udp_bases: list[tuple[str, int | None, bytes]] = [
        ("DNS named version attempt", 53, b"\x07version\x04bind\x00\x00\x10\x00\x03"),
        ("DNS named iquery attempt", 53, b"\x00\x00\x10\x00\x00\x00\x00\x00\x01iquery"),
        ("RPC sadmind UDP ping", 111, b"\x01\x86\xa0\x00\x00\x00\x02\x00\x00\x00\x00udp"),
        ("MS-SQL Slammer worm propagation", 1434, b"\x04\x01\x01\x01\x01\x01\x01\x01\x01\x01sockf"),
        ("SNMP public community probe", 161, b"\x04\x06public\xa0"),
        ("TFTP GET passwd", 69, b"\x00\x01/etc/passwd\x00octet\x00"),
        ("BACKDOOR DeepThroat response", 2140, b"My Mouth is Open-dt"),
        ("DDOS trin00 daemon to master", 31335, b"l44adsl-trin00-pong"),
    ]
    for msg, port, content in udp_bases:
        rules.add(
            Signature(sid=sid, pattern=content, msg=msg, dst_port=port, protocol="udp")
        )
        sid += 1
    # Case-insensitive rules (HTTP methods/headers are case-insensitive on
    # many servers, so web rules are typically nocase).
    nocase_bases: list[tuple[str, int | None, bytes]] = [
        ("WEB-SQL union select attempt", 80, b"union select password from"),
        ("WEB-IIS cmd.exe nocase access", 80, b"cmd.exe?/c+dir+c:\\"),
        ("WEB-MISC etc/shadow nocase", 80, b"../../etc/shadow%00.html"),
        ("SMTP vrfy decode nocase", 25, b"vrfy decode@localhost"),
    ]
    for msg, port, content in nocase_bases:
        rules.add(
            Signature(
                sid=sid, pattern=content, msg=msg, dst_port=port, nocase=True
            )
        )
        sid += 1
    # Multi-content rules: every content must appear in the stream.
    multi_bases: list[tuple[str, int | None, bytes, tuple[bytes, ...]]] = [
        (
            "WEB-CGI formmail with recipient pipe",
            80,
            b"GET /cgi-bin/formmail.pl?recipient=",
            (b"|sendmail", b"-oi%20-t"),
        ),
        (
            "FTP authenticated site exec chain",
            21,
            b"SITE EXEC /usr/bin/perl -e",
            (b"PASS ", b"USER "),
        ),
        (
            "SMTP content-type overflow combo",
            25,
            b"Content-Type: audio/x-midi; name=",
            (b"MAIL FROM:", b"\x90\x90\x90\x90"),
        ),
    ]
    for msg, port, content, extras in multi_bases:
        rules.add(
            Signature(
                sid=sid,
                pattern=content,
                msg=msg,
                dst_port=port,
                extra_contents=extras,
            )
        )
        sid += 1
    return rules


def load_bundled_rules() -> RuleSet:
    """Load the corpus shipped inside the package."""
    resource = importlib.resources.files(__package__).joinpath(
        "data", BUNDLED_RULES_FILE
    )
    return parse_rules(resource.read_text(encoding="utf-8"))


def regenerate_bundled_file(path) -> int:
    """Write the synthetic corpus to ``path``; returns the rule count."""
    rules = synthesize_corpus()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# Synthetic Split-Detect evaluation corpus (auto-generated)\n")
        handle.write("# Regenerate with repro.signatures.corpus.regenerate_bundled_file\n")
        handle.write(dump_rules(rules))
    return len(rules)
