"""The multiprocessing runner: flow-hashed shards with bounded queues.

Topology: one feeder (this process) routes batches onto N bounded
per-worker queues; each worker owns one shard -- a private engine built
from the shared :class:`EngineSpec` -- and reports a
:class:`ShardReport` back on a results queue at drain time.  There is no
cross-shard communication at all during the run; the flow-consistent
hash (:mod:`repro.runtime.sharding`) is what makes that sound.

Backpressure is explicit: a full queue either blocks the feeder
(lossless, the default) or sheds the batch and counts every dropped
packet (:class:`~repro.runtime.config.Backpressure`).  Shutdown is a
graceful drain -- a sentinel per queue, workers flush everything already
enqueued, then report -- so no in-flight batch is ever lost on the
lossless path.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
from collections.abc import Iterable
from time import monotonic, perf_counter
from typing import Any

from ..packet import TimedPacket
from .batching import iter_batches
from .config import Backpressure, RunnerConfig
from .report import RuntimeReport, merge_shard_reports
from .sharding import ShardRouter
from .spec import EngineSpec
from .worker import DRAIN, shard_worker_main

__all__ = ["ParallelRunner", "WorkerFailure"]

#: Seconds between liveness checks while a blocking put waits on a full
#: queue (a dead worker must not hang the feeder forever).
_PUT_POLL_SECONDS = 0.5


class WorkerFailure(RuntimeError):
    """A shard worker died or reported an engine error."""


class ParallelRunner:
    """N shared-nothing engine shards in worker processes."""

    def __init__(
        self,
        spec: EngineSpec,
        *,
        workers: int,
        config: RunnerConfig | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers = workers
        self.config = config or RunnerConfig()
        self.router = ShardRouter(workers, self.config.shard_policy)

    # -- feeding ---------------------------------------------------------

    def _put_blocking(
        self,
        in_queue: Any,
        item: list[TimedPacket] | None,
        process: Any,
        shard: int,
    ) -> None:
        """Lossless enqueue: wait for the worker, but notice if it died."""
        while True:
            try:
                in_queue.put(item, timeout=_PUT_POLL_SECONDS)
                return
            except queue_mod.Full:
                if not process.is_alive():
                    raise WorkerFailure(
                        f"shard {shard} worker exited with its queue full"
                    ) from None

    def run(self, packets: Iterable[TimedPacket]) -> RuntimeReport:
        """Route, process in parallel, drain gracefully, merge."""
        config = self.config
        ctx = mp.get_context(config.start_method)
        in_queues = [ctx.Queue(maxsize=config.queue_depth) for _ in range(self.workers)]
        out_queue = ctx.Queue()
        processes = [
            ctx.Process(
                target=shard_worker_main,
                args=(index, self.spec, config, in_queues[index], out_queue),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            for index in range(self.workers)
        ]
        start = perf_counter()
        for process in processes:
            process.start()
        shed_packets = 0
        shed_batches = 0
        batches_routed = 0
        shard_of = self.router.shard_of
        shed = config.backpressure is Backpressure.SHED
        try:
            for batch in iter_batches(packets, config.batch_size):
                buckets: list[list[TimedPacket]] = [[] for _ in range(self.workers)]
                for packet in batch:
                    buckets[shard_of(packet)].append(packet)
                for index, bucket in enumerate(buckets):
                    if not bucket:
                        continue
                    if shed:
                        try:
                            in_queues[index].put_nowait(bucket)
                            batches_routed += 1
                        except queue_mod.Full:
                            shed_packets += len(bucket)
                            shed_batches += 1
                    else:
                        self._put_blocking(
                            in_queues[index], bucket, processes[index], index
                        )
                        batches_routed += 1
            # Graceful drain: one sentinel per queue *after* all batches;
            # workers flush everything already enqueued before reporting.
            for index, in_queue in enumerate(in_queues):
                self._put_blocking(in_queue, DRAIN, processes[index], index)
            reports: dict[int, Any] = {}
            errors: dict[int, str] = {}
            deadline = monotonic() + config.drain_timeout
            for _ in range(self.workers):
                remaining = deadline - monotonic()
                if remaining <= 0:
                    raise WorkerFailure(
                        f"drain timed out; shards reporting: {sorted(reports)}"
                    )
                try:
                    status, shard, payload = out_queue.get(timeout=remaining)
                except queue_mod.Empty:
                    raise WorkerFailure(
                        f"drain timed out; shards reporting: {sorted(reports)}"
                    ) from None
                if status == "ok":
                    reports[shard] = payload
                else:
                    errors[shard] = payload
            if errors:
                detail = "\n".join(
                    f"--- shard {shard} ---\n{tb}" for shard, tb in sorted(errors.items())
                )
                raise WorkerFailure(f"{len(errors)} shard worker(s) failed:\n{detail}")
        finally:
            for process in processes:
                process.join(timeout=5.0)
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            for in_queue in in_queues:
                in_queue.close()
                in_queue.cancel_join_thread()
            out_queue.close()
            out_queue.cancel_join_thread()
        return merge_shard_reports(
            list(reports.values()),
            mode="parallel",
            workers=self.workers,
            wall_seconds=perf_counter() - start,
            batches_routed=batches_routed,
            shed_packets=shed_packets,
            shed_batches=shed_batches,
        )
