"""Synthetic benign/attack traffic generation (the trace substitute)."""

from .generator import (
    GeneratedFlow,
    TrafficProfile,
    generate_flow,
    generate_trace,
    inject_attacks,
    merge_streams,
)
from .payloads import (
    benign_payload,
    binary_blob,
    html_body,
    http_request,
    http_response,
    interactive_echo,
    smtp_session,
)

__all__ = [
    "GeneratedFlow",
    "TrafficProfile",
    "benign_payload",
    "binary_blob",
    "generate_flow",
    "generate_trace",
    "html_body",
    "http_request",
    "http_response",
    "inject_attacks",
    "interactive_echo",
    "merge_streams",
    "smtp_session",
]
