"""Tests for the signature model and rule parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.signatures import (
    Piece,
    RuleParseError,
    RuleSet,
    Signature,
    SplitSignature,
    decode_content,
    dump_rules,
    encode_content,
    format_rule,
    parse_rule,
    parse_rules,
)


class TestSignature:
    def test_basic(self):
        sig = Signature(sid=1, pattern=b"attack", msg="test", dst_port=80)
        assert len(sig) == 6
        assert sig.applies_to_port(80)
        assert not sig.applies_to_port(443)

    def test_any_port(self):
        sig = Signature(sid=1, pattern=b"attack")
        assert sig.applies_to_port(80) and sig.applies_to_port(12345)

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            Signature(sid=1, pattern=b"")

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            Signature(sid=1, pattern=b"x", dst_port=99999)


class TestPieceAndSplit:
    def sig(self):
        return Signature(sid=9, pattern=b"ABCDEFGHIJKLMNOPQRSTUVWX")  # 24 bytes

    def test_piece_offset_validated(self):
        sig = self.sig()
        Piece(signature=sig, index=0, offset=4, data=b"EFGH")
        with pytest.raises(ValueError):
            Piece(signature=sig, index=0, offset=4, data=b"WRONG")

    def make_split(self, bounds, p=8):
        sig = self.sig()
        pieces = tuple(
            Piece(signature=sig, index=i, offset=bounds[i],
                  data=sig.pattern[bounds[i]:bounds[i + 1]])
            for i in range(len(bounds) - 1)
        )
        return SplitSignature(signature=sig, pieces=pieces, piece_length=p)

    def test_valid_split(self):
        split = self.make_split([0, 8, 16, 24])
        assert split.k == 3
        assert split.small_packet_threshold == 16

    def test_fewer_than_three_pieces_rejected(self):
        with pytest.raises(ValueError):
            self.make_split([0, 12, 24])

    def test_gap_rejected(self):
        sig = self.sig()
        pieces = (
            Piece(signature=sig, index=0, offset=0, data=sig.pattern[0:8]),
            Piece(signature=sig, index=1, offset=9, data=sig.pattern[9:17]),
            Piece(signature=sig, index=2, offset=17, data=sig.pattern[17:24]),
        )
        with pytest.raises(ValueError):
            SplitSignature(signature=sig, pieces=pieces, piece_length=7)

    def test_short_piece_rejected(self):
        with pytest.raises(ValueError):
            self.make_split([0, 8, 16, 20, 24])  # 4-byte pieces below p=8


class TestRuleSet:
    def test_by_sid(self):
        rules = RuleSet()
        rules.add(Signature(sid=5, pattern=b"five"))
        assert rules.by_sid(5).pattern == b"five"
        with pytest.raises(KeyError):
            rules.by_sid(6)

    def test_length_histogram(self):
        rules = RuleSet()
        rules.add(Signature(sid=1, pattern=b"aaaa"))
        rules.add(Signature(sid=2, pattern=b"bbbb"))
        rules.add(Signature(sid=3, pattern=b"cc"))
        assert rules.length_histogram() == {2: 1, 4: 2}


class TestContentCodec:
    def test_plain_text(self):
        assert decode_content("cmd.exe") == b"cmd.exe"

    def test_hex_block(self):
        assert decode_content("|41 42|C") == b"ABC"

    def test_hex_block_no_spaces(self):
        assert decode_content("|4142|") == b"AB"

    def test_escapes(self):
        assert decode_content(r"a\|b\"c\\d") == b'a|b"c\\d'

    def test_unterminated_hex_rejected(self):
        with pytest.raises(ValueError):
            decode_content("|41")

    def test_odd_hex_rejected(self):
        with pytest.raises(ValueError):
            decode_content("|414|")

    def test_encode_printable(self):
        assert encode_content(b"cmd.exe") == "cmd.exe"

    def test_encode_binary(self):
        assert encode_content(b"\x90\x90A") == "|90 90|A"

    @given(st.binary(min_size=1, max_size=64))
    def test_codec_round_trip(self, pattern):
        assert decode_content(encode_content(pattern)) == pattern


class TestRuleParsing:
    LINE = 'alert tcp any any -> any 80 (msg:"WEB-IIS cmd.exe access"; content:"cmd.exe"; sid:1002;)'

    def test_parse_basic(self):
        sig = parse_rule(self.LINE)
        assert sig.sid == 1002
        assert sig.pattern == b"cmd.exe"
        assert sig.dst_port == 80
        assert sig.msg == "WEB-IIS cmd.exe access"

    def test_parse_any_port(self):
        sig = parse_rule('alert tcp any any -> any any (msg:"m"; content:"x"; sid:1;)')
        assert sig.dst_port is None

    def test_semicolon_inside_content(self):
        sig = parse_rule('alert tcp any any -> any 80 (msg:"m"; content:"a;b"; sid:1;)')
        assert sig.pattern == b"a;b"

    def test_multiple_contents_keeps_longest(self):
        sig = parse_rule(
            'alert tcp any any -> any 80 (msg:"m"; content:"ab"; content:"abcdef"; sid:1;)'
        )
        assert sig.pattern == b"abcdef"

    def test_missing_sid_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any 80 (msg:"m"; content:"x";)')

    def test_missing_content_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any 80 (msg:"m"; sid:1;)')

    def test_udp_rule_parses_with_protocol(self):
        sig = parse_rule('alert udp any any -> any 53 (msg:"m"; content:"x"; sid:1;)')
        assert sig.protocol == "udp"
        assert sig.protocol_number == 17
        assert sig.dst_port == 53

    def test_icmp_rule_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert icmp any any -> any any (msg:"m"; content:"x"; sid:1;)')

    def test_udp_rule_round_trips(self):
        sig = Signature(sid=8, pattern=b"\x07version\x04bind", protocol="udp", dst_port=53)
        assert parse_rule(format_rule(sig)) == sig

    def test_comments_and_blanks_skipped(self):
        text = f"# header\n\n{self.LINE}\n"
        rules = parse_rules(text)
        assert len(rules) == 1

    def test_format_round_trip(self):
        sig = Signature(sid=77, pattern=b"\x90\x90/bin/sh", msg="shellcode", dst_port=None)
        assert parse_rule(format_rule(sig)) == sig

    def test_dump_round_trip(self):
        sigs = [
            Signature(sid=1, pattern=b"one", msg="m1", dst_port=80),
            Signature(sid=2, pattern=b'tw"o;|', msg="m2"),
        ]
        parsed = parse_rules(dump_rules(sigs))
        assert list(parsed) == sigs
