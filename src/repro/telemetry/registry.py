"""Dependency-free runtime telemetry: counters, gauges, histograms, journal.

The paper's headline claims are quantitative (state ratio, diversion
fraction, per-stage cycle budgets), so every run should be able to report
them live.  This module is the instrumentation core the IPS engines call
into: a :class:`TelemetryRegistry` holding named metric families, plus a
bounded structured :class:`EventJournal` for discrete events (diversions,
reinstatements, eviction sweeps).

Design constraints, in priority order:

1. **Zero cost when disabled.**  Every engine defaults to the shared
   :data:`NULL_REGISTRY`; its instruments are no-op singletons, and the
   engines additionally guard each timing site on ``registry.enabled``
   so a disabled run never reads the monotonic clock.
2. **No dependencies.**  Pure stdlib; exporters (`export.py`) emit
   Prometheus text format and JSON without a client library.
3. **Fixed bucket edges.**  Histograms pre-declare their edges (the
   Prometheus model), so observation is one bisect + two adds and the
   export is reproducible across runs.

Metric naming follows ``repro_<subsystem>_<name>_<unit>`` (see
DESIGN.md's Telemetry section); label values partition a family into
children, e.g. ``repro_fastpath_anomaly_total{cause="tiny_segment"}``.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from collections.abc import Iterator, Sequence
from typing import Any

#: Latency bucket edges in nanoseconds (monotonic-clock deltas).  Spans
#: sub-microsecond pure-Python dispatch up to multi-millisecond slow-path
#: reassembly bursts; values above the last edge land in +Inf.
LATENCY_NS_BUCKETS: tuple[float, ...] = (
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    500_000.0,
    1_000_000.0,
    2_500_000.0,
    10_000_000.0,
    50_000_000.0,
)

#: Size bucket edges in bytes (payload sizes, buffer occupancy).  Edges
#: track wire reality: tiny-segment threshold region, common MTU payloads
#: (1460), and the provisioned 4 KiB reassembly buffer.
SIZE_BYTES_BUCKETS: tuple[float, ...] = (
    0.0,
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1_024.0,
    1_460.0,
    4_096.0,
    16_384.0,
    65_536.0,
)

#: Default bound on the structured event journal.
JOURNAL_CAPACITY = 1024


def _label_key(
    label_names: tuple[str, ...], labels: dict[str, str]
) -> tuple[str, ...]:
    """Validate and order label values against the family's declaration."""
    if set(labels) != set(label_names):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared names {sorted(label_names)}"
        )
    return tuple(str(labels[name]) for name in label_names)


class Counter:
    """A monotonically increasing metric family.

    With no declared label names the family is its own single child and
    ``inc`` applies directly; with label names, call ``labels(...)`` to
    bind (and cache) a child per label-value combination.
    """

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._values: dict[tuple[str, ...], float] = {}
        self._children: dict[tuple[str, ...], _BoundCounter] = {}
        if not self.label_names:
            self._values[()] = 0

    def labels(self, **labels: str) -> "_BoundCounter":
        key = _label_key(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            self._values.setdefault(key, 0)
            child = _BoundCounter(self._values, key)
            self._children[key] = child
        return child

    def inc(self, amount: float = 1) -> None:
        if self.label_names:
            raise ValueError(f"{self.name} declares labels; use .labels(...)")
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self._values[()] += amount

    @property
    def value(self) -> float:
        """Unlabeled value, or the sum across children."""
        return sum(self._values.values())

    def value_for(self, **labels: str) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0)

    def samples(self) -> Iterator[tuple[dict[str, str], float]]:
        for key, value in sorted(self._values.items()):
            yield dict(zip(self.label_names, key)), value


class _BoundCounter:
    """One label-value combination of a :class:`Counter` (hot-path handle)."""

    __slots__ = ("_values", "_key")

    def __init__(self, values: dict[tuple[str, ...], float], key: tuple[str, ...]):
        self._values = values
        self._key = key

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counter cannot decrease")
        self._values[self._key] += amount

    @property
    def value(self) -> float:
        return self._values[self._key]


#: Valid gauge merge modes (how :meth:`TelemetryRegistry.merge` combines
#: two samples of the same gauge child): ``max`` keeps the larger value
#: (peaks, ratios -- the conservative cross-shard view), ``sum`` adds
#: (occupancy and state spread across shared-nothing shards), ``last``
#: lets the merged-in value win (freshest-sample semantics).
GAUGE_MERGE_MODES = ("max", "sum", "last")


class Gauge:
    """A point-in-time value family (occupancy, state bytes, ratios).

    ``merge`` declares how two samples of the same child combine when
    registries are merged (see :data:`GAUGE_MERGE_MODES`); it is part of
    the registration, so every site naming this gauge agrees on it.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        merge: str = "max",
    ) -> None:
        if merge not in GAUGE_MERGE_MODES:
            raise ValueError(
                f"gauge {name} merge mode {merge!r} not in {GAUGE_MERGE_MODES}"
            )
        self.name = name
        self.help = help
        self.merge = merge
        self.label_names = tuple(label_names)
        self._values: dict[tuple[str, ...], float] = {}
        self._children: dict[tuple[str, ...], _BoundGauge] = {}
        if not self.label_names:
            self._values[()] = 0

    def labels(self, **labels: str) -> "_BoundGauge":
        key = _label_key(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            self._values.setdefault(key, 0)
            child = _BoundGauge(self._values, key)
            self._children[key] = child
        return child

    def set(self, value: float) -> None:
        if self.label_names:
            raise ValueError(f"{self.name} declares labels; use .labels(...)")
        self._values[()] = value

    def inc(self, amount: float = 1) -> None:
        if self.label_names:
            raise ValueError(f"{self.name} declares labels; use .labels(...)")
        self._values[()] += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return sum(self._values.values())

    def value_for(self, **labels: str) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0)

    def samples(self) -> Iterator[tuple[dict[str, str], float]]:
        for key, value in sorted(self._values.items()):
            yield dict(zip(self.label_names, key)), value


class _BoundGauge:
    __slots__ = ("_values", "_key")

    def __init__(self, values: dict[tuple[str, ...], float], key: tuple[str, ...]):
        self._values = values
        self._key = key

    def set(self, value: float) -> None:
        self._values[self._key] = value

    def inc(self, amount: float = 1) -> None:
        self._values[self._key] += amount

    def dec(self, amount: float = 1) -> None:
        self._values[self._key] -= amount

    @property
    def value(self) -> float:
        return self._values[self._key]


class _HistogramChild:
    """Bucket counts + sum/count for one label combination.

    ``observe`` uses Prometheus ``le`` semantics: a value exactly on a
    bucket edge belongs to that edge's bucket (``value <= edge``).
    Per-bucket counts are stored non-cumulative; exporters cumulate.
    """

    __slots__ = ("edges", "bucket_counts", "sum", "count")

    def __init__(self, edges: tuple[float, ...]):
        self.edges = edges
        self.bucket_counts = [0] * (len(edges) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per edge plus +Inf (the Prometheus wire form)."""
        out: list[int] = []
        total = 0
        for n in self.bucket_counts:
            total += n
            out.append(total)
        return out


class Histogram:
    """Fixed-bucket-edge distribution family."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_NS_BUCKETS,
    ) -> None:
        edges = tuple(float(edge) for edge in buckets)
        if not edges:
            raise ValueError(f"histogram {name} needs at least one bucket edge")
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"histogram {name} bucket edges must strictly increase")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.edges = edges
        self._children: dict[tuple[str, ...], _HistogramChild] = {}
        if not self.label_names:
            self._children[()] = _HistogramChild(edges)

    def labels(self, **labels: str) -> _HistogramChild:
        key = _label_key(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            child = _HistogramChild(self.edges)
            self._children[key] = child
        return child

    def observe(self, value: float) -> None:
        if self.label_names:
            raise ValueError(f"{self.name} declares labels; use .labels(...)")
        self._children[()].observe(value)

    @property
    def count(self) -> int:
        return sum(child.count for child in self._children.values())

    @property
    def sum(self) -> float:
        return sum(child.sum for child in self._children.values())

    def child_for(self, **labels: str) -> _HistogramChild | None:
        return self._children.get(_label_key(self.label_names, labels))

    def samples(self) -> Iterator[tuple[dict[str, str], _HistogramChild]]:
        for key, child in sorted(self._children.items()):
            yield dict(zip(self.label_names, key)), child


class EventJournal:
    """Bounded ring of structured events.

    Each record is a plain dict ``{"ts", "subsystem", "event", **fields}``.
    When full, the oldest record is dropped and ``dropped`` counts it, so
    the journal's total-event arithmetic stays reconcilable:
    ``len(journal) + journal.dropped == journal.recorded``.
    """

    def __init__(self, capacity: int = JOURNAL_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"journal capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0

    def record(self, subsystem: str, event: str, ts: float = 0.0, **fields: Any) -> None:
        self.recorded += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append({"ts": ts, "subsystem": subsystem, "event": event, **fields})

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> list[dict[str, Any]]:
        return list(self._events)


class TelemetryRegistry:
    """Named metric families plus one event journal.

    Registration is idempotent: asking for an existing name returns the
    existing family (so harness code can look up what an engine created),
    but re-declaring it with a different kind, label set, or bucket edges
    is an error -- that is always a naming-collision bug.
    """

    enabled = True

    def __init__(self, *, journal_capacity: int = JOURNAL_CAPACITY) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self.journal = EventJournal(journal_capacity)

    def _register(self, cls, name: str, help: str, label_names, **kw):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"{name} already registered as {existing.kind}, not {cls.kind}"
                )
            if existing.label_names != tuple(label_names):
                raise ValueError(
                    f"{name} already registered with labels {existing.label_names}"
                )
            if kw.get("buckets") is not None and tuple(
                float(b) for b in kw["buckets"]
            ) != existing.edges:
                raise ValueError(f"{name} already registered with different buckets")
            if kw.get("merge") is not None and kw["merge"] != existing.merge:
                raise ValueError(
                    f"{name} already registered with merge={existing.merge!r}"
                )
            return existing
        kw = {key: value for key, value in kw.items() if value is not None}
        metric = cls(name, help, label_names, **kw) if kw else cls(name, help, label_names)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, label_names)

    def gauge(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        merge: str | None = None,
    ) -> Gauge:
        """Register (or look up) a gauge.

        ``merge=None`` means "no opinion": a new gauge defaults to
        ``max``, an existing one keeps whatever mode it was declared
        with -- so harness code can look a gauge up without knowing its
        merge rule, while two *explicit* conflicting declarations raise.
        """
        return self._register(Gauge, name, help, label_names, merge=merge)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_NS_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, label_names, buckets=buckets)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def metrics(self) -> list[Counter | Gauge | Histogram]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def merge(self, other) -> "TelemetryRegistry":
        """Fold another registry's metrics and journal into this one.

        Per-metric semantics (the sharded runtime's merge contract, also
        usable to combine registries from entirely separate runs):

        - **counters** add, per label combination;
        - **histograms** add bucket-wise (same declared edges required,
          enforced by registration) plus their sums and counts;
        - **gauges** combine per their declared ``merge`` mode: ``max``
          (default -- peaks, worst-shard ratios), ``sum`` (occupancy
          split across shared-nothing shards), or ``last`` (the
          merged-in sample wins);
        - **journal** events are re-recorded in arrival order (the ring
          stays bounded; events another registry already dropped are
          gone and stay counted only in its own totals).

        Missing families are created with the other registry's
        declaration.  Merging a disabled registry is a no-op.  Returns
        ``self`` so merges chain.
        """
        if not getattr(other, "enabled", False):
            return self
        for metric in other.metrics():
            if isinstance(metric, Counter):
                mine = self.counter(metric.name, metric.help, metric.label_names)
                for labels, value in metric.samples():
                    if value:
                        mine.labels(**labels).inc(value)
            elif isinstance(metric, Gauge):
                mine = self.gauge(
                    metric.name, metric.help, metric.label_names, merge=metric.merge
                )
                for labels, value in metric.samples():
                    key = _label_key(mine.label_names, labels)
                    if key not in mine._values or mine.merge == "last":
                        mine._values[key] = value
                    elif mine.merge == "sum":
                        mine._values[key] += value
                    else:
                        mine._values[key] = max(mine._values[key], value)
            else:
                mine = self.histogram(
                    metric.name, metric.help, metric.label_names, buckets=metric.edges
                )
                for labels, child in metric.samples():
                    target = mine.labels(**labels)
                    for index, count in enumerate(child.bucket_counts):
                        target.bucket_counts[index] += count
                    target.sum += child.sum
                    target.count += child.count
        for event in other.journal.events():
            fields = {
                key: value
                for key, value in event.items()
                if key not in ("ts", "subsystem", "event")
            }
            self.journal.record(
                event["subsystem"], event["event"], ts=event.get("ts", 0.0), **fields
            )
        return self

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dump of every family and the journal."""
        counters: dict[str, Any] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, Any] = {}
        for metric in self.metrics():
            if isinstance(metric, Counter):
                counters[metric.name] = {
                    "help": metric.help,
                    "label_names": list(metric.label_names),
                    "values": [
                        {"labels": labels, "value": value}
                        for labels, value in metric.samples()
                    ],
                }
            elif isinstance(metric, Gauge):
                gauges[metric.name] = {
                    "help": metric.help,
                    "label_names": list(metric.label_names),
                    "merge": metric.merge,
                    "values": [
                        {"labels": labels, "value": value}
                        for labels, value in metric.samples()
                    ],
                }
            else:
                histograms[metric.name] = {
                    "help": metric.help,
                    "label_names": list(metric.label_names),
                    "bucket_edges": list(metric.edges),
                    "values": [
                        {
                            "labels": labels,
                            "cumulative_counts": child.cumulative(),
                            "sum": child.sum,
                            "count": child.count,
                        }
                        for labels, child in metric.samples()
                    ],
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "journal": {
                "capacity": self.journal.capacity,
                "recorded": self.journal.recorded,
                "dropped": self.journal.dropped,
                "events": self.journal.events(),
            },
        }


def _merge_labeled_values(target: list, incoming: list, combine) -> None:
    """Merge snapshot ``values`` lists in place, keyed by label dict."""
    by_labels = {tuple(sorted(entry["labels"].items())): entry for entry in target}
    for entry in incoming:
        key = tuple(sorted(entry["labels"].items()))
        mine = by_labels.get(key)
        if mine is None:
            copied = dict(entry)
            target.append(copied)
            by_labels[key] = copied
        else:
            combine(mine, entry)


def merge_snapshots(*snapshots: dict) -> dict:
    """Combine :meth:`TelemetryRegistry.snapshot` dicts (e.g. loaded from
    the JSON a previous run exported) under the same per-metric rules as
    :meth:`TelemetryRegistry.merge`.

    Counters and histogram buckets add (cumulative counts are linear, so
    adding them per slot is exact); gauges follow the ``merge`` mode the
    snapshot recorded (``max`` when absent -- snapshots predating the
    mode declaration); journals concatenate sorted by timestamp, keeping
    the larger declared capacity and summing ``recorded``/``dropped``.
    Empty snapshots (disabled registries) are skipped.  Histogram edge
    disagreement raises ``ValueError``.
    """
    merged: dict = {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "journal": {"capacity": 0, "recorded": 0, "dropped": 0, "events": []},
    }

    def add_counter(mine, theirs):
        mine["value"] += theirs["value"]

    def add_histogram(mine, theirs):
        if len(mine["cumulative_counts"]) != len(theirs["cumulative_counts"]):
            raise ValueError("histogram children disagree on bucket count")
        mine["cumulative_counts"] = [
            a + b for a, b in zip(mine["cumulative_counts"], theirs["cumulative_counts"])
        ]
        mine["sum"] += theirs["sum"]
        mine["count"] += theirs["count"]

    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, family in snapshot.get("counters", {}).items():
            mine = merged["counters"].setdefault(
                name,
                {
                    "help": family["help"],
                    "label_names": list(family["label_names"]),
                    "values": [],
                },
            )
            _merge_labeled_values(
                mine["values"],
                [dict(v) for v in family["values"]],
                add_counter,
            )
        for name, family in snapshot.get("gauges", {}).items():
            mode = family.get("merge", "max")
            mine = merged["gauges"].setdefault(
                name,
                {
                    "help": family["help"],
                    "label_names": list(family["label_names"]),
                    "merge": mode,
                    "values": [],
                },
            )
            if mine["merge"] != mode:
                raise ValueError(f"gauge {name} snapshots disagree on merge mode")

            def combine_gauge(a, b, mode=mode):
                if mode == "sum":
                    a["value"] += b["value"]
                elif mode == "last":
                    a["value"] = b["value"]
                else:
                    a["value"] = max(a["value"], b["value"])

            _merge_labeled_values(
                mine["values"], [dict(v) for v in family["values"]], combine_gauge
            )
        for name, family in snapshot.get("histograms", {}).items():
            mine = merged["histograms"].setdefault(
                name,
                {
                    "help": family["help"],
                    "label_names": list(family["label_names"]),
                    "bucket_edges": list(family["bucket_edges"]),
                    "values": [],
                },
            )
            if mine["bucket_edges"] != list(family["bucket_edges"]):
                raise ValueError(f"histogram {name} snapshots disagree on bucket edges")
            _merge_labeled_values(
                mine["values"],
                [
                    {**v, "cumulative_counts": list(v["cumulative_counts"])}
                    for v in family["values"]
                ],
                add_histogram,
            )
        journal = snapshot.get("journal")
        if journal:
            mine = merged["journal"]
            mine["capacity"] = max(mine["capacity"], journal.get("capacity", 0))
            mine["recorded"] += journal.get("recorded", 0)
            mine["dropped"] += journal.get("dropped", 0)
            mine["events"].extend(journal.get("events", []))
    merged["journal"]["events"].sort(key=lambda event: event.get("ts", 0.0))
    return merged


class _NullInstrument:
    """One object impersonating every disabled metric family and child."""

    __slots__ = ()

    def labels(self, **_labels: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0

    count = 0
    sum = 0.0


class _NullJournal:
    __slots__ = ()
    capacity = 0
    dropped = 0
    recorded = 0

    def record(self, subsystem: str, event: str, ts: float = 0.0, **fields: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def events(self) -> list[dict[str, Any]]:
        return []


_NULL_INSTRUMENT = _NullInstrument()
_NULL_JOURNAL = _NullJournal()


class NullRegistry:
    """The disabled registry: every instrument is a shared no-op singleton.

    Engines hold instrument references obtained at construction, so a
    disabled run's per-packet cost is one ``enabled`` check per guarded
    site (and nothing at all where the call is an unguarded no-op
    method).
    """

    enabled = False
    journal = _NULL_JOURNAL

    def counter(self, name: str, help: str = "", label_names: Sequence[str] = ()):
        return _NULL_INSTRUMENT

    def gauge(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        merge: str | None = None,
    ):
        return _NULL_INSTRUMENT

    def merge(self, other) -> "NullRegistry":
        """Disabled registries absorb nothing (API parity with merge)."""
        return self

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_NS_BUCKETS,
    ):
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def metrics(self) -> list:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {}


#: The shared disabled registry every engine defaults to.
NULL_REGISTRY = NullRegistry()
