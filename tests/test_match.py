"""Unit, differential, and property tests for the matching engines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.match import (
    AhoCorasick,
    BoyerMooreHorspool,
    DualAutomaton,
    StreamMatcher,
    naive_find_all,
)


def ac_starts(automaton, data, pattern_id):
    """Start offsets of pattern_id occurrences, derived from end offsets."""
    length = len(automaton.patterns[pattern_id])
    return [end - length for pid, end in automaton.find_all(data) if pid == pattern_id]


class TestAhoCorasickBasics:
    def test_single_pattern_single_match(self):
        ac = AhoCorasick([b"needle"])
        assert ac.find_all(b"hay needle hay") == [(0, 10)]

    def test_multiple_patterns(self):
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
        matches = ac.find_all(b"ushers")
        assert set(matches) == {(1, 4), (0, 4), (3, 6)}

    def test_overlapping_occurrences(self):
        ac = AhoCorasick([b"aa"])
        assert ac.find_all(b"aaaa") == [(0, 2), (0, 3), (0, 4)]

    def test_no_match(self):
        ac = AhoCorasick([b"xyz"])
        assert ac.find_all(b"abcabcabc") == []

    def test_pattern_is_substring_of_other(self):
        ac = AhoCorasick([b"abc", b"abcdef"])
        matches = ac.find_all(b"zabcdefz")
        assert (0, 4) in matches and (1, 7) in matches

    def test_duplicate_patterns_both_report(self):
        ac = AhoCorasick([b"dup", b"dup"])
        pids = {pid for pid, _ in ac.find_all(b"a dup here")}
        assert pids == {0, 1}

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick([b"ok", b""])

    def test_binary_patterns(self):
        ac = AhoCorasick([bytes([0, 255, 0])])
        assert ac.find_all(bytes([1, 0, 255, 0, 1])) == [(0, 4)]

    def test_contains_match_early_exit(self):
        ac = AhoCorasick([b"bad"])
        assert ac.contains_match(b"xxbadxx")
        assert not ac.contains_match(b"xxgoodxx")

    def test_state_count_reflects_trie(self):
        ac = AhoCorasick([b"ab", b"ac"])
        assert ac.state_count == 4  # root, a, ab, ac

    def test_state_depth(self):
        ac = AhoCorasick([b"abc"])
        state, _ = ac.scan(b"ab")
        assert ac.state_depth(state) == 2


class TestAhoCorasickStreaming:
    def test_match_across_chunk_boundary(self):
        ac = AhoCorasick([b"attack"])
        state, m1 = ac.scan(b"...att")
        assert m1 == []
        state, m2 = ac.scan(b"ack...", state)
        assert [pid for pid, _ in m2] == [0]

    def test_state_reset_hides_straddling_match(self):
        # This is precisely why per-packet matching alone misses evasions.
        ac = AhoCorasick([b"attack"])
        _, m1 = ac.scan(b"...att")
        _, m2 = ac.scan(b"ack...")
        assert m1 == [] and m2 == []

    def test_byte_at_a_time_equals_whole_buffer(self):
        ac = AhoCorasick([b"abab", b"ba"])
        data = b"abababab"
        whole = ac.find_all(data)
        state = 0
        stitched = []
        for i, byte in enumerate(data):
            state, matches = ac.scan(bytes([byte]), state)
            stitched.extend((pid, i + 1) for pid, _ in matches)
        assert stitched == whole


class TestStreamMatcher:
    def test_absolute_offsets(self):
        matcher = StreamMatcher(AhoCorasick([b"sig"]))
        assert matcher.feed(b"aaaa") == []
        matches = matcher.feed(b"bbsig")
        assert matches[0].end_offset == 9
        assert matcher.stream_offset == 9

    def test_straddling_chunks(self):
        matcher = StreamMatcher(AhoCorasick([b"split"]))
        matcher.feed(b"xxsp")
        matches = matcher.feed(b"litxx")
        assert [m.end_offset for m in matches] == [7]  # "xxsplitxx"[2:7]

    def test_reset_forgets_prefix(self):
        matcher = StreamMatcher(AhoCorasick([b"split"]))
        matcher.feed(b"xxsp")
        matcher.reset()
        assert matcher.feed(b"litxx") == []


class TestBoyerMooreHorspool:
    def test_find_first(self):
        assert BoyerMooreHorspool(b"ell").find(b"hello hello") == 1

    def test_find_from_offset(self):
        assert BoyerMooreHorspool(b"ell").find(b"hello hello", 2) == 7

    def test_find_missing(self):
        assert BoyerMooreHorspool(b"zzz").find(b"hello") == -1

    def test_find_all_overlapping(self):
        assert BoyerMooreHorspool(b"aa").find_all(b"aaaa") == [0, 1, 2]

    def test_pattern_at_edges(self):
        assert BoyerMooreHorspool(b"ab").find_all(b"abxxab") == [0, 4]

    def test_pattern_equals_data(self):
        assert BoyerMooreHorspool(b"whole").find_all(b"whole") == [0]

    def test_pattern_longer_than_data(self):
        assert BoyerMooreHorspool(b"toolong").find_all(b"shrt") == []

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            BoyerMooreHorspool(b"")


patterns_strategy = st.lists(
    st.binary(min_size=1, max_size=8), min_size=1, max_size=6
)


@given(patterns_strategy, st.binary(max_size=300))
@settings(max_examples=150)
def test_aho_corasick_matches_naive(patterns, data):
    ac = AhoCorasick(patterns)
    for pid, pattern in enumerate(patterns):
        expected = naive_find_all(pattern, data)
        assert ac_starts(ac, data, pid) == expected


@given(st.binary(min_size=1, max_size=12), st.binary(max_size=400))
@settings(max_examples=150)
def test_bmh_matches_naive(pattern, data):
    assert BoyerMooreHorspool(pattern).find_all(data) == naive_find_all(pattern, data)


@given(
    patterns_strategy,
    st.lists(st.binary(max_size=40), min_size=1, max_size=8),
)
@settings(max_examples=100)
def test_streaming_equals_batch(patterns, chunks):
    ac = AhoCorasick(patterns)
    data = b"".join(chunks)
    whole = ac.find_all(data)
    matcher = StreamMatcher(ac)
    stitched = []
    for chunk in chunks:
        stitched.extend((m.pattern_id, m.end_offset) for m in matcher.feed(chunk))
    assert stitched == whole


@given(st.binary(min_size=1, max_size=6), st.binary(max_size=120))
def test_every_reported_ac_match_is_real(pattern, data):
    ac = AhoCorasick([pattern])
    for _, end in ac.find_all(data):
        assert data[end - len(pattern) : end] == pattern


class TestCompiledEngine:
    """The dense-table engine against its sparse reference oracle."""

    def test_compiled_by_default(self):
        ac = AhoCorasick([b"abc"])
        assert ac.compiled
        assert ac.compiled_table_bytes() > 0

    def test_sparse_reference_when_disabled(self):
        ac = AhoCorasick([b"abc"], dense_state_limit=0)
        assert not ac.compiled
        assert ac.compiled_table_bytes() == 0
        assert ac.find_all(b"xxabcxx") == [(0, 5)]

    def test_sparse_fallback_above_state_limit(self):
        # 4 states (root, a, ab, ac) exceed a limit of 3.
        ac = AhoCorasick([b"ab", b"ac"], dense_state_limit=3)
        assert not ac.compiled
        assert set(ac.find_all(b"abac")) == {(0, 2), (1, 4)}

    def test_start_bytes_are_pattern_first_bytes(self):
        ac = AhoCorasick([b"zebra", b"apple", b"zoo"])
        assert ac.start_bytes == b"az"

    def test_prefilter_payload_without_start_byte(self):
        ac = AhoCorasick([b"zq"])
        assert ac.scan(b"a" * 4096) == (0, [])

    def test_state_interchange_between_engines(self):
        # A stream prefix scanned by one engine resumes on the other:
        # both walk the identical state-id space.
        ac = AhoCorasick([b"attack"])
        state, _ = ac.scan_reference(b"...att")
        final, matches = ac.scan(b"ack", state)
        assert [pid for pid, _ in matches] == [0]
        state, _ = ac.scan(b"...att")
        final_ref, matches_ref = ac.scan_reference(b"ack", state)
        assert (final_ref, [pid for pid, _ in matches_ref]) == (final, [0])

    def test_scan_many_empty_inputs(self):
        ac = AhoCorasick([b"sig"])
        assert ac.scan_many([]) == []
        assert ac.scan_many([b""]) == [[]]


@given(patterns_strategy, st.binary(max_size=300))
@settings(max_examples=150)
def test_compiled_equals_reference(patterns, data):
    compiled = AhoCorasick(patterns)
    reference = AhoCorasick(patterns, dense_state_limit=0)
    assert compiled.compiled and not reference.compiled
    assert compiled.scan(data) == reference.scan(data)
    assert compiled.scan(data) == compiled.scan_reference(data)
    assert compiled.contains_match(data) == reference.contains_match(data)


@given(patterns_strategy, st.lists(st.binary(max_size=40), min_size=1, max_size=8))
@settings(max_examples=100)
def test_compiled_streaming_resume_equals_reference(patterns, chunks):
    compiled = AhoCorasick(patterns)
    reference = AhoCorasick(patterns, dense_state_limit=0)
    state_c = state_r = 0
    for chunk in chunks:
        state_c, matches_c = compiled.scan(chunk, state_c)
        state_r, matches_r = reference.scan(chunk, state_r)
        assert (state_c, matches_c) == (state_r, matches_r)


@given(patterns_strategy, st.lists(st.binary(max_size=60), max_size=6))
@settings(max_examples=100)
def test_scan_many_equals_per_payload(patterns, payloads):
    compiled = AhoCorasick(patterns)
    reference = AhoCorasick(patterns, dense_state_limit=0)
    expected = [compiled.find_all(payload) for payload in payloads]
    assert compiled.scan_many(payloads) == expected
    assert reference.scan_many(payloads) == expected


dual_patterns_strategy = st.lists(
    st.tuples(st.binary(min_size=1, max_size=6), st.booleans()),
    min_size=1,
    max_size=6,
)


@given(dual_patterns_strategy, st.binary(max_size=200))
@settings(max_examples=100)
def test_dual_compiled_equals_reference(patterns, data):
    compiled = DualAutomaton(patterns)
    reference = DualAutomaton(patterns, dense_state_limit=0)
    assert compiled.find_all(data) == reference.find_all(data)
    assert compiled.scan_many([data, b"", data]) == reference.scan_many(
        [data, b"", data]
    )
    assert compiled.scan_many([data])[0] == compiled.find_all(data)
