"""Case-aware matching: a case-sensitive and a case-folded automaton pair.

Mixing case-sensitive and ``nocase`` patterns in one Aho-Corasick
automaton is unsound (a shared trie state cannot represent both suffix
sets), so the standard implementation keeps two: case-sensitive patterns
are scanned over the raw bytes, ``nocase`` patterns (stored folded) over
a case-folded copy.  :class:`DualAutomaton` hides the split behind the
same ``find_all`` interface, with pattern ids stable in construction
order; :class:`DualStreamMatcher` is the streaming counterpart.

When no ``nocase`` pattern exists the folded side is absent and the cost
is identical to a single automaton.
"""

from __future__ import annotations

from collections.abc import Sequence

from .aho_corasick import DENSE_STATE_LIMIT, AhoCorasick
from .streaming import StreamMatch, StreamMatcher


class DualAutomaton:
    """Two automata behind one id space.

    ``patterns`` is a sequence of ``(pattern_bytes, nocase)``; nocase
    patterns are folded at construction.
    """

    def __init__(
        self,
        patterns: Sequence[tuple[bytes, bool]],
        *,
        dense_state_limit: int | None = DENSE_STATE_LIMIT,
    ) -> None:
        sensitive: list[bytes] = []
        self._sensitive_ids: list[int] = []
        folded: list[bytes] = []
        self._folded_ids: list[int] = []
        for index, (pattern, nocase) in enumerate(patterns):
            if nocase:
                folded.append(pattern.lower())
                self._folded_ids.append(index)
            else:
                sensitive.append(pattern)
                self._sensitive_ids.append(index)
        self.sensitive = (
            AhoCorasick(sensitive, dense_state_limit=dense_state_limit)
            if sensitive
            else None
        )
        self.folded = (
            AhoCorasick(folded, dense_state_limit=dense_state_limit)
            if folded
            else None
        )
        self.pattern_count = len(patterns)

    @property
    def needs_folding(self) -> bool:
        """True when a folded scan pass is required (any nocase pattern)."""
        return self.folded is not None

    def scan_stats(self) -> dict[str, int | float | bool]:
        """Summed scan accounting across both sides.

        When both a case-sensitive and a folded automaton exist, each
        payload is scanned twice (raw and case-folded), and the summed
        ``scanned_bytes`` reflects that honestly -- it is work done, not
        wire bytes.
        """
        sides = [
            side.scan_stats()
            for side in (self.sensitive, self.folded)
            if side is not None
        ]
        scans = sum(s["scans"] for s in sides)
        skips = sum(s["prefilter_skips"] for s in sides)
        return {
            "compiled": all(s["engine"] == "compiled" for s in sides) if sides else False,
            "scans": scans,
            "scanned_bytes": sum(s["scanned_bytes"] for s in sides),
            "matches_emitted": sum(s["matches_emitted"] for s in sides),
            "prefilter_skips": skips,
            "prefilter_skip_rate": skips / scans if scans else 0.0,
        }

    def find_all(self, data: bytes) -> list[tuple[int, int]]:
        """All matches as (global_pattern_id, end_offset)."""
        out: list[tuple[int, int]] = []
        if self.sensitive is not None:
            out.extend(
                (self._sensitive_ids[pid], end)
                for pid, end in self.sensitive.find_all(data)
            )
        if self.folded is not None:
            out.extend(
                (self._folded_ids[pid], end)
                for pid, end in self.folded.find_all(data.lower())
            )
        return out

    def scan_many(self, payloads: Sequence[bytes]) -> list[list[tuple[int, int]]]:
        """Batched :meth:`find_all`: one result list per payload.

        Match ordering within a payload is identical to ``find_all``
        (case-sensitive hits first, then folded hits).
        """
        results: list[list[tuple[int, int]]] = [[] for _ in payloads]
        if self.sensitive is not None:
            sensitive_ids = self._sensitive_ids
            for result, hits in zip(results, self.sensitive.scan_many(payloads)):
                result.extend((sensitive_ids[pid], end) for pid, end in hits)
        if self.folded is not None:
            folded_ids = self._folded_ids
            lowered = [payload.lower() for payload in payloads]
            for result, hits in zip(results, self.folded.scan_many(lowered)):
                result.extend((folded_ids[pid], end) for pid, end in hits)
        return results

    def prescan_batch(
        self, payloads: Sequence[memoryview]
    ) -> list[list[tuple[int, int]]]:
        """Batched scan over shared-buffer views (the columnar prescan).

        The case-sensitive side scans the views zero-copy; the folded
        side needs a case-folded copy, so it materializes ``bytes`` per
        view exactly as :meth:`scan_many` does for ``bytes`` payloads.
        Results (ids, ordering, scan accounting) are identical to
        :meth:`scan_many` over ``[bytes(v) for v in payloads]``.
        """
        results: list[list[tuple[int, int]]] = [[] for _ in payloads]
        if self.sensitive is not None:
            sensitive_ids = self._sensitive_ids
            for result, hits in zip(results, self.sensitive.scan_many(payloads)):
                result.extend((sensitive_ids[pid], end) for pid, end in hits)
        if self.folded is not None:
            folded_ids = self._folded_ids
            lowered = [bytes(payload).lower() for payload in payloads]
            for result, hits in zip(results, self.folded.scan_many(lowered)):
                result.extend((folded_ids[pid], end) for pid, end in hits)
        return results

    def range_clear(self, buffer: bytes, lo: int, hi: int) -> bool:
        """True when no pattern from either side occurs in ``buffer[lo:hi]``.

        Exact for batched prescans: every payload view handed to
        :meth:`prescan_batch` is a sub-slice of its batch's record range,
        so a clear range proves each per-payload scan would find nothing
        (and that the per-payload prefilter would skip it).  The folded
        side checks a case-folded copy of the range, matching its
        per-payload ``bytes(view).lower()`` semantics.  False means
        "cannot prove clear" -- callers must then scan normally.
        """
        sensitive = self.sensitive
        if sensitive is not None and not sensitive.range_clear(buffer, lo, hi):
            return False
        folded = self.folded
        if folded is not None:
            lowered = buffer[lo:hi].lower()
            if not folded.range_clear(lowered, 0, len(lowered)):
                return False
        return True

    def account_prefilter_skips(self, count: int, nbytes: int) -> None:
        """Scan-counter accounting for payloads a batch sweep proved
        match-free; mirrors what :meth:`prescan_batch` would record."""
        if self.sensitive is not None:
            self.sensitive.account_prefilter_skips(count, nbytes)
        if self.folded is not None:
            self.folded.account_prefilter_skips(count, nbytes)


class DualStreamMatcher:
    """Streaming matcher over a :class:`DualAutomaton`."""

    #: Per-flow control state: two automaton state ids + offset.
    STATE_BYTES = 12

    def __init__(self, automaton: DualAutomaton) -> None:
        self.automaton = automaton
        self._sensitive = (
            StreamMatcher(automaton.sensitive) if automaton.sensitive else None
        )
        self._folded = StreamMatcher(automaton.folded) if automaton.folded else None
        self._offset = 0

    @property
    def stream_offset(self) -> int:
        return self._offset

    @property
    def open_prefix_len(self) -> int:
        """Longest open pattern prefix across both sides (release safety)."""
        depth = 0
        if self._sensitive is not None:
            depth = max(depth, self._sensitive.open_prefix_len)
        if self._folded is not None:
            depth = max(depth, self._folded.open_prefix_len)
        return depth

    def feed(self, chunk: bytes) -> list[StreamMatch]:
        out: list[StreamMatch] = []
        if self._sensitive is not None:
            out.extend(
                StreamMatch(self.automaton._sensitive_ids[m.pattern_id], m.end_offset)
                for m in self._sensitive.feed(chunk)
            )
        if self._folded is not None:
            out.extend(
                StreamMatch(self.automaton._folded_ids[m.pattern_id], m.end_offset)
                for m in self._folded.feed(chunk.lower())
            )
        self._offset += len(chunk)
        return out

    def scan_many(self, chunks: Sequence[bytes]) -> list[list[StreamMatch]]:
        """Batched :meth:`feed`: consume consecutive stream chunks,
        carrying automaton state across them; one result list per chunk."""
        feed = self.feed
        return [feed(chunk) for chunk in chunks]
