"""Tests for the UDP datagram model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet import (
    IPv4Packet,
    MalformedPacketError,
    TruncatedPacketError,
    UdpDatagram,
    build_udp_packet,
    decode_udp,
    flow_key_of,
    fragment,
    internet_checksum,
    ip_to_bytes,
    pseudo_header,
)


def make_datagram(**kw):
    defaults = dict(src_port=5353, dst_port=53, payload=b"\x07version\x04bind\x00")
    defaults.update(kw)
    return UdpDatagram(**defaults)


class TestSerializeParse:
    def test_round_trip(self):
        dgram = make_datagram()
        assert UdpDatagram.parse(dgram.serialize()) == dgram

    def test_round_trip_with_checksum(self):
        dgram = make_datagram()
        raw = dgram.serialize("10.0.0.1", "10.0.0.2")
        parsed = UdpDatagram.parse(raw, src_ip="10.0.0.1", dst_ip="10.0.0.2", strict=True)
        assert parsed == dgram

    def test_checksum_verifies(self):
        raw = make_datagram().serialize("10.0.0.1", "10.0.0.2")
        ph = pseudo_header(ip_to_bytes("10.0.0.1"), ip_to_bytes("10.0.0.2"), 17, len(raw))
        assert internet_checksum(ph + raw) == 0

    def test_strict_rejects_corruption(self):
        from repro.packet import ChecksumError

        raw = bytearray(make_datagram().serialize("10.0.0.1", "10.0.0.2"))
        raw[-1] ^= 0xFF
        with pytest.raises(ChecksumError):
            UdpDatagram.parse(bytes(raw), src_ip="10.0.0.1", dst_ip="10.0.0.2", strict=True)

    def test_zero_checksum_means_unchecked(self):
        raw = make_datagram().serialize()  # no IPs -> checksum field zero
        parsed = UdpDatagram.parse(raw, src_ip="10.0.0.1", dst_ip="10.0.0.2", strict=True)
        assert parsed.dst_port == 53

    def test_length_field(self):
        assert make_datagram(payload=b"abc").length == 11

    def test_truncated_raises(self):
        with pytest.raises(TruncatedPacketError):
            UdpDatagram.parse(b"\x00\x01\x02")

    def test_bad_length_field_raises(self):
        raw = bytearray(make_datagram().serialize())
        raw[4:6] = (4).to_bytes(2, "big")
        with pytest.raises(MalformedPacketError):
            UdpDatagram.parse(bytes(raw))

    def test_port_validation(self):
        with pytest.raises(MalformedPacketError):
            UdpDatagram(src_port=-1, dst_port=53)


class TestIpIntegration:
    def test_build_and_decode(self):
        pkt = build_udp_packet("10.0.0.1", "10.0.0.9", make_datagram())
        wire = IPv4Packet.parse(pkt.serialize())
        assert decode_udp(wire, strict=True) == make_datagram()

    def test_flow_key(self):
        pkt = build_udp_packet("10.0.0.1", "10.0.0.9", make_datagram())
        key = flow_key_of(pkt)
        assert (key.src_port, key.dst_port, key.protocol) == (5353, 53, 17)

    def test_decode_rejects_fragment(self):
        pkt = build_udp_packet("10.0.0.1", "10.0.0.9", make_datagram(payload=b"z" * 600))
        frags = fragment(pkt, 256)
        with pytest.raises(ValueError):
            decode_udp(frags[0])

    def test_fragmented_udp_defragments(self):
        from repro.streams import IpDefragmenter

        pkt = build_udp_packet("10.0.0.1", "10.0.0.9", make_datagram(payload=b"z" * 600))
        d = IpDefragmenter()
        result = None
        for frag in fragment(pkt, 256):
            result = d.add(frag)
        assert result.packet is not None
        assert decode_udp(result.packet).payload == b"z" * 600


@given(
    src_port=st.integers(min_value=0, max_value=0xFFFF),
    dst_port=st.integers(min_value=0, max_value=0xFFFF),
    payload=st.binary(max_size=1400),
)
def test_round_trip_property(src_port, dst_port, payload):
    dgram = UdpDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
    assert UdpDatagram.parse(dgram.serialize()) == dgram
