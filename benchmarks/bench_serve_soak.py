"""Service soak gate -- ``serve`` must hold a sustained socket load.

Three phases over one mixed workload (benign background + catalog
attacks):

1. **reference**: drive the workload through a bare
   :class:`~repro.runtime.worker.ShardProcessor` (batch mode) and
   through the full :class:`~repro.service.SplitDetectService` replay
   pipeline, both flat out, recording the packets/second ``serve`` can
   absorb and both fast-path stage p99s;
2. **soak**: run the service on a real loopback
   :class:`~repro.service.SocketSource` while a paced producer process
   streams framed records at **0.5x the measured capacity** for
   ``SERVE_SOAK_SECONDS`` (default 60; CI sets a short duration);
3. **gates**: at half capacity the service must shed **zero** packets
   and lose zero records to ingest overflow, the loss accounting
   identity must close, every attack signature in the workload must
   alert, and the serve-pipeline fast-path stage p99 must stay within
   **1.3x** of the batch-mode reference (service plumbing -- record
   decode, tenancy, shed checks, loop overhead -- must not leak into
   per-packet latency).  The under-load soak p99 is *reported* but not
   gated: on 1-2 core hosts it measures scheduler preemption by the
   producer process, not service overhead.

The machine-readable results land in ``BENCH_serve.json`` at the repo
root.  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_serve_soak.py
    SERVE_SOAK_SECONDS=10 PYTHONPATH=src python benchmarks/bench_serve_soak.py
"""

import itertools
import json
import multiprocessing as mp
import os
import queue as queue_mod
import socket
import sys
import time
from pathlib import Path

from exp_common import (
    ATTACK_OFFSET,
    ATTACK_SIGNATURE,
    benign_trace,
    emit,
    gauntlet_payload,
    gauntlet_ruleset,
)
from repro.evasion import build_attack
from repro.runtime import EngineSpec, RunnerConfig, ShardProcessor
from repro.service import (
    FRAME_MAGIC,
    DEFAULT_TENANT,
    ServiceConfig,
    SocketSource,
    SplitDetectService,
    TenantTable,
    encode_record,
)
from repro.signatures import SplitPolicy
from repro.telemetry import stage_profile
from repro.traffic import inject_attacks

REPO_ROOT = Path(__file__).resolve().parent.parent

BATCH_SIZE = 256
TRACE_FLOWS = 120
INGEST_BUFFER = 8192
#: The soak drives the producer at this fraction of measured capacity;
#: the shed gate (zero sheds) is only meaningful below the shed onset.
LOAD_FRACTION = 0.5
#: Serve-side fast-path p99 budget relative to batch mode.
P99_RATIO_BUDGET = 1.3
#: Records per pacing tick; sleeping per record would cap the rate at
#: the scheduler granularity, so the producer paces in bursts.  Bigger
#: bursts also mean fewer producer wakeups stealing the CPU mid-span
#: on small hosts (CI runners are often 1-2 cores).
PACE_CHUNK = 256

#: Passes of the workload aggregated into the batch p99 reference; one
#: 1.2k-packet pass gives a p99 too noisy to gate a ratio on.
REFERENCE_PASSES = 5


def make_spec() -> EngineSpec:
    return EngineSpec(
        rules=gauntlet_ruleset(), split_policy=SplitPolicy(piece_length=8)
    )


def workload() -> list:
    trace = benign_trace(flows=TRACE_FLOWS, seed=2026)
    span = (ATTACK_OFFSET, len(ATTACK_SIGNATURE))
    attacks = [
        build_attack(
            name,
            gauntlet_payload(),
            signature_span=span,
            src=f"10.77.0.{i + 1}",
            dst_port=80,
            seed=i,
        )
        for i, name in enumerate(
            ["tcp_seg_8", "ip_frag_8", "stealth_segments", "tcp_overlap_new"]
        )
    ]
    return inject_attacks(trace, attacks)


def batch_p99_reference(trace: list) -> float:
    """Batch mode's fast-path stage p99 (ns): the latency reference.

    One warmup pass on a throwaway processor (cold caches and lazy
    imports otherwise land in the tail), then the histogram aggregates
    :data:`REFERENCE_PASSES` passes so the p99 estimate has thousands
    of samples behind it, like the soak side's does.
    """
    warmup = ShardProcessor(
        0, make_spec(), RunnerConfig(batch_size=BATCH_SIZE, telemetry=True)
    )
    for base in range(0, len(trace), BATCH_SIZE):
        warmup.feed(trace[base : base + BATCH_SIZE])
    warmup.finish()

    processor = ShardProcessor(
        0, make_spec(), RunnerConfig(batch_size=BATCH_SIZE, telemetry=True)
    )
    for _ in range(REFERENCE_PASSES):
        for base in range(0, len(trace), BATCH_SIZE):
            processor.feed(trace[base : base + BATCH_SIZE])
    processor.finish()
    profile = stage_profile(processor.telemetry) or {}
    return float(
        profile.get("stages", {}).get("fast_path", {}).get("p99_ns", 0.0)
    )


def measure_serve_pipeline(records: list) -> tuple[float, float]:
    """The *whole* serve pipeline driven flat out: (pps, fast-path p99 ns).

    Uses a replay run through :class:`SplitDetectService` itself so the
    measurement includes record decode, tenant routing, shed checks, and
    loop overhead -- the costs the socket soak actually pays.  A capacity
    measured on the bare engine would overstate what ``serve`` can
    absorb and turn the half-capacity soak into an overload test.

    The p99 from this run is what the latency gate compares against
    batch mode: it isolates the cost of the service plumbing.  (The
    under-load soak p99 is reported too, but on small CI hosts it is
    dominated by scheduler preemption from the producer *process* --
    co-tenancy, not service overhead.)
    """
    from repro.service import ReplaySource

    source = ReplaySource(iter(records * REFERENCE_PASSES))
    table = TenantTable(
        make_spec(), [], config=RunnerConfig(batch_size=BATCH_SIZE, telemetry=True)
    )
    service = SplitDetectService(
        source,
        table,
        config=ServiceConfig(
            batch_size=BATCH_SIZE, poll_timeout=0.05, shed_enabled=False
        ),
    )
    report = service.run()
    profile = stage_profile(table.processor(DEFAULT_TENANT).telemetry) or {}
    p99 = float(
        profile.get("stages", {}).get("fast_path", {}).get("p99_ns", 0.0)
    )
    return report.examined_packets / max(report.wall_seconds, 1e-9), p99


def paced_producer(
    address, records: list, pps: float, duration: float, result_queue
) -> None:
    """Stream framed records at ``pps`` for ``duration`` seconds.

    Runs in a *separate process* (like any real producer would): an
    in-process sender thread shares the GIL with the service loop and
    contaminates the fast-path latency tail it exists to measure.
    """
    sent = 0
    cycle = itertools.cycle(records)
    with socket.create_connection(tuple(address)) as sock:
        sock.sendall(FRAME_MAGIC)
        started = time.monotonic()
        deadline = started + duration
        while True:
            now = time.monotonic()
            if now >= deadline:
                break
            target = started + sent / pps
            if target > now:
                time.sleep(min(target - now, 0.05))
                continue
            payload = b"".join(
                encode_record(ts, data)
                for ts, data in itertools.islice(cycle, PACE_CHUNK)
            )
            sock.sendall(payload)
            sent += PACE_CHUNK
        achieved = sent / max(time.monotonic() - started, 1e-9)
    result_queue.put({"sent": sent, "achieved_pps": achieved})


def run_soak(soak_seconds: float | None = None) -> dict:
    trace = workload()
    records = [(p.timestamp, p.ip.serialize()) for p in trace]
    batch_p99 = batch_p99_reference(trace)
    capacity_pps, serve_p99 = measure_serve_pipeline(records)
    target_pps = capacity_pps * LOAD_FRACTION
    duration = soak_seconds or float(os.environ.get("SERVE_SOAK_SECONDS", "60"))

    source = SocketSource(("127.0.0.1", 0), capacity=INGEST_BUFFER)
    table = TenantTable(
        make_spec(), [], config=RunnerConfig(batch_size=BATCH_SIZE, telemetry=True)
    )
    service = SplitDetectService(
        source,
        table,
        config=ServiceConfig(
            batch_size=BATCH_SIZE,
            poll_timeout=0.1,
            # One grace period past the producer so the tail drains.
            duration=duration + 2.0,
        ),
    )
    result_queue: mp.Queue = mp.Queue()
    producer = mp.Process(
        target=paced_producer,
        args=(source.address, records, target_pps, duration, result_queue),
        daemon=True,
    )
    producer.start()
    report = service.run()
    try:
        producer_out = result_queue.get(timeout=10.0)
    except queue_mod.Empty:
        producer_out = {}
    producer.join(timeout=5.0)
    if producer.is_alive():
        producer.terminate()

    soak_profile = stage_profile(table.processor(DEFAULT_TENANT).telemetry) or {}
    soak_p99 = float(
        soak_profile.get("stages", {}).get("fast_path", {}).get("p99_ns", 0.0)
    )
    sids = {a.sid for a in report.runtime.alerts if a.sid is not None}
    return {
        "workload": {"flows": TRACE_FLOWS, "packets": len(trace)},
        "host": {"cpu_count": os.cpu_count()},
        "soak_seconds": duration,
        "capacity_pps": round(capacity_pps, 1),
        "target_pps": round(target_pps, 1),
        "achieved_pps": round(producer_out.get("achieved_pps", 0.0), 1),
        "sent_records": producer_out.get("sent", 0),
        "input_records": report.input_records,
        "examined_packets": report.examined_packets,
        "shed_packets": report.shed_packets,
        "quarantined_packets": report.quarantined_packets,
        "lost_packets": report.lost_packets,
        "accounting_closed": report.accounting_closed,
        "shed_level_changes": report.shed["level_changes"],
        "alert_sids": sorted(sids),
        "alerts": len(report.runtime.alerts),
        "batch_fastpath_p99_ns": round(batch_p99, 1),
        "serve_fastpath_p99_ns": round(serve_p99, 1),
        "p99_ratio": round(serve_p99 / batch_p99, 3) if batch_p99 else None,
        # Informational: the soak-side p99 includes preemption by the
        # producer process, so it is reported but never gated.
        "soak_fastpath_p99_ns": round(soak_p99, 1),
        "stop_reason": report.stop_reason,
    }


def check_and_emit(result: dict, capfd=None) -> None:
    (REPO_ROOT / "BENCH_serve.json").write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        f"capacity: {result['capacity_pps']:,.0f} pps flat out; soak at "
        f"{result['target_pps']:,.0f} pps target "
        f"({result['achieved_pps']:,.0f} achieved) for "
        f"{result['soak_seconds']:g}s",
        f"ingest: {result['input_records']:,} records, "
        f"examined {result['examined_packets']:,}, "
        f"shed {result['shed_packets']}, lost {result['lost_packets']}, "
        f"accounting_closed={result['accounting_closed']}",
        f"fast-path p99: batch {result['batch_fastpath_p99_ns']:,.0f} ns, "
        f"serve pipeline {result['serve_fastpath_p99_ns']:,.0f} ns "
        f"(ratio {result['p99_ratio']}, budget {P99_RATIO_BUDGET}x); "
        f"under load {result['soak_fastpath_p99_ns']:,.0f} ns (reported only)",
        f"alerts: {result['alerts']} ({len(result['alert_sids'])} distinct sid)",
    ]
    emit("serve_soak", lines, capfd)

    # If the producer could not reach the target, the shed gate is
    # weaker than advertised -- say so rather than pass silently.
    if result["achieved_pps"] < 0.9 * result["target_pps"]:
        print(
            f"note: producer reached only {result['achieved_pps']:,.0f} of "
            f"{result['target_pps']:,.0f} pps target (loopback-bound); shed "
            "gate covers the achieved rate",
            file=sys.stderr,
        )

    # Gate 1: below 0.5x capacity the service must not shed or lose.
    assert result["shed_packets"] == 0, (
        f"shed {result['shed_packets']} packets below half capacity"
    )
    assert result["lost_packets"] == 0, (
        f"lost {result['lost_packets']} records to ingest overflow below "
        "half capacity"
    )
    assert result["accounting_closed"], "loss accounting identity is open"
    # Gate 2: service plumbing must not leak into fast-path latency.
    assert result["batch_fastpath_p99_ns"] > 0, "no stage profile recorded"
    assert result["p99_ratio"] <= P99_RATIO_BUDGET, (
        f"serve fast-path p99 is {result['p99_ratio']}x batch mode "
        f"(budget {P99_RATIO_BUDGET}x)"
    )
    # Detection sanity: every catalog attack in the workload alerted.
    assert result["alert_sids"], "soak produced no signature alerts"
    # The examined stream must be most of what the producer sent (the
    # final in-flight chunk may still be on the wire at the deadline).
    assert result["examined_packets"] >= 0.95 * result["sent_records"], (
        f"examined {result['examined_packets']} of "
        f"{result['sent_records']} sent"
    )


def test_serve_soak(capfd):
    """Half-capacity socket soak: zero sheds, zero loss, p99 in budget.

    Emits BENCH_serve.json.  Honours SERVE_SOAK_SECONDS (CI keeps it
    short; the default standalone soak is 60s)."""
    check_and_emit(run_soak(), capfd)


def main(argv=None) -> int:
    del argv
    check_and_emit(run_soak())
    print("serve soak gate passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent))
    raise SystemExit(main())
