"""Unit and property tests for the IP defragmenter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packet import IPv4Packet, fragment
from repro.streams import IpDefragmenter, OverlapPolicy, StreamEvent


def make_datagram(payload=b"x" * 100, ident=7):
    return IPv4Packet(src="10.0.0.1", dst="10.0.0.2", payload=payload, identification=ident)


def events_of(result):
    return [record.event for record in result.events]


class TestPassThrough:
    def test_unfragmented_packet_passes(self):
        d = IpDefragmenter()
        pkt = make_datagram()
        result = d.add(pkt)
        assert result.packet is pkt
        assert d.pending_datagrams == 0


class TestReassembly:
    def test_two_fragments_in_order(self):
        d = IpDefragmenter()
        pkt = make_datagram(bytes(range(200)) * 2)
        frags = fragment(pkt, 300)
        assert d.add(frags[0]).packet is None
        result = d.add(frags[1])
        assert result.packet is not None
        assert result.packet.payload == pkt.payload
        assert not result.packet.is_fragment

    def test_fragments_out_of_order(self):
        d = IpDefragmenter()
        pkt = make_datagram(b"A" * 500 + b"B" * 500)
        frags = fragment(pkt, 300)
        for frag in reversed(frags[1:]):
            assert d.add(frag).packet is None
        result = d.add(frags[0])
        assert result.packet.payload == pkt.payload

    def test_reassembled_header_comes_from_first_fragment(self):
        d = IpDefragmenter()
        pkt = make_datagram(b"z" * 400)
        frags = fragment(pkt, 200)
        frags[0] = frags[0].copy(ttl=3)
        result = None
        for frag in frags:
            result = d.add(frag)
        assert result.packet.ttl == 3

    def test_interleaved_datagrams_keep_separate(self):
        d = IpDefragmenter()
        a = make_datagram(b"A" * 400, ident=1)
        b = make_datagram(b"B" * 400, ident=2)
        fa, fb = fragment(a, 200), fragment(b, 200)
        outs = []
        for frag in [fa[0], fb[0], fa[1], fb[1], fa[2], fb[2]]:
            result = d.add(frag)
            if result.packet:
                outs.append(result.packet)
        assert {bytes(p.payload) for p in outs} == {a.payload, b.payload}

    def test_duplicate_final_fragment_is_tolerated(self):
        d = IpDefragmenter()
        frags = fragment(make_datagram(b"q" * 400), 200)
        d.add(frags[-1])
        result = d.add(frags[-1])
        assert StreamEvent.FRAGMENT_OVERLAP in events_of(result)

    def test_moved_final_fragment_is_inconsistent(self):
        d = IpDefragmenter()
        frags = fragment(make_datagram(b"q" * 400), 200)
        d.add(frags[-1])
        moved = frags[-1].copy(fragment_offset=frags[-1].fragment_offset + 8)
        result = d.add(moved)
        assert StreamEvent.INCONSISTENT_FRAGMENT_OVERLAP in events_of(result)


class TestOverlaps:
    def overlapping_fragments(self, contested_old, contested_new):
        """First frag claims [0,16) ending with contested bytes; second
        re-claims [8,24) starting with different bytes over [8,16)."""
        base = make_datagram()
        f1 = base.copy(payload=b"AAAAAAAA" + contested_old, fragment_offset=0, more_fragments=True)
        f2 = base.copy(payload=contested_new + b"ZZZZZZZZ", fragment_offset=8, more_fragments=False)
        return f1, f2

    def test_consistent_overlap_flagged(self):
        d = IpDefragmenter()
        f1, f2 = self.overlapping_fragments(b"SAMEsame", b"SAMEsame")
        d.add(f1)
        result = d.add(f2)
        assert StreamEvent.FRAGMENT_OVERLAP in events_of(result)
        assert result.packet.payload == b"AAAAAAAA" + b"SAMEsame" + b"ZZZZZZZZ"

    def test_inconsistent_overlap_flagged(self):
        d = IpDefragmenter()
        f1, f2 = self.overlapping_fragments(b"OLDdata!", b"NEWdata!")
        d.add(f1)
        result = d.add(f2)
        assert StreamEvent.INCONSISTENT_FRAGMENT_OVERLAP in events_of(result)

    def test_first_policy_keeps_old(self):
        d = IpDefragmenter(policy=OverlapPolicy.FIRST)
        f1, f2 = self.overlapping_fragments(b"OLDdata!", b"NEWdata!")
        d.add(f1)
        result = d.add(f2)
        assert result.packet.payload == b"AAAAAAAA" + b"OLDdata!" + b"ZZZZZZZZ"

    def test_last_policy_takes_new(self):
        d = IpDefragmenter(policy=OverlapPolicy.LAST)
        f1, f2 = self.overlapping_fragments(b"OLDdata!", b"NEWdata!")
        d.add(f1)
        result = d.add(f2)
        assert result.packet.payload == b"AAAAAAAA" + b"NEWdata!" + b"ZZZZZZZZ"

    def test_teardrop_shape_rejected_or_flagged(self):
        # Fragment claiming bytes past the 64 KiB datagram limit is dropped.
        d = IpDefragmenter()
        bad = make_datagram().copy(
            payload=b"x" * 100, fragment_offset=65528, more_fragments=False
        )
        result = d.add(bad)
        assert StreamEvent.OUT_OF_WINDOW in events_of(result)
        assert result.packet is None


class TestTinyFragments:
    def test_tiny_nonfinal_fragment_flagged(self):
        d = IpDefragmenter(tiny_threshold=16)
        base = make_datagram()
        tiny = base.copy(payload=b"x" * 8, more_fragments=True, fragment_offset=0)
        result = d.add(tiny)
        assert StreamEvent.TINY_FRAGMENT in events_of(result)

    def test_final_fragment_exempt(self):
        d = IpDefragmenter(tiny_threshold=16)
        base = make_datagram()
        final = base.copy(payload=b"x" * 8, more_fragments=False, fragment_offset=8)
        result = d.add(final)
        assert StreamEvent.TINY_FRAGMENT not in events_of(result)


class TestTimeout:
    def test_stale_partials_evicted(self):
        d = IpDefragmenter(timeout=10)
        frags = fragment(make_datagram(b"x" * 400), 200)
        d.add(frags[0], timestamp=0.0)
        assert d.pending_datagrams == 1
        d.expire(now=11.0)
        assert d.pending_datagrams == 0
        assert d.evicted_total == 1
        # The late final fragment alone can no longer complete the datagram.
        result = d.add(frags[-1], timestamp=12.0)
        assert result.packet is None

    def test_fresh_partials_survive(self):
        d = IpDefragmenter(timeout=10)
        frags = fragment(make_datagram(b"x" * 400), 200)
        d.add(frags[0], timestamp=0.0)
        d.expire(now=5.0)
        assert d.pending_datagrams == 1

    def test_buffered_accounting(self):
        d = IpDefragmenter()
        frags = fragment(make_datagram(b"x" * 400), 200)
        d.add(frags[0])
        assert d.buffered_bytes == len(frags[0].payload)
        for frag in frags[1:]:
            d.add(frag)
        assert d.buffered_bytes == 0
        assert d.reassembled_total == 1


@given(
    payload=st.binary(min_size=9, max_size=2000),
    mtu=st.integers(min_value=48, max_value=600),
    seed=st.randoms(use_true_random=False),
)
@settings(max_examples=60)
def test_any_fragment_arrival_order_reassembles(payload, mtu, seed):
    pkt = IPv4Packet(src="1.1.1.1", dst="2.2.2.2", payload=payload, identification=99)
    frags = fragment(pkt, mtu)
    seed.shuffle(frags)
    d = IpDefragmenter()
    outputs = [d.add(f).packet for f in frags]
    completed = [p for p in outputs if p is not None]
    assert len(completed) == 1
    assert completed[0].payload == payload
    assert d.pending_datagrams == 0
