"""The Split-Detect detection theorem as executable mathematics.

Model
-----
An *in-order delivery* of a stream is a partition of the stream into
packets; packet boundaries are stream offsets.  A signature occupies the
interval ``[s, s + L)``.  A piece ``[s + o, s + o + l)`` is *intact* if no
packet boundary falls strictly inside it, i.e. the piece lies wholly
within one packet and a per-packet matcher sees it.

Theorem (soundness of the split)
--------------------------------
Let a signature of length ``L`` be split into ``k = floor(L / p) >= 3``
contiguous pieces, each of length in ``[p, 2p - 1]``.  If every non-final
packet of an in-order, non-overlapping delivery carries at least
``B = 2p`` payload bytes, then at least one piece is intact.

Proof.  Boundaries strictly inside the signature are separated by whole
non-final packets, hence pairwise at least ``B`` apart; inside an open
interval of length ``L`` at most ``b = floor((L - 2) / B) + 1`` such
boundaries fit.  Each boundary lies inside at most one piece (pieces are
disjoint), so at least ``k - b`` pieces are intact, and
``k - b >= k - (L - 2)/(2p) - 1 > k - (k + 1)/2 - 1 >= 0`` for
``k >= 3`` (using ``L < (k + 1) p``).  ∎

Tightness: for ``k = 2`` the bound fails -- ``find_evading_boundaries``
constructs a witness cut of both pieces whenever ``L >= 2p + 2``.

The functions here let tests *check* every claim exhaustively on small
cases and at random, and let the attack toolkit search for worst-case
segmentations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..signatures import SplitSignature


@dataclass(frozen=True)
class PieceInterval:
    """A piece's interval within the signature, in signature coordinates."""

    start: int
    end: int


def piece_intervals(split: SplitSignature) -> list[PieceInterval]:
    """The closed-open intervals pieces occupy within the pattern."""
    return [
        PieceInterval(piece.offset, piece.offset + len(piece.data))
        for piece in split.pieces
    ]


def intact_pieces(
    split: SplitSignature, boundaries: list[int], signature_start: int = 0
) -> list[int]:
    """Indices of pieces not cut by any of ``boundaries``.

    ``boundaries`` are stream offsets of packet cut points;
    ``signature_start`` maps signature coordinates into the stream.
    """
    out: list[int] = []
    for index, interval in enumerate(piece_intervals(split)):
        lo = signature_start + interval.start
        hi = signature_start + interval.end
        if not any(lo < b < hi for b in boundaries):
            out.append(index)
    return out


def boundaries_of_sizes(sizes: list[int]) -> list[int]:
    """Cumulative cut points of a packet-size sequence (excluding 0/end)."""
    out: list[int] = []
    acc = 0
    for size in sizes[:-1]:
        acc += size
        out.append(acc)
    return out


def max_boundaries_inside(length: int, min_gap: int) -> int:
    """Most boundaries placeable strictly inside ``(0, length)`` with
    pairwise distance >= ``min_gap`` (the ``b`` of the theorem)."""
    if length <= 2:
        return 0
    return (length - 2) // min_gap + 1


def find_evading_boundaries(
    split: SplitSignature, min_gap: int | None = None
) -> list[int] | None:
    """Search for boundaries (pairwise >= ``min_gap`` apart) cutting *every*
    piece; ``None`` when no such placement exists.

    Greedy left-to-right placement is optimal here: pieces are disjoint
    and ordered, each needs one interior cut, and putting each cut as
    early as feasible only helps later pieces.  A successful return value
    is a counterexample to soundness -- the theorem says it must be
    ``None`` for any valid (k >= 3) split with ``min_gap = 2p``.
    """
    if min_gap is None:
        min_gap = split.small_packet_threshold
    cuts: list[int] = []
    for interval in piece_intervals(split):
        if interval.end - interval.start < 2:
            return None  # a 1-byte piece has no interior point to cut
        earliest = interval.start + 1
        if cuts:
            earliest = max(earliest, cuts[-1] + min_gap)
        if earliest > interval.end - 1:
            return None
        cuts.append(earliest)
    return cuts


def segmentation_respects_threshold(
    sizes: list[int], threshold: int, final_exempt: bool = True
) -> bool:
    """True when every (non-final) packet size meets the threshold ``B``."""
    body = sizes[:-1] if final_exempt else sizes
    return all(size >= threshold for size in body)


def detection_holds(
    split: SplitSignature, sizes: list[int], signature_start: int
) -> bool:
    """Does the fast path see an intact piece under this delivery?

    ``sizes`` partitions a stream that contains the signature pattern at
    ``signature_start``; the caller is responsible for the threshold
    precondition (``segmentation_respects_threshold``).
    """
    boundaries = boundaries_of_sizes(sizes)
    return bool(intact_pieces(split, boundaries, signature_start))
