"""IPv4 header model with byte-exact parse/serialize and fragmentation flags.

Only the features an IPS cares about are modelled: the fixed 20-byte header,
options as an opaque blob, DF/MF flags, the fragment offset in 8-byte units,
and the header checksum.  Addresses are held as dotted-quad strings in the
public API and converted at the wire boundary.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from .checksum import internet_checksum
from .errors import ChecksumError, MalformedPacketError, TruncatedPacketError

IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

IP_FLAG_DF = 0x2
IP_FLAG_MF = 0x1

_IPV4_FMT = struct.Struct("!BBHHHBBH4s4s")


def ip_to_bytes(addr: str) -> bytes:
    """Convert a dotted-quad string to 4 network-order bytes.

    >>> ip_to_bytes("10.0.0.1")
    b'\\n\\x00\\x00\\x01'
    """
    parts = addr.split(".")
    if len(parts) != 4:
        raise MalformedPacketError(f"not a dotted quad: {addr!r}")
    try:
        octets = bytes(int(p) for p in parts)
    except ValueError as exc:
        raise MalformedPacketError(f"not a dotted quad: {addr!r}") from exc
    return octets


def bytes_to_ip(raw: bytes) -> str:
    """Convert 4 network-order bytes to a dotted-quad string."""
    if len(raw) != 4:
        raise MalformedPacketError(f"IPv4 address must be 4 bytes, got {len(raw)}")
    return ".".join(str(b) for b in raw)


@dataclass
class IPv4Packet:
    """A parsed (or to-be-serialized) IPv4 packet.

    ``payload`` carries the bytes after the IP header -- for TCP traffic,
    the entire TCP segment.  ``fragment_offset`` is in bytes (a multiple
    of 8), not in 8-byte units as on the wire.
    """

    src: str
    dst: str
    protocol: int = IP_PROTO_TCP
    payload: bytes = b""
    ttl: int = 64
    identification: int = 0
    dont_fragment: bool = False
    more_fragments: bool = False
    fragment_offset: int = 0
    tos: int = 0
    options: bytes = b""

    def __post_init__(self) -> None:
        if self.fragment_offset % 8:
            raise MalformedPacketError(
                f"fragment offset {self.fragment_offset} is not a multiple of 8"
            )
        if self.fragment_offset > 0xFFF8:
            raise MalformedPacketError("fragment offset exceeds 16-bit field")
        if len(self.options) % 4:
            raise MalformedPacketError("IP options must pad to a 4-byte multiple")
        if len(self.options) > 40:
            raise MalformedPacketError("IP options exceed 40 bytes")
        if not 0 <= self.ttl <= 255:
            raise MalformedPacketError(f"TTL {self.ttl} out of range")
        if not 0 <= self.identification <= 0xFFFF:
            raise MalformedPacketError("identification out of range")

    @property
    def header_length(self) -> int:
        """Header length in bytes (20 plus options)."""
        return 20 + len(self.options)

    @property
    def total_length(self) -> int:
        """Wire total length: header plus payload."""
        return self.header_length + len(self.payload)

    @property
    def is_fragment(self) -> bool:
        """True when this packet is one piece of a fragmented datagram."""
        return self.more_fragments or self.fragment_offset > 0

    @property
    def fragment_key(self) -> tuple[str, str, int, int]:
        """The (src, dst, protocol, id) tuple that groups fragments."""
        return (self.src, self.dst, self.protocol, self.identification)

    def serialize(self) -> bytes:
        """Render the packet to wire bytes with a correct header checksum."""
        if self.total_length > 0xFFFF:
            raise MalformedPacketError(f"total length {self.total_length} exceeds 65535")
        ihl = self.header_length // 4
        # Flags/fragment field: 3 flag bits then 13 offset bits (8-byte units).
        flags = (IP_FLAG_DF if self.dont_fragment else 0) | (
            IP_FLAG_MF if self.more_fragments else 0
        )
        flags_frag = (flags << 13) | (self.fragment_offset // 8)
        header = _IPV4_FMT.pack(
            (4 << 4) | ihl,
            self.tos,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            0,
            ip_to_bytes(self.src),
            ip_to_bytes(self.dst),
        ) + self.options
        checksum = internet_checksum(header)
        header = header[:10] + checksum.to_bytes(2, "big") + header[12:]
        return header + self.payload

    @classmethod
    def parse(cls, raw: bytes, *, strict: bool = False) -> "IPv4Packet":
        """Parse wire bytes into an ``IPv4Packet``.

        With ``strict=True`` the header checksum must verify and the total
        length must match the buffer exactly; otherwise the parser accepts
        trailing bytes (as capture files often contain padding) and skips
        checksum verification.
        """
        if len(raw) < 20:
            raise TruncatedPacketError("IPv4 header", 20, len(raw))
        (
            ver_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src_raw,
            dst_raw,
        ) = _IPV4_FMT.unpack_from(raw)
        version = ver_ihl >> 4
        if version != 4:
            raise MalformedPacketError(f"IP version {version}, expected 4")
        ihl = (ver_ihl & 0xF) * 4
        if ihl < 20:
            raise MalformedPacketError(f"IHL {ihl} below minimum header size")
        if len(raw) < ihl:
            raise TruncatedPacketError("IPv4 options", ihl, len(raw))
        if total_length < ihl:
            raise MalformedPacketError(
                f"total length {total_length} shorter than header {ihl}"
            )
        if len(raw) < total_length:
            raise TruncatedPacketError("IPv4 payload", total_length, len(raw))
        if strict:
            computed = internet_checksum(raw[:ihl])
            if computed != 0:
                raise ChecksumError("IPv4", checksum, internet_checksum(raw[:10] + b"\x00\x00" + raw[12:ihl]))
        flags = flags_frag >> 13
        return cls(
            src=bytes_to_ip(src_raw),
            dst=bytes_to_ip(dst_raw),
            protocol=protocol,
            payload=bytes(raw[ihl:total_length]),
            ttl=ttl,
            identification=identification,
            dont_fragment=bool(flags & IP_FLAG_DF),
            more_fragments=bool(flags & IP_FLAG_MF),
            fragment_offset=(flags_frag & 0x1FFF) * 8,
            tos=tos,
            options=bytes(raw[20:ihl]),
        )

    def copy(self, **changes) -> "IPv4Packet":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def fragment(packet: IPv4Packet, mtu: int) -> list[IPv4Packet]:
    """Split ``packet`` into IP fragments that fit within ``mtu`` bytes.

    Follows RFC 791: every non-final fragment carries a payload that is a
    multiple of 8 bytes, offsets accumulate, MF is set on all but the last
    fragment (which inherits the original MF bit, so a fragment can itself
    be re-fragmented).  Raises when DF is set or the MTU cannot fit even
    eight payload bytes.
    """
    if packet.dont_fragment:
        raise MalformedPacketError("cannot fragment: DF bit set")
    header_len = packet.header_length
    chunk = (mtu - header_len) // 8 * 8
    if chunk <= 0:
        raise MalformedPacketError(f"MTU {mtu} cannot carry any payload")
    if packet.total_length <= mtu:
        return [packet.copy()]
    fragments: list[IPv4Packet] = []
    payload = packet.payload
    offset = 0
    while offset < len(payload):
        piece = payload[offset : offset + chunk]
        last = offset + chunk >= len(payload)
        fragments.append(
            packet.copy(
                payload=piece,
                fragment_offset=packet.fragment_offset + offset,
                more_fragments=packet.more_fragments if last else True,
            )
        )
        offset += chunk
    return fragments
