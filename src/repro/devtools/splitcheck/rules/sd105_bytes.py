"""SD105: byte hygiene in the packet layer.

The decode path lives and dies on the str/bytes boundary: header fields
are ``bytes``, addresses render to ``str`` exactly once, and ``struct``
format strings encode field widths the parsers rely on.  Flags, in
``packet/``:

- expressions mixing ``str`` and ``bytes`` literals (``+``, ``%``,
  ``==``/``!=``/``in`` comparisons) -- in Python 3 these are silent
  always-false comparisons or late TypeErrors;
- ``struct`` format strings that do not parse (``struct.calcsize``
  rejects them);
- ``pack``/``pack_into`` calls whose argument count disagrees with the
  field count of a *statically known* format -- including formats bound
  via module-level ``NAME = struct.Struct("...")`` constants;
- a ``str`` literal packed into an ``s``/``p`` (bytes) field.
"""

from __future__ import annotations

import ast
import re
import struct

from ..astutil import ImportMap, resolve_call_path
from ..engine import FileContext, Rule, register

__all__ = ["ByteHygieneRule"]

_FIELD = re.compile(r"(\d*)([a-zA-Z?])")
_MIXABLE_OPS = (ast.Add, ast.Mod)


def _field_codes(fmt: str) -> list[str] | None:
    """Expand a struct format into one code per packed argument.

    Returns None when the format does not parse.  ``s``/``p`` consume
    one argument regardless of repeat count; ``x`` consumes none.
    """
    try:
        struct.calcsize(fmt)
    except struct.error:
        return None
    body = fmt.lstrip("@=<>!")
    codes: list[str] = []
    for repeat, code in _FIELD.findall(body):
        if code in "sp":
            codes.append(code)
        elif code == "x":
            continue
        else:
            codes.extend(code for _ in range(int(repeat) if repeat else 1))
    return codes


def _const_kind(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            return "str"
        if isinstance(node.value, (bytes, bytearray)):
            return "bytes"
    if isinstance(node, ast.JoinedStr):
        return "str"
    return None


def _module_struct_formats(tree: ast.Module, imports: ImportMap) -> dict[str, str]:
    """Module-level ``NAME = struct.Struct("fmt")`` constant bindings."""
    formats: dict[str, str] = {}
    for node in tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and resolve_call_path(value, imports) == "struct.Struct"
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Constant)
            and isinstance(value.args[0].value, str)
        ):
            formats[target.id] = value.args[0].value
    return formats


@register
class ByteHygieneRule(Rule):
    id = "SD105"
    title = "str/bytes mixing or struct format mismatch in the packet layer"
    default_paths = ("*/repro/packet/*.py", "*/repro/pcap/*.py")

    def check(self, ctx: FileContext) -> None:
        imports = ImportMap(ctx.tree)
        bound_formats = _module_struct_formats(ctx.tree, imports)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _MIXABLE_OPS):
                self._check_mix(ctx, node, node.left, node.right)
            elif isinstance(node, ast.Compare):
                left = node.left
                for op, comparator in zip(node.ops, node.comparators):
                    if isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)):
                        self._check_mix(ctx, node, left, comparator)
                    left = comparator
            elif isinstance(node, ast.Call):
                self._check_struct_call(ctx, node, imports, bound_formats)

    def _check_mix(
        self, ctx: FileContext, where: ast.expr, left: ast.expr, right: ast.expr
    ) -> None:
        kinds = {_const_kind(left), _const_kind(right)}
        if kinds == {"str", "bytes"}:
            ctx.report(
                self,
                where,
                "expression mixes a str literal with a bytes literal; in the "
                "packet layer this is a silent always-false comparison or a "
                "deferred TypeError -- pick one type and encode explicitly",
            )

    def _check_struct_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        imports: ImportMap,
        bound_formats: dict[str, str],
    ) -> None:
        path = resolve_call_path(node, imports)
        # Direct struct.<fn>("fmt", ...) with a literal format string.
        if path in ("struct.Struct", "struct.calcsize", "struct.pack",
                    "struct.pack_into", "struct.unpack", "struct.unpack_from"):
            if not node.args or not (
                isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                return
            fmt = node.args[0].value
            codes = _field_codes(fmt)
            if codes is None:
                ctx.report(
                    self,
                    node,
                    f"struct format {fmt!r} does not parse "
                    "(struct.calcsize rejects it)",
                )
                return
            if path == "struct.pack":
                self._check_pack_args(ctx, node, fmt, codes, node.args[1:])
            elif path == "struct.pack_into":
                self._check_pack_args(ctx, node, fmt, codes, node.args[3:])
            return
        # NAME.pack(...) against a module-level struct.Struct constant.
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in bound_formats
        ):
            fmt = bound_formats[func.value.id]
            codes = _field_codes(fmt)
            if codes is None:
                return
            if func.attr == "pack":
                self._check_pack_args(ctx, node, fmt, codes, node.args)
            elif func.attr == "pack_into":
                self._check_pack_args(ctx, node, fmt, codes, node.args[2:])

    def _check_pack_args(
        self,
        ctx: FileContext,
        node: ast.Call,
        fmt: str,
        codes: list[str],
        args: list[ast.expr],
    ) -> None:
        if any(isinstance(arg, ast.Starred) for arg in args):
            return
        if len(args) != len(codes):
            ctx.report(
                self,
                node,
                f"pack of format {fmt!r} takes {len(codes)} field(s) "
                f"but {len(args)} argument(s) are supplied",
            )
            return
        for code, arg in zip(codes, args):
            kind = _const_kind(arg)
            if code in "sp" and kind == "str":
                ctx.report(
                    self,
                    arg,
                    f"str literal packed into a {code!r} (bytes) field of "
                    f"{fmt!r}; encode it or use a bytes literal",
                )
            elif code not in "sp" and kind in ("str", "bytes"):
                ctx.report(
                    self,
                    arg,
                    f"{kind} literal packed into numeric field {code!r} of "
                    f"{fmt!r}",
                )
