"""Shared fixtures-as-functions for core/evasion/integration tests."""

from __future__ import annotations

from repro.packet import FlowKey
from repro.signatures import RuleSet, Signature

ATTACK_SIGNATURE = b"EVIL/shellcode\x90\x90\x90:run/bin/sh"  # 31 bytes
SIGNATURE_OFFSET = 100

CLIENT = "10.9.9.9"
SERVER = "10.0.0.2"
CLIENT_PORT = 44000
SERVER_PORT = 80

ATTACK_FLOW = FlowKey(CLIENT, SERVER, CLIENT_PORT, SERVER_PORT)


def attack_ruleset(extra: list[Signature] | None = None) -> RuleSet:
    """A small ruleset containing the canonical attack signature."""
    rules = RuleSet()
    rules.add(Signature(sid=5001, pattern=ATTACK_SIGNATURE, msg="test attack", dst_port=80))
    rules.add(Signature(sid=5002, pattern=b"OTHER-SIGNATURE-NOT-PRESENT-xx", msg="decoy"))
    for signature in extra or []:
        rules.add(signature)
    return rules


def attack_payload(total: int = 2000, offset: int = SIGNATURE_OFFSET) -> bytes:
    """Benign-looking filler with the attack signature embedded at ``offset``."""
    filler = (b"GET /index.html HTTP/1.1\r\nHost: example.com\r\nUser-Agent: x\r\n" * 40)[:total]
    body = bytearray(filler)
    body[offset : offset + len(ATTACK_SIGNATURE)] = ATTACK_SIGNATURE
    return bytes(body)


def signature_span() -> tuple[int, int]:
    return (SIGNATURE_OFFSET, len(ATTACK_SIGNATURE))
