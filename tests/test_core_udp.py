"""End-to-end UDP detection: whole-datagram matching and fragment diversion."""

import pytest

from repro.core import (
    AlertKind,
    ConventionalIPS,
    DivertReason,
    NaivePacketIPS,
    SplitDetectIPS,
)
from repro.packet import TimedPacket, UdpDatagram, build_udp_packet, fragment
from repro.signatures import RuleSet, Signature

DNS_SIG = b"\x07version\x04bind\x00\x00\x10\x00\x03"
SLAMMER_SIG = b"\x04\x01\x01\x01\x01\x01\x01\x01\x01\x01sockf"


def ruleset():
    rules = RuleSet()
    rules.add(Signature(sid=6001, pattern=DNS_SIG, msg="DNS version probe", protocol="udp", dst_port=53))
    rules.add(Signature(sid=6002, pattern=SLAMMER_SIG, msg="slammerish", protocol="udp"))
    rules.add(Signature(sid=6003, pattern=DNS_SIG, msg="same bytes but tcp", protocol="tcp"))
    return rules


def udp_packet(payload, dst_port=53, src="10.5.5.5", dst="10.0.0.2", frag_mtu=None):
    dgram = UdpDatagram(src_port=5353, dst_port=dst_port, payload=payload)
    pkt = build_udp_packet(src, dst, dgram)
    if frag_mtu:
        return [TimedPacket(0.5, f) for f in fragment(pkt, frag_mtu)]
    return [TimedPacket(0.5, pkt)]


def run(ips, packets):
    alerts = []
    for packet in packets:
        alerts.extend(ips.process(packet))
    return alerts


class TestSplitDetectUdp:
    def test_whole_datagram_match_on_fast_path(self):
        ips = SplitDetectIPS(ruleset())
        alerts = run(ips, udp_packet(b"xx" + DNS_SIG + b"yy"))
        assert any(a.sid == 6001 and a.path == "fast" for a in alerts)
        # Self-contained datagram: no pointless diversion.
        assert ips.stats.diversions == 0

    def test_protocol_filter(self):
        """The same bytes over the wrong transport must not alert."""
        ips = SplitDetectIPS(ruleset())
        alerts = run(ips, udp_packet(b"xx" + DNS_SIG + b"yy"))
        assert not any(a.sid == 6003 for a in alerts)

    def test_port_filter(self):
        ips = SplitDetectIPS(ruleset())
        alerts = run(ips, udp_packet(b"xx" + DNS_SIG + b"yy", dst_port=5000))
        assert not any(a.sid == 6001 for a in alerts)
        # sid 6002 is any-port and... not present in this payload.
        assert not any(a.sid == 6002 for a in alerts)

    def test_any_port_signature(self):
        ips = SplitDetectIPS(ruleset())
        alerts = run(ips, udp_packet(b"A" + SLAMMER_SIG + b"B", dst_port=1434))
        assert any(a.sid == 6002 for a in alerts)

    def test_fragmented_udp_diverts_and_detects(self):
        """Fragmentation is UDP's only evasion channel: the fast path never
        sees the signature whole, but the slow path defragments."""
        ips = SplitDetectIPS(ruleset())
        payload = b"x" * 100 + DNS_SIG + b"y" * 100
        packets = udp_packet(payload, frag_mtu=68)
        assert len(packets) > 3
        alerts = run(ips, packets)
        assert ips.divert_reasons[DivertReason.IP_FRAGMENT] == 1
        assert any(a.sid == 6001 and a.path == "slow" for a in alerts)

    def test_benign_udp_passes_silently(self):
        ips = SplitDetectIPS(ruleset())
        alerts = run(ips, udp_packet(b"\x12\x34\x01\x00 plain dns query bytes"))
        assert alerts == []
        assert ips.fast_path.tracked_flows == 0  # no per-flow state for UDP


class TestBaselinesUdp:
    def test_conventional_detects_fragmented_udp(self):
        ips = ConventionalIPS(ruleset())
        payload = b"x" * 100 + DNS_SIG + b"y" * 100
        alerts = run(ips, udp_packet(payload, frag_mtu=68))
        assert any(a.sid == 6001 for a in alerts)

    def test_naive_detects_whole_datagram(self):
        ips = NaivePacketIPS(ruleset())
        alerts = run(ips, udp_packet(b"xx" + DNS_SIG + b"yy"))
        assert any(a.sid == 6001 for a in alerts)

    def test_naive_evaded_by_fragmentation(self):
        ips = NaivePacketIPS(ruleset())
        payload = b"x" * 100 + DNS_SIG + b"y" * 100
        alerts = run(ips, udp_packet(payload, frag_mtu=68))
        assert not any(a.sid == 6001 for a in alerts)

    def test_conventional_protocol_filter(self):
        ips = ConventionalIPS(ruleset())
        alerts = run(ips, udp_packet(b"xx" + DNS_SIG + b"yy"))
        assert not any(a.sid == 6003 for a in alerts)
