"""Integration tests for the flow-table normalizer."""

import pytest

from repro.packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_RST,
    TCP_SYN,
    FlowKey,
    TcpSegment,
    TimedPacket,
    build_tcp_packet,
    fragment,
)
from repro.streams import StreamEvent, StreamNormalizer


def tcp_packet(payload, seq=1000, ts=0.0, flags=TCP_ACK, src="10.0.0.1", dst="10.0.0.2",
               sport=40000, dport=80, ttl=64, frag_mtu=None, ident=0):
    seg = TcpSegment(src_port=sport, dst_port=dport, seq=seq, flags=flags, payload=payload)
    pkt = build_tcp_packet(src, dst, seg, ttl=ttl, identification=ident,
                           dont_fragment=frag_mtu is None)
    if frag_mtu:
        return [TimedPacket(ts, f) for f in fragment(pkt, frag_mtu)]
    return TimedPacket(ts, pkt)


class TestBasicFlow:
    def test_in_order_stream_normalizes(self):
        n = StreamNormalizer()
        out1 = n.process(tcp_packet(b"GET / HT", seq=1000))
        out2 = n.process(tcp_packet(b"TP/1.0\r\n", seq=1008))
        assert out1.chunks == [b"GET / HT"]
        assert out2.chunks == [b"TP/1.0\r\n"]
        assert n.active_flows == 1

    def test_two_directions_share_one_flow(self):
        n = StreamNormalizer()
        n.process(tcp_packet(b"request", src="10.0.0.1", dst="10.0.0.2", sport=40000, dport=80))
        n.process(tcp_packet(b"response", src="10.0.0.2", dst="10.0.0.1", sport=80, dport=40000))
        assert n.active_flows == 1

    def test_distinct_flows_counted(self):
        n = StreamNormalizer()
        n.process(tcp_packet(b"a", sport=40000))
        n.process(tcp_packet(b"b", sport=40001))
        assert n.active_flows == 2

    def test_out_of_order_reported_and_repaired(self):
        n = StreamNormalizer()
        n.process(tcp_packet(b"", seq=999, flags=TCP_SYN))  # pins stream offset 0
        out1 = n.process(tcp_packet(b"world", seq=1005))
        assert StreamEvent.OUT_OF_ORDER in [e.event for e in out1.events]
        out2 = n.process(tcp_packet(b"hello", seq=1000))
        assert out2.chunks == [b"helloworld"]

    def test_non_tcp_packets_passed_through_as_datagrams(self):
        from repro.packet import IPv4Packet

        n = StreamNormalizer()
        pkt = IPv4Packet(src="1.1.1.1", dst="2.2.2.2", protocol=17, payload=b"x" * 12)
        out = n.process(TimedPacket(0.0, pkt))
        assert out.chunks == []
        assert out.datagram is pkt  # handed to the caller for UDP matching
        assert n.active_flows == 0  # and no reassembly state was created


class TestFragmentsIntoStreams:
    def test_fragmented_tcp_packet_normalizes(self):
        n = StreamNormalizer()
        pieces = tcp_packet(b"A" * 600, frag_mtu=300)
        outputs = [n.process(p) for p in pieces]
        delivered = b"".join(c for o in outputs for c in o.chunks)
        assert delivered == b"A" * 600

    def test_tiny_fragment_flagged(self):
        n = StreamNormalizer(tiny_fragment_threshold=64)
        pieces = tcp_packet(b"B" * 600, frag_mtu=68)
        events = [e.event for p in pieces for e in n.process(p).events]
        assert StreamEvent.TINY_FRAGMENT in events


class TestLifecycle:
    def test_rst_closes_flow(self):
        n = StreamNormalizer()
        n.process(tcp_packet(b"data"))
        out = n.process(tcp_packet(b"", flags=TCP_RST))
        assert out.flow_closed
        assert n.active_flows == 0
        assert n.flows_closed == 1

    def test_fin_both_directions_closes_flow(self):
        n = StreamNormalizer()
        n.process(tcp_packet(b"req", seq=1000))
        n.process(tcp_packet(b"resp", seq=5000, src="10.0.0.2", dst="10.0.0.1", sport=80, dport=40000))
        n.process(tcp_packet(b"", seq=1003, flags=TCP_FIN | TCP_ACK))
        assert n.active_flows == 1
        out = n.process(tcp_packet(b"", seq=5004, flags=TCP_FIN | TCP_ACK,
                                   src="10.0.0.2", dst="10.0.0.1", sport=80, dport=40000))
        assert out.flow_closed
        assert n.active_flows == 0

    def test_idle_eviction(self):
        n = StreamNormalizer(idle_timeout=60)
        n.process(tcp_packet(b"a", ts=0.0))
        n.process(tcp_packet(b"b", ts=10.0, sport=40001))
        assert n.evict_idle(now=65.0) == 1
        assert n.active_flows == 1

    def test_state_bytes_reflect_buffers(self):
        n = StreamNormalizer()
        empty_state = n.state_bytes()
        n.process(tcp_packet(b"x" * 100, seq=2000))  # out-of-order hole at 1000? no: first packet defines base
        base = n.state_bytes()
        assert base > empty_state
        n.process(tcp_packet(b"y" * 500, seq=5000, sport=40003))
        n.process(tcp_packet(b"z" * 100, seq=6000, sport=40003))  # buffered OOO
        assert n.state_bytes() > base


class TestTtlAnomaly:
    def test_ttl_swing_flagged(self):
        n = StreamNormalizer()
        n.process(tcp_packet(b"a", seq=1000, ttl=64))
        out = n.process(tcp_packet(b"b", seq=1001, ttl=3))
        assert StreamEvent.TTL_ANOMALY in [e.event for e in out.events]

    def test_small_ttl_jitter_tolerated(self):
        n = StreamNormalizer()
        n.process(tcp_packet(b"a", seq=1000, ttl=64))
        out = n.process(tcp_packet(b"b", seq=1001, ttl=62))
        assert StreamEvent.TTL_ANOMALY not in [e.event for e in out.events]

    def test_check_can_be_disabled(self):
        n = StreamNormalizer(ttl_check=False)
        n.process(tcp_packet(b"a", seq=1000, ttl=64))
        out = n.process(tcp_packet(b"b", seq=1001, ttl=1))
        assert StreamEvent.TTL_ANOMALY not in [e.event for e in out.events]


class TestAmbiguityDetection:
    def test_inconsistent_tcp_overlap_surfaces(self):
        n = StreamNormalizer()
        n.process(tcp_packet(b"attack!!", seq=1000))
        out = n.process(tcp_packet(b"ATTACK!!", seq=1000))
        assert StreamEvent.INCONSISTENT_OVERLAP in [e.event for e in out.events]

    def test_tiny_segment_threshold(self):
        n = StreamNormalizer(tiny_segment_threshold=16)
        out = n.process(tcp_packet(b"abc", seq=1000))
        assert StreamEvent.TINY_SEGMENT in [e.event for e in out.events]
