"""The repo-wide flow hash: 64-bit FNV-1a over canonical byte keys.

One hash function feeds every flow-keyed structure in the system -- the
fast path's set-associative :class:`~repro.core.flowtable.FlowTable`,
the sketch backend's cold-slot array and count-min rows, and the sharded
runtime's :class:`~repro.runtime.sharding.ShardRouter`.  Sharing one
implementation is deliberate, not just tidy:

- **Determinism.**  FNV-1a is pure integer arithmetic over explicit
  bytes, so table placements and shard assignments are identical across
  platforms, Python builds, and runs -- no ``PYTHONHASHSEED``
  dependence, which the serial==parallel digest contract requires.
- **Hardware plausibility.**  The paper's state argument is about SRAM
  tables behind a line-rate hash unit.  FNV-1a (one XOR and one
  multiply per byte) is the classic software model of such a unit, and
  the flow-table-hashing literature for TCP reassembly modules (see
  PAPERS.md, "A New Hashing Algorithm for Use in TCP Reassembly Module
  of IPS") evaluates exactly this family: XOR/multiply mixes over the
  five-tuple, chosen for distribution quality at minimal gate count.
- **Derivable sub-hashes.**  One 64-bit digest is wide enough to carve
  independent fields from (bucket index from the low bits, slot
  fingerprint from the high bits, count-min row indexes via
  :func:`mix64` re-mixing), so each packet pays for one hash pass even
  when several structures need keys.

Callers that need several independent hash functions from the one
digest (the count-min sketch's rows) derive them with :func:`mix64`,
a SplitMix64-style finalizer: bijective, so it preserves the digest's
entropy, and cheap enough to stay in the "hardware hash unit" budget.
"""

from __future__ import annotations

__all__ = ["fnv1a_64", "mix64"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: SplitMix64 increment (the golden-ratio constant), used to decorrelate
#: derived hash rows before finalizing.
_GOLDEN = 0x9E3779B97F4A7C15


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash -- cheap enough to model a hardware hash unit."""
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def mix64(value: int, row: int = 0) -> int:
    """Derive an independent 64-bit hash from ``value`` (SplitMix64 finalizer).

    ``row`` selects one of a family of decorrelated functions; the
    count-min sketch uses ``mix64(flow_hash, row)`` for its per-row
    bucket indexes so one FNV pass over the key serves every row.
    """
    x = (value + (row + 1) * _GOLDEN) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)
