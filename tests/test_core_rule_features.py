"""End-to-end tests for nocase and multi-content rule features."""

import pytest

from repro.core import AlertKind, ConventionalIPS, NaivePacketIPS, SplitDetectIPS
from repro.evasion import build_attack
from repro.match import DualAutomaton, DualStreamMatcher
from repro.signatures import RuleSet, Signature, format_rule, parse_rule


def run(ips, packets):
    alerts = []
    for p in packets:
        alerts.extend(ips.process(p))
    return alerts


def sig_alerts(alerts, sid):
    return [a for a in alerts if a.sid == sid and a.kind in (AlertKind.SIGNATURE, AlertKind.PARTIAL_SIGNATURE)]


class TestDualAutomaton:
    def test_sensitive_and_folded_separated(self):
        auto = DualAutomaton([(b"CaseExact", False), (b"AnyCase", True)])
        hits = {pid for pid, _ in auto.find_all(b"...caseexact...anycase...")}
        assert hits == {1}  # only the nocase pattern matched
        hits = {pid for pid, _ in auto.find_all(b"...CaseExact...ANYCASE...")}
        assert hits == {0, 1}

    def test_ids_stable_in_construction_order(self):
        auto = DualAutomaton([(b"bbb", True), (b"aaa", False), (b"ccc", True)])
        hits = sorted(auto.find_all(b"aaa BBB CCC"))
        assert [pid for pid, _ in hits] == [0, 1, 2]

    def test_no_nocase_means_no_folded_side(self):
        auto = DualAutomaton([(b"x", False)])
        assert not auto.needs_folding

    def test_streaming_matches_batch(self):
        auto = DualAutomaton([(b"NeEdLe", True), (b"exact", False)])
        data = b"...needle...EXACT...exact..."
        batch = sorted(auto.find_all(data))
        matcher = DualStreamMatcher(auto)
        stitched = []
        for i in range(0, len(data), 5):
            stitched.extend((m.pattern_id, m.end_offset) for m in matcher.feed(data[i:i+5]))
        assert sorted(stitched) == batch

    def test_open_prefix_len_covers_both_sides(self):
        auto = DualAutomaton([(b"ZZtail", False), (b"QQtail", True)])
        matcher = DualStreamMatcher(auto)
        matcher.feed(b"...qq")  # folded side open
        assert matcher.open_prefix_len == 2


class TestNocaseRules:
    def ruleset(self):
        rules = RuleSet()
        rules.add(Signature(sid=8001, pattern=b"select union from accounts", msg="sqli", nocase=True))
        rules.add(Signature(sid=8002, pattern=b"CaseSensitiveToken-ZQ7#xx", msg="exact"))
        return rules

    def test_nocase_matches_any_case(self):
        for variant in (b"SELECT UNION FROM ACCOUNTS", b"SeLeCt UnIoN fRoM aCcOuNtS"):
            ips = SplitDetectIPS(self.ruleset())
            alerts = run(ips, build_attack("plain", b"x" * 50 + variant + b"y" * 50))
            assert sig_alerts(alerts, 8001), variant

    def test_nocase_pieces_catch_split_delivery(self):
        ips = SplitDetectIPS(self.ruleset())
        payload = b"x" * 50 + b"SELECT UNION FROM ACCOUNTS" + b"y" * 50
        alerts = run(ips, build_attack("tcp_seg_8", payload))
        assert sig_alerts(alerts, 8001)

    def test_case_sensitive_rule_unaffected(self):
        ips = SplitDetectIPS(self.ruleset())
        alerts = run(ips, build_attack("plain", b"x" * 50 + b"casesensitivetoken-zq7#xx" + b"y" * 50))
        assert not sig_alerts(alerts, 8002)

    def test_conventional_nocase(self):
        ips = ConventionalIPS(self.ruleset())
        alerts = run(ips, build_attack("tcp_seg_8", b"x" * 50 + b"sElEcT uNiOn FrOm AcCoUnTs" + b"y" * 50))
        assert sig_alerts(alerts, 8001)

    def test_rule_syntax_round_trip(self):
        sig = Signature(sid=9, pattern=b"AbCdEfGhIjKl", msg="m", nocase=True)
        assert parse_rule(format_rule(sig)) == sig


class TestMultiContentRules:
    def ruleset(self):
        rules = RuleSet()
        rules.add(
            Signature(
                sid=8101,
                pattern=b"GET /admin/config.php?debug=",
                extra_contents=(b"Cookie: role=guest", b"X-Override: 1"),
                msg="multi-content web rule",
            )
        )
        return rules

    def payload(self, include=("a", "b")):
        body = bytearray(b"filler " * 60)
        parts = [b"GET /admin/config.php?debug=1 HTTP/1.1\r\n"]
        if "a" in include:
            parts.append(b"Cookie: role=guest\r\n")
        if "b" in include:
            parts.append(b"X-Override: 1\r\n")
        return bytes(body) + b"".join(parts) + b"\r\n" + b"tail " * 40

    def test_all_contents_present_fires(self):
        ips = SplitDetectIPS(self.ruleset())
        alerts = run(ips, build_attack("plain", self.payload()))
        assert sig_alerts(alerts, 8101)

    def test_missing_extra_does_not_fire(self):
        for include in (("a",), ("b",), ()):
            ips = SplitDetectIPS(self.ruleset())
            alerts = run(ips, build_attack("plain", self.payload(include)))
            assert not sig_alerts(alerts, 8101), include

    def test_contents_split_across_segments(self):
        ips = SplitDetectIPS(self.ruleset())
        alerts = run(ips, build_attack("tcp_seg_8", self.payload()))
        assert sig_alerts(alerts, 8101)

    def test_extras_before_primary_still_fires(self):
        body = (
            b"Cookie: role=guest\r\nX-Override: 1\r\n" + b"filler " * 50
            + b"GET /admin/config.php?debug=1\r\n"
        )
        ips = ConventionalIPS(self.ruleset())
        alerts = run(ips, build_attack("mss_segments", body))
        assert sig_alerts(alerts, 8101)

    def test_naive_requires_same_packet(self):
        ips = NaivePacketIPS(self.ruleset())
        alerts = run(ips, build_attack("plain", self.payload()))
        assert sig_alerts(alerts, 8101)

    def test_parser_collects_extras(self):
        sig = parse_rule(
            'alert tcp any any -> any 80 (msg:"m"; content:"short"; '
            'content:"the longest content here"; content:"mid"; sid:5;)'
        )
        assert sig.pattern == b"the longest content here"
        assert set(sig.extra_contents) == {b"short", b"mid"}

    def test_format_round_trip(self):
        sig = Signature(
            sid=5, pattern=b"longest-content-x", extra_contents=(b"aaa", b"bb|b"), msg="m"
        )
        assert parse_rule(format_rule(sig)) == sig

    def test_validation_rejects_longer_extra(self):
        with pytest.raises(ValueError):
            Signature(sid=1, pattern=b"short", extra_contents=(b"muchlonger",))
