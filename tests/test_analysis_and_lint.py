"""Tests for trace characterization and rule linting."""

import pytest

from repro.analysis import characterize, format_stats
from repro.cli import main
from repro.evasion import build_attack
from repro.signatures import (
    ByteFrequencyModel,
    LintLevel,
    RuleSet,
    Signature,
    SplitPolicy,
    lint_ruleset,
    load_bundled_rules,
)
from repro.traffic import TrafficProfile, generate_trace, inject_attacks


class TestCharacterize:
    def trace(self, **kw):
        profile = TrafficProfile(flows=30, **kw)
        return generate_trace(profile, seed=17)

    def test_counts_add_up(self):
        trace = self.trace()
        stats = characterize(trace)
        assert stats.packets == len(trace)
        assert (
            stats.tcp_packets + stats.udp_packets + stats.other_packets + stats.fragments
            == stats.packets
        )

    def test_flow_count(self):
        stats = characterize(self.trace(udp_fraction=0, fragment_rate=0))
        assert stats.flows == 30

    def test_duration_and_rate(self):
        stats = characterize(self.trace())
        assert stats.duration > 0
        assert stats.mean_mbps > 0

    def test_reordering_detected(self):
        quiet = characterize(self.trace(reorder_rate=0, retransmit_rate=0, fragment_rate=0))
        noisy = characterize(self.trace(reorder_rate=0.2, retransmit_rate=0.1, fragment_rate=0))
        assert quiet.reorder_rate == 0
        assert noisy.reorder_rate > 0
        assert noisy.retransmit_rate > 0

    def test_fragments_counted(self):
        stats = characterize(self.trace(fragment_rate=0.2))
        assert stats.fragments > 0
        assert 0 < stats.fragment_fraction < 1

    def test_histogram_covers_all_data_packets(self):
        stats = characterize(self.trace(fragment_rate=0))
        assert sum(stats.payload_size_histogram.values()) == (
            stats.tcp_packets + stats.udp_packets
        )

    def test_percentiles_monotonic(self):
        stats = characterize(self.trace())
        assert (
            stats.flow_size_percentile(0.5)
            <= stats.flow_size_percentile(0.9)
            <= stats.flow_size_percentile(0.99)
        )

    def test_empty_trace(self):
        stats = characterize([])
        assert stats.packets == 0 and stats.mean_mbps == 0

    def test_format_is_printable(self):
        lines = format_stats(characterize(self.trace()))
        assert any("packets:" in line for line in lines)
        assert any("flows:" in line for line in lines)


class TestLint:
    def test_bundled_corpus_has_no_errors(self):
        findings = lint_ruleset(load_bundled_rules())
        assert not any(f.level is LintLevel.ERROR for f in findings)

    def test_duplicate_sid_is_error(self):
        rules = RuleSet()
        rules.add(Signature(sid=1, pattern=b"a" * 24))
        rules.add(Signature(sid=1, pattern=b"b" * 24))
        findings = lint_ruleset(rules)
        assert any(f.code == "duplicate-sid" and f.level is LintLevel.ERROR for f in findings)

    def test_duplicate_pattern_is_warning(self):
        rules = RuleSet()
        rules.add(Signature(sid=1, pattern=b"same-pattern-bytes-here!"))
        rules.add(Signature(sid=2, pattern=b"same-pattern-bytes-here!"))
        findings = lint_ruleset(rules)
        assert any(f.code == "duplicate-pattern" and f.sid == 2 for f in findings)

    def test_unsplittable_flagged(self):
        rules = RuleSet()
        rules.add(Signature(sid=3, pattern=b"short"))
        findings = lint_ruleset(rules)
        assert any(f.code == "unsplittable" for f in findings)

    def test_noisy_piece_flagged_with_model(self):
        model = ByteFrequencyModel()
        model.train(b"GET /index.html HTTP/1.1\r\n" * 500)
        rules = RuleSet()
        rules.add(Signature(sid=4, pattern=b"GET /index.html HTTP/1.1"))
        findings = lint_ruleset(rules, SplitPolicy(piece_length=8), model)
        assert any(f.code == "noisy-piece" for f in findings)

    def test_clean_rule_has_no_findings(self):
        rules = RuleSet()
        rules.add(Signature(sid=5, pattern=bytes(range(40, 80))))
        assert lint_ruleset(rules) == []

    def test_short_udp_pattern_flagged(self):
        rules = RuleSet()
        rules.add(Signature(sid=6, pattern=b"ab", protocol="udp"))
        findings = lint_ruleset(rules)
        assert any(f.code == "short-udp-pattern" for f in findings)

    def test_findings_ordered_by_severity(self):
        rules = RuleSet()
        rules.add(Signature(sid=9, pattern=b"short"))
        rules.add(Signature(sid=9, pattern=b"other-pattern-long-enough!"))
        findings = lint_ruleset(rules)
        levels = [f.level for f in findings]
        assert levels == sorted(levels, key=lambda lv: {LintLevel.ERROR: 0, LintLevel.WARNING: 1, LintLevel.INFO: 2}[lv])


class TestCliIntegration:
    def test_lint_command(self, capsys):
        assert main(["lint", "--no-model"]) == 0
        out = capsys.readouterr().out
        assert "findings" in out

    def test_stats_command(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        main(["generate", str(path), "--flows", "5"])
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        assert "payload size histogram" in capsys.readouterr().out
