"""Tests for the signature splitter and the n-gram background model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signatures import (
    ByteFrequencyModel,
    RuleSet,
    Signature,
    SplitPolicy,
    UnsplittableSignatureError,
    effective_piece_length,
    load_bundled_rules,
    split_ruleset,
    split_signature,
    synthesize_corpus,
    uniform_model,
)


def sig(pattern, sid=1, port=None):
    return Signature(sid=sid, pattern=pattern, dst_port=port)


class TestEffectivePieceLength:
    def test_long_signature_uses_policy_p(self):
        assert effective_piece_length(sig(b"x" * 40), SplitPolicy(piece_length=8)) == 8

    def test_short_signature_shrinks(self):
        assert effective_piece_length(sig(b"x" * 18), SplitPolicy(piece_length=8)) == 6

    def test_too_short_raises(self):
        with pytest.raises(UnsplittableSignatureError):
            effective_piece_length(sig(b"x" * 11), SplitPolicy(piece_length=8))

    def test_boundary_exactly_3p(self):
        assert effective_piece_length(sig(b"x" * 24), SplitPolicy(piece_length=8)) == 8

    def test_boundary_exactly_3_min(self):
        assert effective_piece_length(sig(b"x" * 12), SplitPolicy(piece_length=8)) == 4


class TestSplitSignature:
    def test_pieces_cover_pattern(self):
        pattern = bytes(range(40))
        split = split_signature(sig(pattern))
        rebuilt = b"".join(piece.data for piece in split.pieces)
        assert rebuilt == pattern

    def test_piece_count_is_floor_l_over_p(self):
        split = split_signature(sig(b"x" * 43), SplitPolicy(piece_length=8))
        assert split.k == 43 // 8

    def test_all_pieces_at_least_p(self):
        split = split_signature(sig(b"x" * 43), SplitPolicy(piece_length=8))
        assert all(len(piece.data) >= 8 for piece in split.pieces)

    def test_threshold_is_twice_p(self):
        split = split_signature(sig(b"x" * 30), SplitPolicy(piece_length=10))
        assert split.small_packet_threshold == 20

    def test_minimum_viable_signature(self):
        split = split_signature(sig(b"abcdefghijkl"))  # 12 bytes -> p=4, k=3
        assert split.k == 3
        assert split.piece_length == 4

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SplitPolicy(piece_length=2)
        with pytest.raises(ValueError):
            SplitPolicy(piece_length=8, min_piece_length=2)


class TestModelGuidedSplitting:
    def make_model(self):
        model = ByteFrequencyModel()
        # "AAAA..." is extremely common benign content; "Q7" bytes are rare.
        model.train(b"A" * 5000 + bytes([81, 55]) * 10)
        return model

    def test_optimizer_avoids_common_pieces(self):
        # Pattern: rare prefix, then a long common run, then rare tail.
        pattern = b"Q7Q7Q7Q7" + b"A" * 16 + b"Q7Q7Q7Q7"
        model = self.make_model()
        naive = split_signature(sig(pattern), SplitPolicy(piece_length=8, optimize_boundaries=False))
        tuned = split_signature(sig(pattern), SplitPolicy(piece_length=8), model)

        def worst(split):
            return max(model.log_probability(p.data) for p in split.pieces)

        assert worst(tuned) <= worst(naive)

    def test_optimized_split_still_sound(self):
        pattern = b"Q7Q7Q7Q7" + b"A" * 16 + b"Q7Q7Q7Q7"
        tuned = split_signature(sig(pattern), SplitPolicy(piece_length=8), self.make_model())
        assert b"".join(p.data for p in tuned.pieces) == pattern
        assert all(len(p.data) >= 8 for p in tuned.pieces)


class TestPrefixSkip:
    def make_model(self):
        model = ByteFrequencyModel()
        model.train(b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n" * 200)
        return model

    def test_common_prefix_skipped(self):
        pattern = b"GET /index.php?page=http://evil.example/shell.txt"
        tuned = split_signature(
            sig(pattern),
            SplitPolicy(piece_length=8, skip_common_prefix=True),
            self.make_model(),
        )
        assert tuned.start_offset > 0
        # The infamous benign-looking head is no longer a piece.
        assert all(not piece.data.startswith(b"GET /") for piece in tuned.pieces)

    def test_skip_preserves_soundness(self):
        from repro.theory import find_evading_boundaries

        pattern = b"GET /index.php?page=http://evil.example/shell.txt"
        tuned = split_signature(
            sig(pattern),
            SplitPolicy(piece_length=8, skip_common_prefix=True),
            self.make_model(),
        )
        assert tuned.k >= 3
        assert all(len(piece.data) >= 8 for piece in tuned.pieces)
        assert find_evading_boundaries(tuned) is None

    def test_skip_disabled_by_default(self):
        pattern = b"GET /index.php?page=http://evil.example/shell.txt"
        plain = split_signature(sig(pattern), SplitPolicy(piece_length=8), self.make_model())
        assert plain.start_offset == 0

    def test_no_model_means_no_skip(self):
        pattern = b"GET /index.php?page=http://evil.example/shell.txt"
        split = split_signature(
            sig(pattern), SplitPolicy(piece_length=8, skip_common_prefix=True)
        )
        assert split.start_offset == 0

    def test_short_signature_cannot_skip(self):
        pattern = b"GET /cgi-bin/phf?x"  # 18 bytes: p=6, no skip headroom
        split = split_signature(
            sig(pattern),
            SplitPolicy(piece_length=8, skip_common_prefix=True),
            self.make_model(),
        )
        assert split.start_offset == 0

    def test_skipped_split_reduces_worst_piece_commonness(self):
        model = self.make_model()
        pattern = b"GET /index.php?page=http://evil.example/shell.txt"
        plain = split_signature(sig(pattern), SplitPolicy(piece_length=8, optimize_boundaries=False))
        tuned = split_signature(
            sig(pattern),
            SplitPolicy(piece_length=8, skip_common_prefix=True, optimize_boundaries=False),
            model,
        )

        def worst(split):
            return max(model.log_probability(piece.data) for piece in split.pieces)

        assert worst(tuned) <= worst(plain)


class TestSplitRuleSet:
    def test_bundled_corpus_mostly_splittable(self):
        rules = load_bundled_rules()
        split = split_ruleset(rules)
        assert (
            len(split.splits) + len(split.unsplittable) + len(split.udp_whole)
            == len(rules)
        )
        # The corpus plants exactly a few deliberately-short signatures.
        assert 0 < len(split.unsplittable) < 0.1 * len(rules)
        # UDP signatures are routed to whole-datagram matching, never split.
        assert len(split.udp_whole) == 8
        assert all(s.protocol == "udp" for s in split.udp_whole)

    def test_global_threshold(self):
        rules = RuleSet()
        rules.add(sig(b"x" * 40, sid=1))
        rules.add(sig(b"y" * 15, sid=2))  # shrinks to p=5
        split = split_ruleset(rules, SplitPolicy(piece_length=8))
        assert split.small_packet_threshold == 16

    def test_all_pieces_deterministic_order(self):
        rules = synthesize_corpus()
        a = [p.data for p in split_ruleset(rules).all_pieces()]
        b = [p.data for p in split_ruleset(rules).all_pieces()]
        assert a == b

    def test_piece_count(self):
        rules = RuleSet()
        rules.add(sig(b"x" * 24, sid=1))
        rules.add(sig(b"y" * 32, sid=2))
        split = split_ruleset(rules, SplitPolicy(piece_length=8))
        assert split.piece_count == 3 + 4


class TestByteFrequencyModel:
    def test_untrained_is_uniform(self):
        model = uniform_model()
        assert model.log_probability(b"ab") == pytest.approx(2 * math.log(1 / 256))

    def test_training_shifts_probability(self):
        model = ByteFrequencyModel()
        model.train(b"abababab" * 100)
        assert model.log_probability(b"abab") > model.log_probability(b"zqzq")

    def test_expected_matches_scale(self):
        model = uniform_model()
        per_byte = math.exp(model.log_probability(b"abcd"))
        assert model.expected_matches(b"abcd", 10**6) == pytest.approx(10**6 * per_byte)

    def test_empty_piece(self):
        assert uniform_model().log_probability(b"") == 0.0

    def test_trained_bytes(self):
        model = ByteFrequencyModel()
        model.train_many([b"abc", b"de"])
        assert model.trained_bytes == 5


@given(
    length=st.integers(min_value=12, max_value=300),
    p=st.integers(min_value=4, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=200)
def test_split_invariants_hold_for_any_signature(length, p, seed):
    import random

    rng = random.Random(seed)
    pattern = bytes(rng.randrange(256) for _ in range(length))
    policy = SplitPolicy(piece_length=p)
    try:
        split = split_signature(sig(pattern), policy)
    except UnsplittableSignatureError:
        assert length // 3 < policy.min_piece_length
        return
    assert split.k >= 3
    assert split.k == length // split.piece_length
    assert b"".join(piece.data for piece in split.pieces) == pattern
    assert all(len(piece.data) >= split.piece_length for piece in split.pieces)
    # Pieces no longer than 2p-1 in the unoptimized even split.
    assert all(len(piece.data) <= 2 * split.piece_length - 1 for piece in split.pieces)
