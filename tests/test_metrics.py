"""Tests for the cost model and run harness."""

import pytest

from helpers import attack_payload, attack_ruleset, signature_span
from repro.core import ConventionalIPS, SplitDetectIPS
from repro.evasion import build_attack
from repro.metrics import (
    CONVENTIONAL_REFS_PER_BYTE,
    FASTPATH_REFS_PER_BYTE,
    HardwareModel,
    conventional_cost,
    extrapolate_state,
    provisioned_conventional_state,
    provisioned_fastpath_state,
    run_conventional,
    run_split_detect,
    split_detect_cost,
    state_per_flow,
    throughput_comparison,
)
from repro.traffic import TrafficProfile, generate_trace, inject_attacks


class TestHardwareModel:
    def test_sram_when_state_fits(self):
        hw = HardwareModel(sram_budget_bytes=1000)
        assert hw.ref_ns(999) == hw.sram_ns / hw.overlap_factor
        assert hw.ref_ns(1001) == hw.dram_ns / hw.overlap_factor

    def test_conventional_cost_shape(self):
        report = conventional_cost(10**9, 10**6, provisioned_conventional_state())
        assert report.memory == "DRAM"
        assert report.refs_per_byte == CONVENTIONAL_REFS_PER_BYTE
        assert report.gbps > 0

    def test_fastpath_beats_conventional(self):
        conv = conventional_cost(10**9, 10**6, provisioned_conventional_state())
        fast, _slow, blended = split_detect_cost(
            10**9, 10**6, 10**7, 10**4,
            provisioned_fastpath_state(), 10**7,
        )
        assert fast.gbps > conv.gbps
        assert blended.gbps > conv.gbps

    def test_fastpath_state_fits_sram(self):
        fast, _, _ = split_detect_cost(
            10**9, 10**6, 0, 0, provisioned_fastpath_state(), 0
        )
        assert fast.memory == "SRAM"

    def test_paper_claims_hold_under_default_model(self):
        """The headline: fast path >= 20 Gbps, conventional stuck below 10."""
        conv = conventional_cost(10**9, 10**6, provisioned_conventional_state())
        fast, _, _ = split_detect_cost(
            10**9, 10**6, 10**7, 10**4, provisioned_fastpath_state(), 10**7
        )
        assert fast.gbps >= 20.0
        assert conv.gbps < 10.0

    def test_state_provisioning_ratio_close_to_paper(self):
        """Fast-path state should be ~10% (or less) of conventional."""
        ratio = provisioned_fastpath_state() / provisioned_conventional_state()
        assert ratio <= 0.10

    def test_per_packet_overhead_amortized(self):
        small_packets = conventional_cost(10**6, 10**5, 10**9)  # 10B packets
        big_packets = conventional_cost(10**6, 10**3, 10**9)  # 1000B packets
        assert small_packets.ns_per_byte > big_packets.ns_per_byte

    def test_extrapolate_state(self):
        assert extrapolate_state(48.0, 1_000_000) == 48_000_000


class TestRunHarness:
    def trace(self):
        benign = generate_trace(TrafficProfile(flows=12), seed=21)
        attack = build_attack(
            "tcp_seg_8", attack_payload(), signature_span=signature_span(), src="10.200.0.1"
        )
        return inject_attacks(benign, [attack])

    def test_split_detect_run_report(self):
        ips = SplitDetectIPS(attack_ruleset())
        report = run_split_detect(ips, self.trace())
        assert report.packets == len(self.trace())
        assert report.diverted_flows >= 1
        assert report.fast_bytes > 0 and report.slow_bytes > 0
        assert any(a.sid == 5001 for a in report.alerts if a.sid)
        assert 0 < report.diversion_byte_fraction < 1

    def test_conventional_run_report(self):
        ips = ConventionalIPS(attack_ruleset())
        report = run_conventional(ips, self.trace())
        assert report.packets == len(self.trace())
        assert report.peak_state_bytes > 0
        assert any(a.sid == 5001 for a in report.alerts if a.sid)

    def test_peak_state_is_max_not_final(self):
        ips = ConventionalIPS(attack_ruleset())
        report = run_conventional(ips, self.trace(), sample_every=1)
        assert report.peak_state_bytes >= ips.state_bytes()

    def test_state_per_flow(self):
        ips = ConventionalIPS(attack_ruleset())
        report = run_conventional(ips, self.trace())
        assert state_per_flow(report) > 0

    def test_throughput_comparison_rows(self):
        split_ips = SplitDetectIPS(attack_ruleset())
        split_report = run_split_detect(split_ips, self.trace())
        conv_ips = ConventionalIPS(attack_ruleset())
        conv_report = run_conventional(conv_ips, self.trace())
        rows = throughput_comparison(split_report, conv_report)
        labels = [r.label for r in rows]
        assert labels == [
            "conventional",
            "split-detect fast",
            "split-detect slow",
            "split-detect blended",
        ]
        by_label = dict(zip(labels, rows))
        assert by_label["split-detect fast"].gbps > by_label["conventional"].gbps
