"""Self-profiling: stage latency quantiles + top-N slowest flows.

The engine already feeds per-stage wall-clock latencies into the
``repro_engine_stage_latency_ns`` histogram (PR 2).  This module turns
that raw material into the operator-facing profile section the ROADMAP's
live-service item asks for:

- :func:`histogram_quantile` interpolates p50/p99/... from a fixed-edge
  histogram child's cumulative counts (the standard Prometheus
  ``histogram_quantile`` estimator: linear within the bucket);
- :class:`StageProfiler` keeps the N slowest (stage, flow, duration)
  samples seen by one engine -- a bounded min-heap fed from the timing
  deltas the engine already computes when telemetry is on, published
  into the registry as the ``repro_profile_slow_flow_ns`` gauge at
  refresh time so it merges across shards for free;
- :func:`stage_profile` assembles the JSON-safe profile dict embedded
  in ``RunReport.profile`` / ``RuntimeReport.profile`` and rendered by
  both exporters.

Everything here runs per snapshot/refresh, never per packet; the only
per-packet cost is :meth:`StageProfiler.note`'s single comparison
against the current N-th slowest duration, and that only when telemetry
is already enabled.
"""

from __future__ import annotations

import heapq
from typing import Any

from .registry import Histogram, _HistogramChild

__all__ = [
    "PROFILE_QUANTILES",
    "SLOW_FLOW_GAUGE",
    "STAGE_HISTOGRAM",
    "StageProfiler",
    "histogram_quantile",
    "stage_profile",
]

#: The engine histogram the profile reads (declared in core/engine.py).
STAGE_HISTOGRAM = "repro_engine_stage_latency_ns"

#: The gauge shards publish their slowest flows through (merge="max"
#: keeps the larger duration if two generations report the same flow).
SLOW_FLOW_GAUGE = "repro_profile_slow_flow_ns"

#: Quantiles the profile section reports, worst-case last.
PROFILE_QUANTILES = (0.5, 0.9, 0.99)


def histogram_quantile(
    edges: tuple[float, ...] | list[float],
    cumulative: list[int],
    quantile: float,
) -> float:
    """Estimate a quantile from cumulative fixed-edge bucket counts.

    ``cumulative`` has one entry per edge plus the +Inf slot.  Linear
    interpolation within the containing bucket (the Prometheus
    ``histogram_quantile`` estimator); values in the +Inf bucket clamp
    to the last finite edge, so the estimate is a lower bound there.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    total = cumulative[-1] if cumulative else 0
    if total == 0:
        return 0.0
    rank = quantile * total
    previous = 0
    lower = 0.0
    for edge, count in zip(edges, cumulative):
        if count >= rank:
            in_bucket = count - previous
            if in_bucket == 0:
                return float(edge)
            fraction = (rank - previous) / in_bucket
            return lower + (float(edge) - lower) * fraction
        previous = count
        lower = float(edge)
    return float(edges[-1]) if edges else 0.0


def _child_profile(edges: tuple[float, ...], child: _HistogramChild) -> dict[str, Any]:
    cumulative = child.cumulative()
    out: dict[str, Any] = {
        "count": child.count,
        "mean_ns": child.sum / child.count if child.count else 0.0,
    }
    for quantile in PROFILE_QUANTILES:
        key = f"p{int(quantile * 100)}_ns"
        out[key] = histogram_quantile(edges, cumulative, quantile)
    # "max": the upper edge of the highest occupied bucket (a bound, not
    # an exact sample -- the histogram never stores raw values).
    occupied = 0.0
    previous = 0
    for index, count in enumerate(cumulative):
        if count > previous:
            occupied = float(edges[index]) if index < len(edges) else float(edges[-1])
        previous = count
    out["max_le_ns"] = occupied
    return out


class StageProfiler:
    """Top-N slowest (flow, duration) samples per stage, bounded heaps."""

    def __init__(self, top_n: int = 5) -> None:
        if top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {top_n}")
        self.top_n = top_n
        # stage -> min-heap of (dur_ns, flow_str); heap[0] is the bar a
        # new sample must clear, so the common case is one comparison.
        self._heaps: dict[str, list[tuple[int, str]]] = {}

    def note(self, stage: str, flow: str, dur_ns: int) -> None:
        """Offer one timing sample (call only when telemetry is on)."""
        heap = self._heaps.get(stage)
        if heap is None:
            heap = []
            self._heaps[stage] = heap
        if len(heap) < self.top_n:
            heapq.heappush(heap, (dur_ns, flow))
        elif dur_ns > heap[0][0]:
            heapq.heapreplace(heap, (dur_ns, flow))

    def publish(self, registry: Any) -> None:
        """Write the current top-N sets into :data:`SLOW_FLOW_GAUGE`.

        Called from ``refresh_telemetry`` (snapshot time, not per
        packet).  Children accumulate: a flow displaced from the top-N
        keeps its last published duration, which cannot change the
        final selection -- every current member's duration is >= every
        displaced member's.
        """
        gauge = registry.gauge(
            SLOW_FLOW_GAUGE,
            "Slowest per-flow stage latencies sampled by the engine "
            "(top-N per stage; merges across shards by max)",
            ("stage", "flow"),
            merge="max",
        )
        for stage in sorted(self._heaps):
            for dur_ns, flow in self._heaps[stage]:
                gauge.labels(stage=stage, flow=flow).set(dur_ns)


def stage_profile(registry: Any, *, top_n: int = 5) -> dict[str, Any] | None:
    """The profile section: per-stage quantiles + slowest flows.

    Reads only registry state (:data:`STAGE_HISTOGRAM` and
    :data:`SLOW_FLOW_GAUGE`), so it works identically on a live
    single-engine registry and on the runtime's merged registry.
    Returns ``None`` when the registry has no stage data (telemetry off
    or a run that never processed a packet).
    """
    histogram = registry.get(STAGE_HISTOGRAM)
    if not isinstance(histogram, Histogram):
        return None
    stages: dict[str, Any] = {}
    for labels, child in histogram.samples():
        if child.count:
            stages[labels["stage"]] = _child_profile(histogram.edges, child)
    if not stages:
        return None
    profile: dict[str, Any] = {"stages": stages}
    gauge = registry.get(SLOW_FLOW_GAUGE)
    if gauge is not None and not isinstance(gauge, Histogram):
        slowest: dict[str, list[dict[str, Any]]] = {}
        for labels, value in gauge.samples():
            slowest.setdefault(labels["stage"], []).append(
                {"flow": labels["flow"], "dur_ns": value}
            )
        for stage in slowest:
            slowest[stage].sort(key=lambda entry: (-entry["dur_ns"], entry["flow"]))
            del slowest[stage][top_n:]
        profile["slowest_flows"] = slowest
    return profile
