"""Tests for the libpcap savefile reader/writer."""

import io
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet import IPv4Packet, TcpSegment, TimedPacket, build_tcp_packet
from repro.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IP,
    PcapFormatError,
    PcapReader,
    PcapWriter,
    read_trace,
    trace_to_bytes,
    write_trace,
)
from repro.pcap.format import decode_global_header, encode_global_header


def sample_packets(n=3):
    packets = []
    for i in range(n):
        seg = TcpSegment(src_port=1000 + i, dst_port=80, seq=i * 100, payload=b"x" * i)
        packets.append(TimedPacket(1000.0 + i * 0.5, build_tcp_packet("10.0.0.1", "10.0.0.2", seg)))
    return packets


class TestGlobalHeader:
    def test_round_trip(self):
        header = decode_global_header(encode_global_header(LINKTYPE_RAW_IP, 1234))
        assert header.linktype == LINKTYPE_RAW_IP
        assert header.snaplen == 1234
        assert header.byte_order == "<"

    def test_big_endian_detected(self):
        raw = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        header = decode_global_header(raw)
        assert header.byte_order == ">" and header.linktype == 1

    def test_bad_magic(self):
        with pytest.raises(PcapFormatError):
            decode_global_header(b"\x00" * 24)

    def test_nanosecond_magic_detected(self):
        raw = struct.pack("<IHHiIII", 0xA1B23C4D, 2, 4, 0, 0, 65535, 101)
        header = decode_global_header(raw)
        assert header.nanosecond and header.byte_order == "<"

    def test_nanosecond_swapped_magic(self):
        raw = struct.pack(">IHHiIII", 0xA1B23C4D, 2, 4, 0, 0, 65535, 101)
        header = decode_global_header(raw)
        assert header.nanosecond and header.byte_order == ">"

    def test_nanosecond_records_scale_correctly(self):
        from repro.pcap.format import decode_record_header

        body = struct.pack("<IIII", 10, 500_000_000, 3, 3)
        ts, cap, orig = decode_record_header(body, "<", nanosecond=True)
        assert ts == pytest.approx(10.5)
        # The same frac field read as microseconds would be out of range.
        with pytest.raises(PcapFormatError):
            decode_record_header(body, "<", nanosecond=False)

    def test_nanosecond_file_reads_end_to_end(self):
        stream = io.BytesIO()
        stream.write(struct.pack("<IHHiIII", 0xA1B23C4D, 2, 4, 0, 0, 65535, 101))
        stream.write(struct.pack("<IIII", 7, 250_000_000, 4, 4))
        stream.write(b"data")
        stream.seek(0)
        [(ts, data)] = list(PcapReader(stream))
        assert ts == pytest.approx(7.25)
        assert data == b"data"

    def test_truncated(self):
        with pytest.raises(PcapFormatError):
            decode_global_header(b"\xd4\xc3")


class TestRecordStream:
    def test_write_read_records(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write_record(1.25, b"abc")
        writer.write_record(2.0, b"defgh")
        buffer.seek(0)
        records = list(PcapReader(buffer))
        assert records == [(1.25, b"abc"), (2.0, b"defgh")]

    def test_snaplen_truncates(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=4)
        writer.write_record(0.0, b"abcdefgh")
        buffer.seek(0)
        [(_, data)] = list(PcapReader(buffer))
        assert data == b"abcd"

    def test_truncated_body_raises(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write_record(0.0, b"abcdef")
        truncated = io.BytesIO(buffer.getvalue()[:-3])
        with pytest.raises(PcapFormatError):
            list(PcapReader(truncated))

    def test_empty_file_is_valid(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.seek(0)
        assert list(PcapReader(buffer)) == []

    def test_timestamp_microsecond_rounding(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write_record(5.9999999, b"x")  # rounds to 6.0, must not emit usec=10^6
        buffer.seek(0)
        [(ts, _)] = list(PcapReader(buffer))
        assert ts == pytest.approx(6.0)


class TestTraceIO:
    def test_trace_round_trip_raw_ip(self, tmp_path):
        path = tmp_path / "t.pcap"
        packets = sample_packets()
        assert write_trace(path, packets) == len(packets)
        loaded = list(read_trace(path))
        assert [p.ip for p in loaded] == [p.ip for p in packets]
        assert [p.timestamp for p in loaded] == pytest.approx([p.timestamp for p in packets])

    def test_trace_round_trip_ethernet(self, tmp_path):
        path = tmp_path / "t.pcap"
        packets = sample_packets()
        write_trace(path, packets, linktype=LINKTYPE_ETHERNET)
        loaded = list(read_trace(path))
        assert [p.ip for p in loaded] == [p.ip for p in packets]

    def test_unsupported_linktype_raises(self, tmp_path):
        path = tmp_path / "t.pcap"
        with PcapWriter(path, linktype=228):
            pass
        with pytest.raises(PcapFormatError):
            list(read_trace(path))

    def test_trace_to_bytes_is_readable(self):
        raw = trace_to_bytes(sample_packets())
        records = list(PcapReader(io.BytesIO(raw)))
        assert len(records) == 3
        assert IPv4Packet.parse(records[0][1]).src == "10.0.0.1"


@given(
    timestamps=st.lists(
        st.floats(min_value=0, max_value=2**31, allow_nan=False), min_size=1, max_size=10
    ),
    payloads=st.lists(st.binary(max_size=200), min_size=1, max_size=10),
)
def test_record_round_trip_property(timestamps, payloads):
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    expected = []
    for ts, payload in zip(timestamps, payloads):
        writer.write_record(ts, payload)
        expected.append((ts, payload))
    buffer.seek(0)
    for (ts_in, data_in), (ts_out, data_out) in zip(expected, PcapReader(buffer)):
        assert data_out == data_in
        assert abs(ts_out - ts_in) < 1e-5 or abs(ts_out - ts_in) / max(ts_in, 1) < 1e-9
