"""Finding records: what a rule reports and how a baseline identifies it.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.fingerprint` deliberately excludes the line *number* --
it hashes the rule id, the file's path, the stripped source text of the
flagged line, and the message -- so a committed baseline survives
unrelated edits that shift code up or down, while still going stale
when the flagged line itself changes (which is exactly when a human
should re-look).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum

__all__ = ["Finding", "Severity"]


class Severity(str, Enum):
    """How a finding affects the exit code (config can downgrade rules)."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    """POSIX-style path relative to the scan root (stable across hosts)."""

    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    source: str = ""
    """The stripped text of the flagged source line (fingerprint input)."""

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file."""
        payload = f"{self.rule}|{self.path}|{self.source}|{self.message}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    def to_dict(self) -> dict[str, object]:
        """JSON-safe form for ``--json`` output and baseline files."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "source": self.source,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """The one-line human form: ``path:line:col: SDxxx [sev] message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )
