"""Tests for target-based overlap resolution policies."""

import pytest

from repro.streams import OverlapPolicy, ambiguous_policies, resolve_overlap


class TestResolveOverlap:
    def test_first_always_keeps_old(self):
        assert not resolve_overlap(OverlapPolicy.FIRST, 0, 10, 5, 15)
        assert not resolve_overlap(OverlapPolicy.FIRST, 5, 15, 0, 10)

    def test_last_always_takes_new(self):
        assert resolve_overlap(OverlapPolicy.LAST, 0, 10, 5, 15)
        assert resolve_overlap(OverlapPolicy.LAST, 5, 15, 0, 10)

    def test_bsd_new_wins_only_when_starting_earlier(self):
        assert resolve_overlap(OverlapPolicy.BSD, 5, 15, 0, 10)
        assert not resolve_overlap(OverlapPolicy.BSD, 0, 10, 5, 15)
        assert not resolve_overlap(OverlapPolicy.BSD, 0, 10, 0, 10)

    def test_linux_always_keeps_old_in_contested_region(self):
        assert not resolve_overlap(OverlapPolicy.LINUX, 5, 15, 0, 10)

    def test_windows_requires_full_engulfment(self):
        assert resolve_overlap(OverlapPolicy.WINDOWS, 5, 10, 0, 15)
        assert not resolve_overlap(OverlapPolicy.WINDOWS, 5, 10, 0, 10)
        assert not resolve_overlap(OverlapPolicy.WINDOWS, 5, 10, 5, 15)

    def test_solaris_new_wins_when_reaching_old_end(self):
        assert resolve_overlap(OverlapPolicy.SOLARIS, 0, 10, 5, 10)
        assert resolve_overlap(OverlapPolicy.SOLARIS, 0, 10, 5, 15)
        assert not resolve_overlap(OverlapPolicy.SOLARIS, 0, 10, 2, 8)

    def test_rejects_disjoint_ranges(self):
        with pytest.raises(ValueError):
            resolve_overlap(OverlapPolicy.BSD, 0, 5, 5, 10)


class TestAmbiguity:
    def test_every_overlap_is_ambiguous_across_the_full_policy_set(self):
        # FIRST and LAST always disagree, so any overlap is exploitable
        # when the protected hosts' policies are unknown.
        assert ambiguous_policies(0, 10, 5, 15)
        assert ambiguous_policies(5, 10, 0, 15)
        assert ambiguous_policies(0, 10, 0, 10)

    def test_policies_split_on_classic_ptacek_newsham_shape(self):
        # New segment engulfs old: BSD/WINDOWS/LAST/SOLARIS take new,
        # FIRST/LINUX keep old -- the disagreement evasions rely on.
        winners = {
            p: resolve_overlap(p, 5, 10, 0, 15) for p in OverlapPolicy
        }
        assert winners[OverlapPolicy.LAST] and winners[OverlapPolicy.BSD]
        assert winners[OverlapPolicy.WINDOWS] and winners[OverlapPolicy.SOLARIS]
        assert not winners[OverlapPolicy.FIRST] and not winners[OverlapPolicy.LINUX]
