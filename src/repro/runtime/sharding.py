"""Flow-consistent shard routing: the RSS of the sharded runtime.

Split-Detect is embarrassingly shardable because *every* piece of
per-flow state -- the fast path's monitor entries, the engine's diverted
set, the slow path's reassembly buffers -- is keyed by the connection.
A hash that sends every packet of a connection (both directions) to the
same shard therefore makes shards fully independent: N shards behind the
router behave bit-for-bit like N isolated engines each seeing its own
slice of the traffic.

The one subtlety is IP fragmentation, the classic RSS pitfall: non-first
fragments carry no transport header, so a port-inclusive hash would tear
a fragmented connection across shards -- the fragments would land on one
shard (port-less hash) while the connection's unfragmented packets land
on another (five-tuple hash).  The engine's behaviour is *not* separable
across that tear: the first fragment diverts the whole connection to the
slow path, so the shard seeing only the unfragmented packets would keep
them on the fast path and the sharded system would stop matching the
unsharded one.  The default :attr:`ShardPolicy.FLOW` key therefore
hashes the canonical flow key with the ports cleared -- src/dst address
pair plus protocol -- which every packet of a connection *and* every
fragment of its datagrams agree on.  :attr:`ShardPolicy.TUPLE5` adds the
canonical port pair for finer balance on fragment-free workloads,
accepting exactly the RSS caveat above.

The hash is 64-bit FNV-1a over a canonical byte serialization: pure
integer arithmetic, so assignments are identical across platforms,
Python builds, and runs (no ``PYTHONHASHSEED`` dependence).
"""

from __future__ import annotations

import enum

from ..core.flowtable import fnv1a_64
from ..packet import (
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    FlowKey,
    TimedPacket,
    flow_key_of,
)

__all__ = ["ShardPolicy", "ShardRouter", "shard_key_bytes"]


class ShardPolicy(enum.Enum):
    """Which fields of the flow identity feed the shard hash."""

    FLOW = "flow"
    """Canonical address pair + protocol (fragmentation-safe; every
    packet that can ever share engine state lands on one shard)."""

    TUPLE5 = "tuple5"
    """Canonical five-tuple including ports (finer spreading; fragments
    still fall back to the address pair, so a connection that both
    fragments and sends whole packets may straddle two shards)."""


def shard_key_bytes(flow: FlowKey, *, with_ports: bool) -> bytes:
    """Serialize the direction-insensitive shard identity of a flow.

    Uses :meth:`FlowKey.canonical` so both directions serialize
    identically; the port pair is included only when the policy (and the
    packet -- fragments have no visible ports) allows.
    """
    canonical = flow.canonical()
    if with_ports:
        return (
            f"{canonical.src}|{canonical.dst}|{canonical.src_port}|"
            f"{canonical.dst_port}|{canonical.protocol}"
        ).encode()
    return f"{canonical.src}|{canonical.dst}|{canonical.protocol}".encode()


class ShardRouter:
    """Deterministic packet-to-shard assignment for shared-nothing engines."""

    def __init__(self, shards: int, policy: ShardPolicy = ShardPolicy.FLOW) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.policy = policy

    def shard_of_flow(self, flow: FlowKey, *, fragment: bool = False) -> int:
        """Shard index for a flow key (``fragment`` forces the port-less key)."""
        with_ports = self.policy is ShardPolicy.TUPLE5 and not fragment
        return fnv1a_64(shard_key_bytes(flow, with_ports=with_ports)) % self.shards

    def shard_of(self, packet: TimedPacket) -> int:
        """Shard index for one packet.

        Non-TCP/UDP and otherwise undecodable packets all go to shard 0:
        they carry no flow state, so placement only needs to be
        deterministic, and a fixed shard keeps their handling (and any
        alerts) in one place.
        """
        ip = packet.ip
        if ip.protocol not in (IP_PROTO_TCP, IP_PROTO_UDP):
            return 0
        if ip.is_fragment:
            # No transport header guaranteed; hash the address pair so
            # every fragment -- and, under FLOW, the rest of the
            # connection -- agrees on the shard.
            key = FlowKey(ip.src, ip.dst, 0, 0, ip.protocol)
            return self.shard_of_flow(key, fragment=True)
        try:
            flow = flow_key_of(ip)
        except ValueError:
            return 0
        return self.shard_of_flow(flow)
