"""Columnar ingest gate -- bulk decode must pay for itself, exactly.

Writes one mixed trace (benign background + catalog attacks) to a pcap
and drives it through both ingest modes:

- **throughput**: the columnar pipeline (``ColumnarPcapReader`` +
  ``process_column_batch``) must sustain at least ``MIN_SPEEDUP`` times
  the object pipeline's serial pps on the identical file, best-of-N
  interleaved so CPU jitter hits both arms alike;
- **equivalence**: the runtime equivalence digest of the columnar run
  must be byte-identical to the object run at 1, 2, and 4 workers
  (SerialRunner for the serial row, ParallelRunner above it).

The throughput arm always records the stdlib-only figure
(``use_numpy=False``) as well, so the mandatory fallback stays
measured, not just correct; without numpy the two columnar arms
coincide (the JSON keeps a stable schema either way -- ``bench_trend``
gates on missing non-timing keys).

The workload is calibrated to the paper's regime: mostly-clean benign
traffic (low single-digit diversion) with the catalog attacks blended
in.  Flow sizes are capped (``MAX_FLOW_BYTES``) because an uncapped
Pareto tail parks one or two megaflows in the diverted set -- once a
flow diverts, every later packet replays through the identical slow
path in *both* arms, so elephant-dominated traces measure the shared
slow path instead of the ingest difference this gate exists to bound.
Adversarial/diverted-heavy parity is covered separately and
exhaustively by ``tests/test_columnar_ingest.py``; the digest rows
below re-check parity on this very trace at every worker count.

The machine-readable results land in ``BENCH_ingest.json`` at the repo
root; CI uploads it as an artifact and feeds it to ``bench_trend.py``.
Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_ingest.py
"""

import json
import sys
import time
from pathlib import Path

from exp_common import (
    ATTACK_OFFSET,
    ATTACK_SIGNATURE,
    benign_trace,
    emit,
    gauntlet_payload,
    gauntlet_ruleset,
)
from repro.core import SplitDetectIPS
from repro.evasion import build_attack
from repro.pcap import numpy_available, read_column_batches, read_trace, write_trace
from repro.runtime import (
    EngineSpec,
    ParallelRunner,
    RunnerConfig,
    SerialRunner,
    iter_batches,
)
from repro.traffic import inject_attacks

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Columnar serial throughput must beat the object path by this factor.
MIN_SPEEDUP = 2.0

WORKER_COUNTS = (1, 2, 4)
BATCH_SIZE = 256
TRACE_FLOWS = 400
#: Bounded-Pareto cap on benign flow size (see module docs).
MAX_FLOW_BYTES = 60_000
BEST_OF = 5

ATTACKS = ("tcp_seg_8", "ip_frag_8", "stealth_segments")


def ingest_trace():
    """Benign background (capped flow sizes) + the three catalog attacks."""
    trace = benign_trace(TRACE_FLOWS, seed=2006, max_flow_bytes=MAX_FLOW_BYTES)
    attacks = [
        build_attack(
            name,
            gauntlet_payload(),
            signature_span=(ATTACK_OFFSET, len(ATTACK_SIGNATURE)),
            src=f"10.66.0.{i + 1}",
            seed=i,
        )
        for i, name in enumerate(ATTACKS)
    ]
    return inject_attacks(trace, attacks)


def _time_object(path) -> tuple[float, int, int]:
    """(seconds, packets, alerts) for one object-mode pass over *path*."""
    ips = SplitDetectIPS(gauntlet_ruleset())
    alerts = 0
    packets = 0
    start = time.perf_counter()
    for batch in iter_batches(read_trace(path), BATCH_SIZE):
        alerts += len(ips.process_batch(batch))
        packets += len(batch)
    return time.perf_counter() - start, packets, alerts


def _time_columnar(path, use_numpy) -> tuple[float, int, int]:
    """(seconds, packets, alerts) for one columnar pass over *path*."""
    ips = SplitDetectIPS(gauntlet_ruleset())
    alerts = 0
    packets = 0
    start = time.perf_counter()
    for batch in read_column_batches(
        path, batch_size=BATCH_SIZE, on_invalid="raise", use_numpy=use_numpy
    ):
        alerts += len(ips.process_column_batch(batch))
        packets += len(batch)
    return time.perf_counter() - start, packets, alerts


def run_ingest_gate(pcap_dir: Path) -> dict:
    trace = ingest_trace()
    path = pcap_dir / "ingest-gate.pcap"
    write_trace(path, trace)

    # Interleave the arms so a noisy-neighbour burst cannot flatter one
    # side: each round times object, columnar, and the stdlib-only
    # columnar fallback back to back.
    arms: dict[str, dict] = {"object": {}, "columnar": {}, "columnar_stdlib": {}}
    for arm in arms.values():
        arm["best"] = float("inf")
    for _ in range(BEST_OF):
        samples = {
            "object": _time_object(path),
            "columnar": _time_columnar(path, None),
            "columnar_stdlib": _time_columnar(path, False),
        }
        for name, (seconds, packets, alerts) in samples.items():
            arm = arms[name]
            arm["best"] = min(arm["best"], seconds)
            arm["packets"] = packets
            arm["alerts"] = alerts

    for name in ("columnar", "columnar_stdlib"):
        assert arms["object"]["alerts"] == arms[name]["alerts"] > 0, (
            "ingest modes disagree on alert count: "
            f"{arms['object']['alerts']} object vs {arms[name]['alerts']} {name}"
        )
        assert arms["object"]["packets"] == arms[name]["packets"]

    spec = EngineSpec(rules=gauntlet_ruleset())
    digests = []
    for workers in WORKER_COUNTS:
        if workers == 1:
            obj = SerialRunner(spec, shards=1).run(read_trace(path))
            col = SerialRunner(
                spec, shards=1, config=RunnerConfig(ingest="columnar")
            ).run_columnar(read_column_batches(path, batch_size=BATCH_SIZE))
        else:
            obj = ParallelRunner(spec, workers=workers).run(read_trace(path))
            col = ParallelRunner(
                spec, workers=workers, config=RunnerConfig(ingest="columnar")
            ).run_columnar(read_column_batches(path, batch_size=BATCH_SIZE))
        digests.append(
            {
                "workers": workers,
                "object_digest": obj.digest(),
                "columnar_digest": col.digest(),
                "packets": obj.packets,
            }
        )

    packets = arms["object"]["packets"]
    rows = {
        name: {
            "seconds": round(arm["best"], 4),
            "pps": round(packets / arm["best"], 1),
            "alerts": arm["alerts"],
        }
        for name, arm in arms.items()
    }
    return {
        "trace": {
            "flows": TRACE_FLOWS,
            "packets": packets,
            "max_flow_bytes": MAX_FLOW_BYTES,
            "attacks": list(ATTACKS),
        },
        "batch_size": BATCH_SIZE,
        "best_of": BEST_OF,
        "numpy": numpy_available(),
        "modes": rows,
        "speedup": round(rows["columnar"]["pps"] / rows["object"]["pps"], 2),
        "min_speedup_required": MIN_SPEEDUP,
        "digests": digests,
    }


def check_and_emit(result: dict, capfd=None) -> None:
    (REPO_ROOT / "BENCH_ingest.json").write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        f"trace: {result['trace']['packets']} packets "
        f"({result['trace']['flows']} flows), batch {result['batch_size']}, "
        f"numpy {'on' if result['numpy'] else 'off'}",
        f"{'mode':>16}  {'seconds':>8}  {'pps':>10}  alerts",
    ]
    for name, row in result["modes"].items():
        lines.append(
            f"{name:>16}  {row['seconds']:>8.3f}  {row['pps']:>10,.0f}  "
            f"{row['alerts']}"
        )
    lines.append(
        f"columnar speedup: {result['speedup']}x "
        f"(gate: >= {result['min_speedup_required']}x)"
    )
    for row in result["digests"]:
        lines.append(
            f"workers={row['workers']}: digest "
            f"{row['columnar_digest'][:12]} columnar == object "
            f"{'yes' if row['columnar_digest'] == row['object_digest'] else 'NO'}"
        )
    emit("ingest", lines, capfd)

    for row in result["digests"]:
        assert row["columnar_digest"] == row["object_digest"], (
            f"columnar ingest diverged from the object path at "
            f"{row['workers']} workers: {row['columnar_digest']} != "
            f"{row['object_digest']}"
        )
        assert row["packets"] == result["trace"]["packets"]
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"columnar ingest is only {result['speedup']}x the object path "
        f"(need >= {MIN_SPEEDUP}x)"
    )


def test_ingest_gate(tmp_path, capfd):
    """Columnar >= 2x object pps serial + digest equality at 1/2/4 workers.

    Emits BENCH_ingest.json."""
    check_and_emit(run_ingest_gate(tmp_path), capfd)


if __name__ == "__main__":
    import tempfile

    sys.path.insert(0, str(Path(__file__).parent))
    with tempfile.TemporaryDirectory() as tmp:
        check_and_emit(run_ingest_gate(Path(tmp)))
    print("ingest gate passed", file=sys.stderr)
