"""Benign application payload synthesis.

The evaluation's trace-dependent numbers (false piece matches, diversion
rates) depend on what benign bytes look like, so the generator produces a
realistic mixture: HTTP requests/responses with plausible headers and
HTML/binary bodies, SMTP dialogue, TLS-like high-entropy records, and SSH
interactive echo.  All draws are deterministic in the supplied RNG.
"""

from __future__ import annotations

import random

_HOSTS = ["example.com", "intranet.corp", "files.example.org", "www.shop.test"]
_PATHS = [
    "/", "/index.html", "/images/logo.gif", "/api/v1/items", "/search?q=network",
    "/static/app.js", "/downloads/report.pdf", "/cgi-bin/status",
]
_AGENTS = [
    "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",
    "Mozilla/5.0 (X11; U; Linux i686; en-US)",
    "Wget/1.10.2",
]
_WORDS = (
    "the quick brown fox jumps over a lazy dog while routers forward "
    "packets across autonomous systems and caches fill with pages"
).split()


def http_request(rng: random.Random) -> bytes:
    """One plausible HTTP/1.1 request."""
    lines = [
        f"GET {rng.choice(_PATHS)} HTTP/1.1",
        f"Host: {rng.choice(_HOSTS)}",
        f"User-Agent: {rng.choice(_AGENTS)}",
        "Accept: */*",
        "Connection: keep-alive",
        "",
        "",
    ]
    return "\r\n".join(lines).encode()


def html_body(rng: random.Random, size: int) -> bytes:
    """Word-salad HTML of roughly ``size`` bytes."""
    out = ["<html><body>"]
    length = len(out[0])
    while length < size:
        sentence = " ".join(rng.choices(_WORDS, k=rng.randrange(5, 12)))
        chunk = f"<p>{sentence}</p>"
        out.append(chunk)
        length += len(chunk)
    out.append("</body></html>")
    return "".join(out).encode()[:size]


def http_response(rng: random.Random, body_size: int) -> bytes:
    """An HTTP/1.1 200 response with an HTML body of ``body_size`` bytes."""
    body = html_body(rng, body_size)
    head = (
        "HTTP/1.1 200 OK\r\n"
        "Server: Apache/2.0.52\r\n"
        "Content-Type: text/html\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    ).encode()
    return head + body


def smtp_session(rng: random.Random) -> bytes:
    """One side of a short SMTP exchange."""
    user = rng.choice(["alice", "bob", "carol", "mallory"])
    lines = [
        "HELO client.example.com",
        f"MAIL FROM:<{user}@example.com>",
        "RCPT TO:<postmaster@example.org>",
        "DATA",
        "Subject: weekly report",
        "",
        " ".join(rng.choices(_WORDS, k=60)),
        ".",
        "QUIT",
    ]
    return "\r\n".join(lines).encode()


def binary_blob(rng: random.Random, size: int) -> bytes:
    """High-entropy bytes, the shape of TLS records or compressed data."""
    return rng.randbytes(size)


def interactive_echo(rng: random.Random, keystrokes: int) -> bytes:
    """SSH/telnet-style traffic: many tiny application writes."""
    return bytes(rng.randrange(97, 123) for _ in range(keystrokes))


def benign_payload(rng: random.Random, size: int) -> bytes:
    """A size-respecting draw from the benign application mixture."""
    kind = rng.random()
    if kind < 0.35:
        payload = http_response(rng, max(1, size - 120))
    elif kind < 0.55:
        payload = http_request(rng)
    elif kind < 0.70:
        payload = smtp_session(rng)
    elif kind < 0.90:
        payload = binary_blob(rng, size)
    else:
        payload = interactive_echo(rng, size)
    if len(payload) < size:
        payload = payload + html_body(rng, size - len(payload))
    return payload[:size]
