"""Background byte-frequency model for estimating piece commonness.

A split piece that happens to be a common substring of benign traffic
("HTTP/1.1", runs of zero bytes, ...) would fire the fast-path matcher
constantly and divert benign flows.  The splitter therefore scores
candidate pieces against a model of benign payload bytes and nudges split
points towards rarer content.

The model is a first-order (bigram) Markov model with add-one smoothing,
trained on sample payloads.  ``log_probability`` of a piece estimates how
likely it is to occur at a random stream position; ``expected_matches``
converts that into an expected false-match count per scanned byte.
"""

from __future__ import annotations

import math
from collections.abc import Iterable


class ByteFrequencyModel:
    """First-order Markov model over bytes, trained on benign payloads."""

    def __init__(self) -> None:
        self._unigram = [0] * 256
        self._bigram: dict[int, list[int]] = {}
        self._total = 0

    def train(self, payload: bytes) -> None:
        """Accumulate counts from one benign payload."""
        for byte in payload:
            self._unigram[byte] += 1
        self._total += len(payload)
        for a, b in zip(payload, payload[1:]):
            row = self._bigram.get(a)
            if row is None:
                row = [0] * 256
                self._bigram[a] = row
            row[b] += 1

    def train_many(self, payloads: Iterable[bytes]) -> None:
        for payload in payloads:
            self.train(payload)

    @property
    def trained_bytes(self) -> int:
        return self._total

    def _p_unigram(self, byte: int) -> float:
        return (self._unigram[byte] + 1) / (self._total + 256)

    def _p_bigram(self, a: int, b: int) -> float:
        row = self._bigram.get(a)
        if row is None:
            return self._p_unigram(b)
        row_total = sum(row)
        return (row[b] + 1) / (row_total + 256)

    def log_probability(self, piece: bytes) -> float:
        """Natural-log probability of ``piece`` at a given stream position."""
        if not piece:
            return 0.0
        logp = math.log(self._p_unigram(piece[0]))
        for a, b in zip(piece, piece[1:]):
            logp += math.log(self._p_bigram(a, b))
        return logp

    def expected_matches(self, piece: bytes, scanned_bytes: int) -> float:
        """Expected occurrences of ``piece`` in ``scanned_bytes`` of traffic."""
        return scanned_bytes * math.exp(self.log_probability(piece))


def uniform_model() -> ByteFrequencyModel:
    """An untrained model: every byte uniform (P(piece) = 256^-len)."""
    return ByteFrequencyModel()
