"""SD103: only picklable module-level data crosses worker boundaries.

Invariant (PR 3): the parallel runner ships work to shard processes via
``multiprocessing`` queues, so everything enqueued -- and the worker
entry point itself -- must survive pickling under both fork and spawn.
The blessed currency is plain data built from module-level dataclasses
(``runtime/spec.py``'s :class:`EngineSpec`, packet batches, the drain
sentinel).  Lambdas, functions defined inside another function
(closures), and bound methods are the classic spawn-start-method
breakage: they import-resolve on fork, then explode on macOS/Windows.

Flags, inside ``runtime/``:

- a ``lambda`` or locally defined function passed to ``.put(...)`` /
  ``.put_nowait(...)`` or any ``*_put_blocking`` helper;
- a ``Process(target=...)`` whose target is a lambda, a bound method
  (attribute access), or a locally defined function -- targets must be
  module-level functions;
- a ``lambda`` inside the ``args=`` tuple of a ``Process(...)`` call.
"""

from __future__ import annotations

import ast

from ..astutil import build_parents, enclosing_function
from ..engine import FileContext, Rule, register

__all__ = ["ShardSafetyRule"]

QUEUE_PUT_METHODS = frozenset({"put", "put_nowait"})


def _local_function_names(tree: ast.Module) -> frozenset[str]:
    """Names of functions defined inside another function (closures)."""
    parents = build_parents(tree)
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if enclosing_function(node, parents) is not None:
                names.add(node.name)
    return frozenset(names)


def _is_process_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "Process"
    if isinstance(func, ast.Attribute):
        return func.attr == "Process"
    return False


@register
class ShardSafetyRule(Rule):
    id = "SD103"
    title = "unpicklable value handed to a worker queue or entry point"
    default_paths = ("*/repro/runtime/*.py",)

    def check(self, ctx: FileContext) -> None:
        local_defs = _local_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_process_call(node):
                self._check_process(ctx, node, local_defs)
                continue
            func = node.func
            is_put = (
                isinstance(func, ast.Attribute) and func.attr in QUEUE_PUT_METHODS
            ) or (
                isinstance(func, (ast.Attribute, ast.Name))
                and "put_blocking" in (getattr(func, "attr", None) or getattr(func, "id", ""))
            )
            if is_put:
                for arg in node.args:
                    self._check_payload(ctx, arg, local_defs, via="queue put")

    def _check_payload(
        self,
        ctx: FileContext,
        arg: ast.expr,
        local_defs: frozenset[str],
        *,
        via: str,
    ) -> None:
        if isinstance(arg, ast.Lambda):
            ctx.report(
                self,
                arg,
                f"lambda sent through a {via}; queue payloads must be "
                "picklable module-level data (dataclasses from "
                "runtime/spec.py), and lambdas never pickle",
            )
        elif isinstance(arg, ast.Name) and arg.id in local_defs:
            ctx.report(
                self,
                arg,
                f"locally defined function {arg.id!r} sent through a {via}; "
                "closures do not survive the spawn start method -- move it "
                "to module level",
            )

    def _check_process(
        self, ctx: FileContext, node: ast.Call, local_defs: frozenset[str]
    ) -> None:
        for keyword in node.keywords:
            if keyword.arg == "target":
                value = keyword.value
                if isinstance(value, ast.Lambda):
                    ctx.report(
                        self,
                        value,
                        "Process target is a lambda; worker entry points "
                        "must be module-level functions so they pickle "
                        "under spawn",
                    )
                elif isinstance(value, ast.Attribute):
                    ctx.report(
                        self,
                        value,
                        "Process target looks like a bound method "
                        f"({ast.unparse(value)}); bound methods drag their "
                        "whole instance through pickle -- use a module-level "
                        "function taking plain data instead",
                    )
                elif isinstance(value, ast.Name) and value.id in local_defs:
                    ctx.report(
                        self,
                        value,
                        f"Process target {value.id!r} is defined inside a "
                        "function; closures break under the spawn start "
                        "method -- move it to module level",
                    )
            elif keyword.arg == "args" and isinstance(keyword.value, ast.Tuple):
                for element in keyword.value.elts:
                    self._check_payload(
                        ctx, element, local_defs, via="Process args tuple"
                    )
