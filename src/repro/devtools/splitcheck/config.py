"""``[tool.splitcheck]`` configuration loaded from ``pyproject.toml``.

Recognized keys::

    [tool.splitcheck]
    baseline = "splitcheck-baseline.json"   # relative to the config root
    exclude = ["*/tests/*"]                 # fnmatch globs, POSIX paths
    disable = ["SD105"]                     # rule ids turned off entirely

    [tool.splitcheck.rules.SD101]
    paths = ["*/repro/core/*.py"]           # replace the rule's default scope
    exclude = ["*/repro/core/generated.py"] # carve files back out of the scope
    severity = "warning"                    # downgrade from error

The config *root* is the directory holding ``pyproject.toml``, found by
walking up from the scan's starting point; finding paths are reported
relative to it, which is what keeps baseline fingerprints stable across
checkouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on the 3.10 CI leg
    try:
        import tomli as tomllib  # type: ignore[import-not-found, no-redef]
    except ModuleNotFoundError:
        tomllib = None  # type: ignore[assignment]

__all__ = ["Config", "RuleConfig", "find_root", "load_config"]


@dataclass(frozen=True)
class RuleConfig:
    """Per-rule overrides from ``[tool.splitcheck.rules.<ID>]``."""

    paths: tuple[str, ...] | None = None
    exclude: tuple[str, ...] | None = None
    severity: str | None = None


@dataclass
class Config:
    """The resolved analyzer configuration."""

    root: Path
    baseline: str | None = None
    exclude: tuple[str, ...] = ()
    disable: frozenset[str] = frozenset()
    rules: dict[str, RuleConfig] = field(default_factory=dict)

    @property
    def baseline_path(self) -> Path | None:
        if self.baseline is None:
            return None
        path = Path(self.baseline)
        return path if path.is_absolute() else self.root / path

    def rule_config(self, rule_id: str) -> RuleConfig:
        return self.rules.get(rule_id.upper(), RuleConfig())


def find_root(start: Path) -> Path:
    """Walk up from ``start`` to the nearest dir holding pyproject.toml."""
    start = start.resolve()
    current = start if start.is_dir() else start.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current


def load_config(root: Path | None = None, *, start: Path | None = None) -> Config:
    """Load ``[tool.splitcheck]``; missing file or table means defaults."""
    if root is None:
        root = find_root(start if start is not None else Path.cwd())
    root = root.resolve()
    pyproject = root / "pyproject.toml"
    table: dict[str, object] = {}
    if pyproject.is_file() and tomllib is not None:
        with pyproject.open("rb") as handle:
            data = tomllib.load(handle)
        tool = data.get("tool", {})
        if isinstance(tool, dict):
            raw = tool.get("splitcheck", {})
            if isinstance(raw, dict):
                table = raw

    baseline = table.get("baseline")
    if baseline is not None and not isinstance(baseline, str):
        raise ValueError("[tool.splitcheck] baseline must be a string path")

    exclude_raw = table.get("exclude", [])
    if not isinstance(exclude_raw, list) or not all(
        isinstance(item, str) for item in exclude_raw
    ):
        raise ValueError("[tool.splitcheck] exclude must be a list of globs")

    disable_raw = table.get("disable", [])
    if not isinstance(disable_raw, list) or not all(
        isinstance(item, str) for item in disable_raw
    ):
        raise ValueError("[tool.splitcheck] disable must be a list of rule ids")

    rules: dict[str, RuleConfig] = {}
    rules_raw = table.get("rules", {})
    if isinstance(rules_raw, dict):
        for rule_id, overrides in rules_raw.items():
            if not isinstance(overrides, dict):
                raise ValueError(
                    f"[tool.splitcheck.rules.{rule_id}] must be a table"
                )
            paths = overrides.get("paths")
            if paths is not None and (
                not isinstance(paths, list)
                or not all(isinstance(item, str) for item in paths)
            ):
                raise ValueError(
                    f"[tool.splitcheck.rules.{rule_id}] paths must be a glob list"
                )
            rule_exclude = overrides.get("exclude")
            if rule_exclude is not None and (
                not isinstance(rule_exclude, list)
                or not all(isinstance(item, str) for item in rule_exclude)
            ):
                raise ValueError(
                    f"[tool.splitcheck.rules.{rule_id}] exclude must be a glob list"
                )
            severity = overrides.get("severity")
            if severity is not None and severity not in ("error", "warning"):
                raise ValueError(
                    f"[tool.splitcheck.rules.{rule_id}] severity must be "
                    f"'error' or 'warning', got {severity!r}"
                )
            rules[rule_id.upper()] = RuleConfig(
                paths=tuple(paths) if paths is not None else None,
                exclude=tuple(rule_exclude) if rule_exclude is not None else None,
                severity=severity,
            )

    return Config(
        root=root,
        baseline=baseline,
        exclude=tuple(exclude_raw),
        disable=frozenset(rule_id.upper() for rule_id in disable_raw),
        rules=rules,
    )
