"""SD201: one telemetry namespace, documented, or it does not exist.

Invariant (PR 2/PR 6): every counter/gauge/histogram and every trace
span the system can emit is part of the operator contract.  A metric
name that drifts from the ``repro_<subsystem>_<name>`` convention,
collides with another instrument kind, or never makes it into the
DESIGN.md registry table is invisible to dashboards and to the
bench-trend gates; a documented row with no registration site is a
contract the code silently dropped.  This is a project rule: the
namespace is global, so no single file can check it.
"""

from __future__ import annotations

import re

from ..project import ProjectContext, ProjectRule, register

__all__ = ["MetricRegistryRule"]

METRIC_NAME_RE = re.compile(r"^repro_[a-z0-9]+(?:_[a-z0-9]+)+$")
SPAN_TOKEN_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: The leading ``repro_<subsystem>_`` segment must name a known
#: subsystem; a typo'd prefix forks the namespace silently.
KNOWN_SUBSYSTEMS = frozenset(
    {
        "conventional",
        "engine",
        "fastpath",
        "ingest",
        "match",
        "naive",
        "profile",
        "run",
        "runtime",
        "service",
        "slowpath",
        "telemetry",
    }
)


@register
class MetricRegistryRule(ProjectRule):
    id = "SD201"
    title = "metric/span name outside the documented telemetry registry"
    default_paths = ("*/repro/*.py",)

    def check_project(self, ctx: ProjectContext) -> None:
        design = ctx.graph.design
        #: name -> (kind, path, lineno, col) of the first registration.
        first_seen: dict[str, tuple[str, str, int, int]] = {}
        registered: dict[str, str] = {}
        emitted_spans: dict[tuple[str, str], tuple[str, int, int]] = {}

        for facts in ctx.facts():
            for metric in facts.metrics:
                name = metric["name"]
                kind = metric["kind"]
                site = (kind, facts.path, metric["lineno"], metric["col"])
                if not METRIC_NAME_RE.match(name):
                    ctx.report(
                        self,
                        facts.path,
                        metric["lineno"],
                        metric["col"],
                        f"metric name {name!r} does not match the "
                        "repro_<subsystem>_<name> convention",
                    )
                    continue
                subsystem = name.split("_")[1]
                if subsystem not in KNOWN_SUBSYSTEMS:
                    ctx.report(
                        self,
                        facts.path,
                        metric["lineno"],
                        metric["col"],
                        f"metric {name!r} uses unknown subsystem "
                        f"{subsystem!r}; known: "
                        f"{', '.join(sorted(KNOWN_SUBSYSTEMS))}",
                    )
                prior = first_seen.setdefault(name, site)
                if prior[0] != kind:
                    ctx.report(
                        self,
                        facts.path,
                        metric["lineno"],
                        metric["col"],
                        f"metric {name!r} registered as {kind} here but as "
                        f"{prior[0]} at {prior[1]}:{prior[2]}; one name, one "
                        "instrument kind",
                    )
                registered[name] = kind
                if (
                    design is not None
                    and not design.empty
                    and name not in design.metrics
                ):
                    ctx.report(
                        self,
                        facts.path,
                        metric["lineno"],
                        metric["col"],
                        f"metric {name!r} is not documented in the "
                        f"{design.path} telemetry registry table",
                    )
            for span in facts.spans:
                stage, event = span["stage"], span["event"]
                emitted_spans.setdefault(
                    (stage, event), (facts.path, span["lineno"], span["col"])
                )
                for label, token in (("stage", stage), ("event", event)):
                    if not SPAN_TOKEN_RE.match(token):
                        ctx.report(
                            self,
                            facts.path,
                            span["lineno"],
                            span["col"],
                            f"trace span {label} {token!r} does not match the "
                            "lowercase snake_case convention",
                        )
                if (
                    design is not None
                    and not design.empty
                    and (stage, event) not in design.spans
                ):
                    ctx.report(
                        self,
                        facts.path,
                        span["lineno"],
                        span["col"],
                        f"trace span {stage}:{event} is not documented in the "
                        f"{design.path} telemetry registry table",
                    )

        if design is None or design.empty or not ctx.complete:
            return  # reverse checks need the whole tree in view
        for name, (kind, lineno) in sorted(design.metrics.items()):
            if name not in registered:
                ctx.report(
                    self,
                    design.path,
                    lineno,
                    0,
                    f"documented metric {name!r} is registered nowhere in the "
                    "scanned tree (orphaned registry row)",
                )
            elif registered[name] != kind:
                ctx.report(
                    self,
                    design.path,
                    lineno,
                    0,
                    f"documented metric {name!r} says {kind} but the code "
                    f"registers a {registered[name]}",
                )
        for (stage, event), lineno in sorted(design.spans.items()):
            if (stage, event) not in emitted_spans:
                ctx.report(
                    self,
                    design.path,
                    lineno,
                    0,
                    f"documented trace span {stage}:{event} is emitted nowhere "
                    "in the scanned tree (orphaned registry row)",
                )
