"""Columnar ingest: object/columnar parity, edge cases, and wiring.

The tentpole contract is byte-identical results: the columnar reader +
``process_column_batch`` must produce the same alerts, stats, flow
state, and runtime digests as the object path on the same savefile --
with numpy on or off, on both supported linktypes, through every
runner.  Everything here compares the two pipelines over one file so a
single drifted field fails loudly.
"""

from __future__ import annotations

import io
import pickle
import struct

import pytest

from repro.cli import main
from repro.core import FastPathConfig, SplitDetectIPS
from repro.evasion import build_attack
from repro.metrics import run_split_detect, run_split_detect_columnar
from repro.packet import (
    TCP_ACK,
    TCP_SYN,
    TcpSegment,
    TimedPacket,
    build_tcp_packet,
)
from repro.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IP,
    ColumnarPcapReader,
    PcapFormatError,
    numpy_available,
    read_column_batches,
    read_records,
    read_trace,
    write_trace,
)
from repro.runtime import (
    EngineSpec,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ParallelRunner,
    Quarantine,
    RunnerConfig,
    SerialRunner,
    decode_packets,
    rebatch_columns,
)
from repro.traffic import TrafficProfile, generate_trace, inject_attacks

from helpers import ATTACK_SIGNATURE, SIGNATURE_OFFSET, attack_payload, attack_ruleset

NUMPY_MODES = [False, True] if numpy_available() else [False]


def mixed_trace() -> list[TimedPacket]:
    trace = generate_trace(TrafficProfile(flows=60), seed=2006)
    attacks = [
        build_attack(
            name,
            attack_payload(),
            signature_span=(SIGNATURE_OFFSET, len(ATTACK_SIGNATURE)),
            src=f"10.66.0.{i + 1}",
            seed=i,
        )
        for i, name in enumerate(["tcp_seg_8", "ip_frag_8", "stealth_segments"])
    ]
    return inject_attacks(trace, attacks)


@pytest.fixture(scope="module")
def mixed_pcaps(tmp_path_factory):
    """The mixed trace written once per linktype (shared: read-only)."""
    root = tmp_path_factory.mktemp("columnar")
    trace = mixed_trace()
    paths = {}
    for linktype in (LINKTYPE_RAW_IP, LINKTYPE_ETHERNET):
        path = root / f"mixed-{linktype}.pcap"
        write_trace(path, trace, linktype=linktype)
        paths[linktype] = path
    return paths


def run_object_engine(rules, path):
    ips = SplitDetectIPS(rules)
    alerts = []
    from repro.runtime import iter_batches

    for batch in iter_batches(read_trace(path), 256):
        alerts.extend(ips.process_batch(batch))
    return ips, alerts


def run_columnar_engine(rules, path, use_numpy, **ips_kw):
    ips = SplitDetectIPS(rules, **ips_kw)
    alerts = []
    for batch in read_column_batches(path, batch_size=256, use_numpy=use_numpy):
        assert not batch.quarantined
        alerts.extend(ips.process_column_batch(batch))
    return ips, alerts


class TestEngineParity:
    @pytest.mark.parametrize("linktype", [LINKTYPE_RAW_IP, LINKTYPE_ETHERNET])
    @pytest.mark.parametrize("use_numpy", NUMPY_MODES)
    def test_stats_alerts_and_state_identical(self, mixed_pcaps, linktype, use_numpy):
        path = mixed_pcaps[linktype]
        rules = attack_ruleset()
        obj, obj_alerts = run_object_engine(rules, path)
        col, col_alerts = run_columnar_engine(rules, path, use_numpy)
        assert vars(obj.stats) == vars(col.stats)
        assert obj_alerts == col_alerts
        assert obj._diverted == col._diverted
        assert obj.divert_reasons == col.divert_reasons
        assert obj.fast_path.packets_processed == col.fast_path.packets_processed
        assert obj.fast_path.bytes_scanned == col.fast_path.bytes_scanned
        obj_flows = {
            key: (state.expected_seq, state.last_seen)
            for key, state in obj.fast_path._flows.items()
        }
        col_flows = {
            key: (state.expected_seq, state.last_seen)
            for key, state in col.fast_path._flows.items()
        }
        assert obj_flows == col_flows

    @pytest.mark.parametrize("use_numpy", NUMPY_MODES)
    def test_table_backend_parity(self, mixed_pcaps, use_numpy):
        path = mixed_pcaps[LINKTYPE_RAW_IP]
        rules = attack_ruleset()
        config = FastPathConfig(state_backend="table")
        obj = SplitDetectIPS(rules, fast_config=config)
        obj_alerts = []
        from repro.runtime import iter_batches

        for batch in iter_batches(read_trace(path), 256):
            obj_alerts.extend(obj.process_batch(batch))
        col, col_alerts = run_columnar_engine(
            rules, path, use_numpy, fast_config=config
        )
        assert vars(obj.stats) == vars(col.stats)
        assert obj_alerts == col_alerts
        assert obj.divert_reasons == col.divert_reasons


@pytest.mark.skipif(not numpy_available(), reason="numpy not available")
class TestNumpyStdlibEquivalence:
    @pytest.mark.parametrize("linktype", [LINKTYPE_RAW_IP, LINKTYPE_ETHERNET])
    def test_columns_byte_identical(self, mixed_pcaps, linktype):
        path = mixed_pcaps[linktype]
        stdlib = list(read_column_batches(path, use_numpy=False))
        vector = list(read_column_batches(path, use_numpy=True))
        assert len(stdlib) == len(vector)
        for a, b in zip(stdlib, vector):
            assert a.columns() == b.columns()
            assert [repr(e) for e in a.quarantined] == [
                repr(e) for e in b.quarantined
            ]


class TestRunnerParity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_serial_digest_equal(self, mixed_pcaps, shards):
        path = mixed_pcaps[LINKTYPE_RAW_IP]
        spec = EngineSpec(rules=attack_ruleset())
        obj = SerialRunner(spec, shards=shards).run(read_trace(path))
        col = SerialRunner(
            spec, shards=shards, config=RunnerConfig(ingest="columnar")
        ).run_columnar(read_column_batches(path))
        assert obj.digest() == col.digest()
        assert obj.packets == col.packets

    def test_parallel_digest_equal(self, mixed_pcaps):
        path = mixed_pcaps[LINKTYPE_RAW_IP]
        spec = EngineSpec(rules=attack_ruleset())
        obj = ParallelRunner(spec, workers=2).run(read_trace(path))
        col = ParallelRunner(
            spec, workers=2, config=RunnerConfig(ingest="columnar")
        ).run_columnar(read_column_batches(path))
        assert obj.digest() == col.digest()

    def test_harness_reports_match(self, mixed_pcaps):
        path = mixed_pcaps[LINKTYPE_RAW_IP]
        rules = attack_ruleset()
        obj = run_split_detect(
            SplitDetectIPS(rules),
            read_trace(path),
            batch_size=256,
            evict_interval=5.0,
        )
        col = run_split_detect_columnar(
            SplitDetectIPS(rules),
            read_column_batches(path, batch_size=256, on_invalid="raise"),
            evict_interval=5.0,
        )
        assert obj.alerts == col.alerts
        assert obj.packets == col.packets
        assert obj.evictions == col.evictions
        assert obj.divert_reasons == col.divert_reasons
        assert obj.peak_flows == col.peak_flows
        assert obj.peak_state_bytes == col.peak_state_bytes


class TestEdgeCases:
    def test_truncated_final_frame_raises_in_both_modes(self, mixed_pcaps):
        data = mixed_pcaps[LINKTYPE_RAW_IP].read_bytes()[:-7]
        with pytest.raises(PcapFormatError, match="truncated record"):
            list(read_trace(io.BytesIO(data)))
        with pytest.raises(PcapFormatError, match="truncated record"):
            list(read_column_batches(io.BytesIO(data)))

    def test_snaplen_clipped_payload_quarantines_identically(self):
        packet = build_tcp_packet(
            "10.0.0.1", "10.0.0.2", TcpSegment(1234, 80, seq=1, payload=b"x" * 400)
        )
        raw = packet.serialize()
        clipped = raw[:-50]
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        record = struct.pack("<IIII", 1, 0, len(clipped), len(raw)) + clipped
        data = header + record

        object_q = Quarantine()
        packets = list(decode_packets(read_records(io.BytesIO(data)), object_q))
        assert packets == []

        batches = list(read_column_batches(io.BytesIO(data)))
        assert len(batches) == 1
        batch = batches[0]
        assert len(batch) == 0
        assert len(batch.quarantined) == 1
        columnar_cause = type(batch.quarantined[0]).__name__
        assert set(object_q.counts) == {columnar_cause}

        with pytest.raises(Exception) as exc_info:
            list(read_column_batches(io.BytesIO(data), on_invalid="raise"))
        assert type(exc_info.value).__name__ == columnar_cause

    def test_nanosecond_magic_decodes_identically(self):
        packet = build_tcp_packet(
            "10.0.0.1", "10.0.0.2", TcpSegment(1234, 80, seq=7, payload=b"hello")
        )
        raw = packet.serialize()
        header = struct.pack("<IHHiIII", 0xA1B23C4D, 2, 4, 0, 0, 65535, 101)
        record = struct.pack("<IIII", 10, 123_456_789, len(raw), len(raw)) + raw
        data = header + record

        (obj,) = read_trace(io.BytesIO(data))
        (batch,) = read_column_batches(io.BytesIO(data))
        assert len(batch) == 1
        assert batch.ts[0] == obj.timestamp == 10 + 123_456_789 / 1_000_000_000
        assert bytes(batch.payload_view(0)) == b"hello"

    def test_pure_acks_decode_and_process_identically(self, tmp_path):
        trace = []
        for i in range(8):
            flags = TCP_SYN if i == 0 else TCP_ACK
            packet = build_tcp_packet(
                "10.0.0.1", "10.0.0.2", TcpSegment(1234, 80, seq=100 + i, flags=flags)
            )
            trace.append(TimedPacket(float(i), packet))
        path = tmp_path / "acks.pcap"
        write_trace(path, trace)
        (batch,) = read_column_batches(path)
        assert len(batch) == 8
        assert all(tok == 1 for tok in batch.tok)
        assert all(length == 0 for length in batch.pay_len)
        rules = attack_ruleset()
        obj, obj_alerts = run_object_engine(rules, path)
        col, col_alerts = run_columnar_engine(rules, path, None)
        assert vars(obj.stats) == vars(col.stats)
        assert obj_alerts == col_alerts == []


class TestBatchMechanics:
    def test_select_compact_pickle_roundtrip(self, mixed_pcaps):
        (batch, *_rest) = read_column_batches(mixed_pcaps[LINKTYPE_RAW_IP])
        rows = [0, 3, 5, len(batch) - 1]
        compacted = batch.select(rows).compact()
        assert len(compacted.buffer) < len(batch.buffer)
        revived = pickle.loads(pickle.dumps(compacted))
        for new_row, old_row in enumerate(rows):
            assert revived.ts[new_row] == batch.ts[old_row]
            assert bytes(revived.payload_view(new_row)) == bytes(
                batch.payload_view(old_row)
            )
            original = batch.materialize(old_row)
            copied = revived.materialize(new_row)
            assert copied.ip.serialize() == original.ip.serialize()
            assert copied.timestamp == original.timestamp

    def test_rebatch_columns_splits_not_merges(self, mixed_pcaps):
        source = list(read_column_batches(mixed_pcaps[LINKTYPE_RAW_IP], batch_size=300))
        pieces = list(rebatch_columns(source, 100))
        assert all(len(piece) <= 100 for piece in pieces)
        assert sum(len(piece) for piece in pieces) == sum(len(b) for b in source)
        small = list(rebatch_columns(source, 4096))
        assert [len(b) for b in small] == [len(b) for b in source]

    def test_reader_rejects_bad_arguments(self, mixed_pcaps):
        path = mixed_pcaps[LINKTYPE_RAW_IP]
        with pytest.raises(ValueError, match="batch_size"):
            ColumnarPcapReader(path, batch_size=0)
        with pytest.raises(ValueError, match="on_invalid"):
            ColumnarPcapReader(path, on_invalid="explode")


class TestConfigAndCli:
    def test_runner_config_rejects_unknown_ingest(self):
        with pytest.raises(ValueError, match="ingest"):
            RunnerConfig(ingest="rowwise")

    def test_runner_config_rejects_columnar_faults(self):
        plan = FaultPlan(specs=(FaultSpec(kind=FaultKind.DECODE_ERROR, shard=0, at=1),))
        with pytest.raises(ValueError, match="columnar"):
            RunnerConfig(ingest="columnar", faults=plan)

    def test_run_columnar_rejects_faults(self):
        plan = FaultPlan(specs=(FaultSpec(kind=FaultKind.DECODE_ERROR, shard=0, at=1),))
        spec = EngineSpec(rules=attack_ruleset())
        runner = SerialRunner(spec, config=RunnerConfig(faults=plan))
        with pytest.raises(ValueError, match="columnar"):
            runner.run_columnar(iter(()))

    def test_cli_columnar_single_process(self, mixed_pcaps, capsys):
        path = str(mixed_pcaps[LINKTYPE_RAW_IP])
        assert main(["run", path, "--ingest", "columnar", "--no-telemetry"]) == 0
        out = capsys.readouterr().out
        assert "processed" in out

    def test_cli_columnar_requires_split_engine(self, mixed_pcaps, capsys):
        path = str(mixed_pcaps[LINKTYPE_RAW_IP])
        code = main(["run", path, "--ingest", "columnar", "--engine", "naive"])
        assert code == 2
        assert "columnar" in capsys.readouterr().err
