"""The Split-Detect slow path: conventional processing for diverted flows.

A diverted flow gets the full treatment a conventional IPS gives every
flow -- IP defragmentation, TCP reassembly with normalization, streaming
signature matching -- plus one extra matcher the paper's architecture
needs: a *suffix* matcher.  Because the bytes a flow sent before
diversion are gone, a signature whose prefix predates the diversion can
only be recognized by its remaining pieces; the suffix matcher watches
for any signature tail that begins at a piece boundary, and an occurrence
is accepted only if it starts close enough to the diversion point that
the missing prefix plausibly fits before it (``start < prefix_len``).
Suffixes belonging to fully-visible occurrences fail that test, so they
are reported by the full matcher alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..match import DualAutomaton, DualStreamMatcher
from ..packet import IP_PROTO_UDP, FlowKey, TimedPacket, decode_udp
from ..signatures import SplitRuleSet
from ..streams import OverlapPolicy, StreamEvent, StreamNormalizer
from ..telemetry import NULL_REGISTRY, NULL_TRACER
from .alerts import Alert, AlertKind
from .matching import SignatureMatcher, StreamMatchState

_AMBIGUITY_EVENTS = frozenset(
    {
        StreamEvent.INCONSISTENT_OVERLAP,
        StreamEvent.INCONSISTENT_FRAGMENT_OVERLAP,
        StreamEvent.TTL_ANOMALY,
    }
)


@dataclass(frozen=True)
class _SuffixEntry:
    """One signature tail starting at a piece boundary."""

    sid: int
    msg: str
    prefix_len: int
    pattern: bytes
    dst_port: int | None
    protocol_number: int = 6

    def applies_to_flow(self, flow: FlowKey) -> bool:
        return flow.protocol == self.protocol_number and (
            self.dst_port is None or self.dst_port == flow.dst_port
        )


@dataclass(frozen=True)
class _MatcherSet:
    """One compiled generation of the slow path's matchers.

    Hot reload (:meth:`SlowPath.swap_rules`) replaces the *current* set
    in one assignment, but every flow whose streaming state was created
    under an older set keeps a reference to that set: a
    :class:`~repro.core.matching.StreamMatchState` embeds automaton
    state ids that only mean something against the automaton that built
    them, so swapping the matcher under a live stream would corrupt its
    open prefixes.  In-flight diverted flows therefore finish under the
    rules they started with; flows diverted after the swap compile-in
    the new set.  The old set is garbage-collected when its last flow
    closes.
    """

    matcher: SignatureMatcher
    suffixes: tuple[_SuffixEntry, ...]
    suffix_automaton: DualAutomaton | None
    max_prefix_len: int
    generation: int = 0


def _compile_matcher_set(split_rules: SplitRuleSet, generation: int = 0) -> _MatcherSet:
    """Build the full + suffix matchers for one signature-set generation."""
    signatures = (
        [split.signature for split in split_rules.splits.values()]
        + list(split_rules.unsplittable)
        + list(split_rules.udp_whole)
    )
    signatures.sort(key=lambda s: s.sid)
    suffixes: list[_SuffixEntry] = []
    for sid in sorted(split_rules.splits):
        split = split_rules.splits[sid]
        for piece in split.pieces[1:]:  # j >= 1; j = 0 is the full pattern
            suffixes.append(
                _SuffixEntry(
                    sid=sid,
                    msg=split.signature.msg,
                    prefix_len=piece.offset,
                    pattern=split.signature.pattern[piece.offset :],
                    dst_port=split.signature.dst_port,
                    protocol_number=split.signature.protocol_number,
                )
            )
    suffix_sigs = {sid: split_rules.splits[sid].signature for sid in split_rules.splits}
    suffix_automaton = (
        DualAutomaton(
            [(e.pattern, suffix_sigs[e.sid].nocase) for e in suffixes]
        )
        if suffixes
        else None
    )
    return _MatcherSet(
        matcher=SignatureMatcher(signatures),
        suffixes=tuple(suffixes),
        suffix_automaton=suffix_automaton,
        max_prefix_len=max((e.prefix_len for e in suffixes), default=0),
        generation=generation,
    )


class SlowPath:
    """Conventional reassembly + matching, for diverted flows only."""

    def __init__(
        self,
        split_rules: SplitRuleSet,
        *,
        policy: OverlapPolicy = OverlapPolicy.BSD,
        telemetry=None,
        tracer=None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._trace_enabled = self.tracer.enabled
        self.split_rules = split_rules
        self.normalizer = StreamNormalizer(policy=policy)
        self._current = _compile_matcher_set(split_rules)
        self._matchers: dict[
            FlowKey, tuple[_MatcherSet, StreamMatchState, DualStreamMatcher | None]
        ] = {}
        self.packets_processed = 0
        self.bytes_normalized = 0
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        tel = self.telemetry
        self._tel_on = tel.enabled
        self._c_packets = tel.counter(
            "repro_slowpath_packets_total", "Packets through the slow path"
        )
        self._c_bytes = tel.counter(
            "repro_slowpath_normalized_bytes_total",
            "Reassembled-and-normalized stream bytes matched on the slow path",
        )
        self._c_evictions = tel.counter(
            "repro_slowpath_evictions_total", "Idle diverted flows reclaimed"
        )
        self._g_flows = tel.gauge(
            "repro_slowpath_active_flows",
            "Diverted flows holding reassembly state",
            merge="sum",
        )
        self._g_state = tel.gauge(
            "repro_slowpath_state_bytes",
            "Reassembly + matcher state bytes (the 10%-state claim's denominator "
            "is the conventional equivalent of this for every flow)",
            merge="sum",
        )
        self._g_buffered = tel.gauge(
            "repro_slowpath_buffered_bytes",
            "Out-of-order bytes currently buffered by reassembly",
            merge="sum",
        )

    # -- accounting ------------------------------------------------------

    def state_bytes(self) -> int:
        """Reassembly state plus per-direction matcher state."""
        per_matcher = DualStreamMatcher.STATE_BYTES
        matcher_bytes = sum(
            per_matcher * (1 if suffix is None else 2)
            for _, _, suffix in self._matchers.values()
        )
        return self.normalizer.state_bytes() + matcher_bytes

    @property
    def rules_generation(self) -> int:
        """How many :meth:`swap_rules` reloads this path has absorbed."""
        return self._current.generation

    def swap_rules(self, split_rules: SplitRuleSet) -> None:
        """Hot-swap the compiled signature set without dropping flow state.

        The new :class:`_MatcherSet` becomes current in one assignment;
        reassembly state (the normalizer) and every in-flight flow's
        streaming matcher are untouched.  Flows whose matcher state was
        created under an older set keep matching under that set until
        they close -- their stream state is only meaningful against the
        automata that created it -- while flows arriving after the swap
        (and all whole-datagram UDP matching, which is stateless per
        datagram) use the new rules immediately.
        """
        self.split_rules = split_rules
        self._current = _compile_matcher_set(
            split_rules, generation=self._current.generation + 1
        )

    @property
    def active_flows(self) -> int:
        """Diverted flows currently holding reassembly state."""
        return self.normalizer.active_flows

    def hint_stream_start(self, direction: FlowKey, first_byte_seq: int) -> None:
        """Anchor a diverted direction's stream at the fast path's expected
        sequence number (see ``StreamNormalizer.hint_stream_start``)."""
        self.normalizer.hint_stream_start(direction, first_byte_seq)

    def refresh_telemetry(self) -> None:
        """Sample the O(flows) gauges (called before a snapshot, not inline)."""
        if not self._tel_on:
            return
        self._g_flows.set(self.active_flows)
        self._g_state.set(self.state_bytes())
        self._g_buffered.set(self.normalizer.buffered_bytes)

    # -- packet intake ------------------------------------------------------

    def process(self, packet: TimedPacket) -> list[Alert]:
        """Run one diverted-flow packet through the conventional pipeline."""
        self.packets_processed += 1
        if self._tel_on:
            self._c_packets.inc()
        output = self.normalizer.process(packet)
        alerts: list[Alert] = []
        flow = output.flow
        if self._trace_enabled and flow is not None:
            # Diverted flows are always sampled (the divert span pinned
            # their trace id), so the reassembly record survives 1/N.
            self.tracer.record(
                flow,
                "slow",
                "reassemble",
                packet.timestamp,
                chunks=len(output.chunks),
                bytes=sum(len(chunk) for chunk in output.chunks),
                events=len(output.events),
                closed=bool(output.flow_closed),
            )
        if flow is not None:
            for record in output.events:
                if record.event in _AMBIGUITY_EVENTS:
                    alerts.append(
                        Alert(
                            kind=AlertKind.AMBIGUITY,
                            flow=flow,
                            msg=str(record),
                            stream_offset=record.offset,
                            timestamp=packet.timestamp,
                        )
                    )
            for chunk in output.chunks:
                alerts.extend(self._match(flow, chunk, packet.timestamp))
            if output.datagram is not None:
                alerts.extend(
                    self._match_datagram(flow, output.datagram, packet.timestamp)
                )
            if output.flow_closed:
                self._forget(flow)
        return alerts

    def _match_datagram(self, flow: FlowKey, ip, timestamp: float) -> list[Alert]:
        """Whole-datagram matching for defragmented non-TCP traffic (UDP).

        Stateless per datagram, so it always uses the *current* matcher
        set -- a hot reload applies to the very next datagram."""
        matcher = self._current.matcher
        if ip.protocol != IP_PROTO_UDP or matcher.empty:
            return []
        try:
            payload = decode_udp(ip).payload
        except Exception:
            return []
        if not payload:
            return []
        self.bytes_normalized += len(payload)
        if self._tel_on:
            self._c_bytes.inc(len(payload))
        return [
            Alert(
                kind=AlertKind.SIGNATURE,
                flow=flow,
                sid=hit.signature.sid,
                msg=hit.signature.msg,
                stream_offset=hit.end_offset,
                timestamp=timestamp,
            )
            for hit in matcher.match_buffer(payload, flow)
        ]

    def _match(self, flow: FlowKey, chunk: bytes, timestamp: float) -> list[Alert]:
        self.bytes_normalized += len(chunk)
        if self._tel_on:
            self._c_bytes.inc(len(chunk))
        entry = self._matchers.get(flow)
        if entry is None:
            # New stream state binds to the *current* matcher set; it
            # keeps that set for its whole life (see _MatcherSet).
            matchers = self._current
            if matchers.matcher.empty:
                return []
            full = matchers.matcher.new_stream_state()
            suffix = (
                DualStreamMatcher(matchers.suffix_automaton)
                if matchers.suffix_automaton is not None
                else None
            )
            self._matchers[flow] = (matchers, full, suffix)
        else:
            matchers, full, suffix = entry
        alerts: list[Alert] = []
        for hit in matchers.matcher.match_chunk(full, chunk, flow):
            alerts.append(
                Alert(
                    kind=AlertKind.SIGNATURE,
                    flow=flow,
                    sid=hit.signature.sid,
                    msg=hit.signature.msg,
                    stream_offset=hit.end_offset,
                    timestamp=timestamp,
                )
            )
        if suffix is not None:
            for match in suffix.feed(chunk):
                tail = matchers.suffixes[match.pattern_id]
                if not tail.applies_to_flow(flow):
                    continue
                start = match.end_offset - len(tail.pattern)
                if start >= tail.prefix_len:
                    # A fully-visible occurrence; the full matcher owns it.
                    continue
                alerts.append(
                    Alert(
                        kind=AlertKind.PARTIAL_SIGNATURE,
                        flow=flow,
                        sid=tail.sid,
                        msg=tail.msg,
                        stream_offset=match.end_offset,
                        timestamp=timestamp,
                    )
                )
        return alerts

    def safe_to_release(self, flow: FlowKey) -> bool:
        """True when handing this flow back to the fast path cannot hide a
        signature occurrence.

        Two conditions, both checked at the current stream position:

        1. No pattern prefix (full or suffix automaton) is open at either
           direction's stream tail -- otherwise an occurrence could
           straddle the release point, its head scanned here and its tail
           never stream-matched again.
        2. No out-of-order bytes are buffered -- buffered-but-undelivered
           bytes have not been matched, and releasing would drop them
           while the victim still eventually reads them.
        """
        if self.normalizer.buffered_bytes_for(flow) > 0:
            return False
        for direction in (flow, flow.reversed()):
            entry = self._matchers.get(direction)
            if entry is None:
                continue
            matchers, full, suffix = entry
            if full.open_prefix_len > 0:
                return False
            if suffix is not None and suffix.open_prefix_len > 0:
                # An open suffix prefix only matters while its would-be
                # occurrence could still start before the diversion origin
                # plus the longest missing prefix; far past that point the
                # anchoring filter would discard the match anyway.  The
                # bound is the *flow's own* matcher set's -- the set its
                # suffix automaton was compiled from.
                start = suffix.stream_offset - suffix.open_prefix_len
                if start < matchers.max_prefix_len:
                    return False
        return True

    def release_flow(self, flow: FlowKey) -> dict[FlowKey, int]:
        """Drop all slow-path state for a flow returning to the fast path.

        Returns each direction's next expected sequence number so the
        caller can seed the fast-path monitor -- the hand-off must
        preserve stream position in *both* directions of travel, or a
        later re-diversion anchors at the wrong place and discards
        legitimate out-of-order data as pre-stream retransmission.
        """
        positions = self.normalizer.stream_positions(flow)
        self.normalizer.release(flow)
        self._forget(flow)
        return positions

    def _forget(self, flow: FlowKey) -> None:
        self._matchers.pop(flow, None)
        self._matchers.pop(flow.reversed(), None)

    def evict_idle(self, now: float) -> int:
        """Expire idle flows in the underlying normalizer."""
        evicted = self.normalizer.evict_idle(now)
        if evicted:
            live = self.normalizer.live_flows()
            for key in list(self._matchers):
                if key.canonical() not in live:
                    del self._matchers[key]
            if self._tel_on:
                self._c_evictions.inc(evicted)
        return evicted
