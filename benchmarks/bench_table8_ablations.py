"""Table 8 (ablation) -- which design choices carry the result.

Each variant removes one mechanism and is measured on two axes: evasion
coverage over the catalog (does detection survive?) and benign cost
(diverted flows / slow-path bytes).  Shape to reproduce:

- dropping the small-packet rule loses the tiny-segment attack class;
- dropping fragment diversion loses the IP-fragmentation class;
- dropping the order monitor keeps catalog coverage (per-packet piece
  matching is order-oblivious) -- it exists as defense-in-depth for
  ambiguity games -- and actually diverts *less* benign traffic;
- disabling probation keeps coverage but triples slow-path byte load,
  which is why flow reinstatement matters for the 10% processing story.
"""

import sys

from exp_common import attack_packets, benign_trace, bundled_rules, detected, emit, gauntlet_ruleset, run_engine
from repro.core import FastPathConfig, SplitDetectIPS
from repro.evasion import STRATEGIES
from repro.metrics import run_split_detect

VARIANTS: dict[str, dict] = {
    "full": {},
    "no-tiny-rule": {"fast_config": FastPathConfig(check_tiny=False)},
    "no-order-monitor": {"fast_config": FastPathConfig(check_order=False)},
    "no-fragment-divert": {"fast_config": FastPathConfig(divert_fragments=False)},
    "no-whole-scan": {"fast_config": FastPathConfig(scan_whole_signatures=False)},
    "no-probation": {"probation_packets": 0},
}


def evaluate_variant(kwargs: dict) -> tuple[int, float, int]:
    """(catalog hits, benign slow-byte fraction, benign diversions)."""
    hits = 0
    for name in sorted(STRATEGIES):
        engine = SplitDetectIPS(gauntlet_ruleset(), **kwargs)
        if detected(run_engine(engine, attack_packets(name))):
            hits += 1
    benign = benign_trace(flows=200, seed=41)
    ips = SplitDetectIPS(bundled_rules(), **kwargs)
    report = run_split_detect(ips, benign, sample_every=500)
    return hits, report.diversion_byte_fraction, report.diverted_flows


def table_rows() -> tuple[list[str], dict]:
    lines = [
        f"{'variant':<20} {'catalog hits':>12} {'benign slow%':>12} {'benign div':>10}"
    ]
    results = {}
    for name, kwargs in VARIANTS.items():
        hits, slow_frac, diversions = evaluate_variant(kwargs)
        results[name] = (hits, slow_frac, diversions)
        lines.append(
            f"{name:<20} {hits:>8}/{len(STRATEGIES):<3} {slow_frac:>12.1%} {diversions:>10}"
        )
    return lines, results


def test_table8_ablations(benchmark, capfd):
    def full_variant():
        return evaluate_variant(VARIANTS["full"])

    hits, _slow, _div = benchmark.pedantic(full_variant, rounds=1, iterations=1)
    assert hits == len(STRATEGIES)
    lines, results = table_rows()
    emit("table8_ablations", lines, capfd)
    # The full system covers everything.
    assert results["full"][0] == len(STRATEGIES)
    # Removing the fragment rule must lose fragmentation attacks.
    assert results["no-fragment-divert"][0] < len(STRATEGIES)
    # Probation is a cost optimization, not a detection mechanism:
    assert results["no-probation"][0] == len(STRATEGIES)
    assert results["no-probation"][1] >= results["full"][1]


if __name__ == "__main__":
    print("\n".join(table_rows()[0]), file=sys.stderr)
