"""Gates for the external static-analysis tools (mypy, ruff).

The container used for tier-1 testing does not ship mypy or ruff, so
these tests skip cleanly when the tools are absent; the CI
``static-analysis`` job installs pinned versions and runs them for
real.  The splitcheck analyzer itself is pure stdlib and is covered
unconditionally by ``tests/test_splitcheck.py``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tool_available(module: str) -> bool:
    try:
        __import__(module)
    except ImportError:
        return False
    return True


@pytest.mark.skipif(not _tool_available("mypy"), reason="mypy not installed")
def test_mypy_clean() -> None:
    """``mypy`` (configured in pyproject.toml) must pass over the package."""
    result = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(not _tool_available("ruff"), reason="ruff not installed")
def test_ruff_clean() -> None:
    """``ruff check src`` must pass with the pyproject.toml rule set."""
    result = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_py_typed_marker_registered() -> None:
    """The py.typed marker must exist and be listed in package-data."""
    marker = REPO_ROOT / "src" / "repro" / "py.typed"
    assert marker.exists()
    pyproject = (REPO_ROOT / "pyproject.toml").read_text()
    assert "py.typed" in pyproject
