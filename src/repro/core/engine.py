"""The Split-Detect IPS: fast path by default, slow path after diversion.

Routing rules:

- IP fragments always go to the slow path (the fast path never
  defragments); the first fragment additionally diverts its flow so the
  rest of the connection follows.
- A flow, once diverted, stays on the slow path until the connection
  closes there (RST, FIN in both directions, or idle eviction).
- A diversion feeds the *diverting packet itself* into the slow path, so
  the slow path's reassembled view starts with the packet that carried
  the anomaly or piece.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from time import perf_counter_ns

from ..packet import (
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    FlowKey,
    TimedPacket,
    decode_tcp,
    decode_udp,
    flow_key_of,
)
from ..packet.batch import PacketBatch, ip_u32_to_str
from ..signatures import ByteFrequencyModel, RuleSet, SplitPolicy, split_ruleset
from ..streams import FLOW_OVERHEAD_BYTES, OverlapPolicy
from ..telemetry import NULL_REGISTRY, NULL_TRACER, StageProfiler
from .alerts import Alert, AlertKind, Diversion, DivertReason
from .conventional import PROVISIONED_BUFFER_PER_FLOW
from .fastpath import FastPath, FastPathConfig
from .slowpath import SlowPath

#: Diversion reasons eligible for probation (return to the fast path after
#: a clean interval).  Fragmented flows stay diverted -- fragments keep
#: arriving and the fast path cannot handle them; tiny-segment flows are
#: typically interactive and would bounce straight back.  (A whole-signature
#: hit confirmed in one packet no longer diverts at all: the fast-path
#: alert is already the final verdict.)
PROBATION_REASONS = frozenset(
    {
        DivertReason.PIECE_MATCH,
        DivertReason.OUT_OF_ORDER,
        DivertReason.RETRANSMISSION,
    }
)


@dataclass
class EngineStats:
    """Counters the evaluation harness reads after a run."""

    packets_total: int = 0
    fast_packets: int = 0
    slow_packets: int = 0
    fast_bytes_scanned: int = 0
    slow_bytes_normalized: int = 0
    diversions: int = 0
    alerts: int = 0
    decode_errors: int = 0
    """Packets whose transport header failed to decode: counted and
    passed unexamined on the fast path rather than crashing the engine
    (the engine-level face of the malformed-input quarantine)."""


class SplitDetectIPS:
    """The paper's system: split signatures, divert anomalies, confirm slowly."""

    def __init__(
        self,
        rules: RuleSet,
        *,
        split_policy: SplitPolicy | None = None,
        fast_config: FastPathConfig | None = None,
        overlap_policy: OverlapPolicy = OverlapPolicy.BSD,
        model: ByteFrequencyModel | None = None,
        probation_packets: int = 8,
        slow_capacity_flows: int | None = None,
        ensemble_policies: tuple[OverlapPolicy, ...] = (),
        telemetry=None,
        tracer=None,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._trace_enabled = self.tracer.enabled
        self.rules = rules
        self._split_policy = split_policy
        self._model = model
        self.rules_generation = 0
        """Completed :meth:`swap_rules` reloads (0 = the construction set)."""
        self.split_rules = split_ruleset(rules, split_policy, model)
        self.fast_path = FastPath(
            self.split_rules, fast_config, telemetry=self.telemetry, tracer=self.tracer
        )
        self.slow_path = SlowPath(
            self.split_rules,
            policy=overlap_policy,
            telemetry=self.telemetry,
            tracer=self.tracer,
        )
        self.ensemble_paths: list[SlowPath] = [
            SlowPath(self.split_rules, policy=policy)
            for policy in ensemble_policies
            if policy is not overlap_policy
        ]
        """Target-based ensemble: extra slow paths reassembling each diverted
        flow under additional overlap policies, so a signature is confirmed
        at SIGNATURE level no matter which policy the victim runs (a lone
        slow path would still flag the overlap as AMBIGUITY, but could not
        name the signature when its own policy reconstructs the decoy).
        Costs one reassembly state set per extra policy -- the trade
        Shankar-Paxson active mapping avoids by learning host policies."""
        self.probation_packets = probation_packets
        """After a probation-eligible diversion, how many clean slow-path
        packets before the flow is handed back to the fast path.  The
        hand-off only happens when ``SlowPath.safe_to_release`` certifies
        that no signature occurrence can straddle it.  0 disables
        probation (every diversion is then permanent, as in the ablation)."""

        self.slow_capacity_flows = slow_capacity_flows
        """Provisioned slow-path flow capacity.  When full, further
        diversions run *fail-open*: the flow stays on the fast path
        (pieces and whole patterns still scanned per packet) and a
        RESOURCE alert records the degraded coverage.  None = unbounded
        (the evaluation default)."""

        self._diverted: set[FlowKey] = set()
        self._probation: dict[FlowKey, int] = {}
        self.diversions: list[Diversion] = []
        self.divert_reasons: Counter[DivertReason] = Counter()
        self.reinstated_flows = 0
        self.overload_refusals = 0
        self._refused: set[FlowKey] = set()
        self.stats = EngineStats()
        # Telemetry instruments, bound once.  Per-packet sites guard on
        # ``_tel_on`` so the disabled engine never reads the clock.
        tel = self.telemetry
        self._tel_on = tel.enabled
        # Self-profiler: top-N slowest flows per stage, fed from the same
        # timing deltas the stage histogram consumes (so it costs nothing
        # extra when telemetry is off, and one heap comparison when on).
        self.profiler: StageProfiler | None = StageProfiler() if tel.enabled else None
        stages = tel.histogram(
            "repro_engine_stage_latency_ns",
            "Per-stage wall-clock latency (monotonic ns): decode = routing up "
            "to the path decision; fast_path = monitor + per-packet scan; "
            "ac_prescan = the per-batch automaton sweep; slow_path = "
            "reassembly + stream matching for one diverted packet",
            ("stage",),
        )
        self._stage_decode = stages.labels(stage="decode")
        self._stage_fast = stages.labels(stage="fast_path")
        self._stage_prescan = stages.labels(stage="ac_prescan")
        self._stage_slow = stages.labels(stage="slow_path")
        packets = tel.counter(
            "repro_engine_packets_total", "Packets routed, by path", ("path",)
        )
        self._c_packets_fast = packets.labels(path="fast")
        self._c_packets_slow = packets.labels(path="slow")
        bytes_total = tel.counter(
            "repro_engine_bytes_total",
            "Payload bytes examined, by path (fast = scanned per packet, "
            "slow = normalized stream bytes)",
            ("path",),
        )
        self._c_bytes_fast = bytes_total.labels(path="fast")
        self._c_bytes_slow = bytes_total.labels(path="slow")
        diversions = tel.counter(
            "repro_engine_diversions_total",
            "Flows handed to the slow path, by reason",
            ("reason",),
        )
        self._c_diversions = {
            reason: diversions.labels(reason=reason.value) for reason in DivertReason
        }
        alerts_total = tel.counter(
            "repro_engine_alerts_total", "Alerts raised, by emitting path", ("path",)
        )
        self._c_alerts_fast = alerts_total.labels(path="fast")
        self._c_alerts_slow = alerts_total.labels(path="slow")
        self._c_decode_errors = tel.counter(
            "repro_engine_decode_errors_total",
            "Packets whose transport decode failed (passed unexamined), "
            "by exception class",
            ("cause",),
        )
        self._c_ingest_rows = tel.counter(
            "repro_ingest_rows_total",
            "Rows consumed from columnar packet batches",
        )
        self._c_ingest_batches = tel.counter(
            "repro_ingest_batches_total",
            "Columnar packet batches processed",
        )
        self._c_ingest_materialized = tel.counter(
            "repro_ingest_materialized_total",
            "Columnar rows materialized into packet objects, by trigger",
            ("cause",),
        )
        self._ingest_mat_labels: dict[str, object] = {}
        # Columnar flow interning: numeric five-tuple -> (FlowKey,
        # canonical), so string formatting is paid once per flow.  Bounded
        # like the batch-module caches: cleared wholesale at capacity.
        self._flow_intern: dict[
            tuple[int, int, int, int, int], tuple[FlowKey, FlowKey]
        ] = {}
        self._c_reinstated = tel.counter(
            "repro_engine_reinstated_flows_total",
            "Diverted flows returned to the fast path after clean probation",
        )
        self._c_refusals = tel.counter(
            "repro_engine_overload_refusals_total",
            "Diversions refused because the slow path was at capacity",
        )
        evictions = tel.counter(
            "repro_engine_evictions_total",
            "Idle per-flow records reclaimed by evict_idle, by path",
            ("path",),
        )
        self._c_evict_fast = evictions.labels(path="fast")
        self._c_evict_slow = evictions.labels(path="slow")
        self._g_diverted = tel.gauge(
            "repro_engine_diverted_flows",
            "Flows currently routed to the slow path",
            merge="sum",
        )
        self._g_state = tel.gauge(
            "repro_engine_state_bytes",
            "Per-flow state held right now, by component",
            ("component",),
            merge="sum",
        )
        self._g_div_frac = tel.gauge(
            "repro_engine_diversion_byte_fraction",
            "Fraction of examined payload bytes that went to the slow path "
            "(the abstract's 'very little traffic is diverted' claim)",
            merge="max",
        )
        self._g_ratio = tel.gauge(
            "repro_engine_state_bytes_ratio",
            "Peak Split-Detect state over the conventional-IPS state for the "
            "same flows (the abstract's ~10%-state claim; lower is better)",
            merge="max",
        )
        self._tel_peak_state = 0
        self._tel_peak_conventional = 0

    # -- accounting ------------------------------------------------------

    def state_bytes(self) -> int:
        """Total per-flow state across both paths (and ensemble replicas)."""
        return (
            self.fast_path.state_bytes()
            + self.slow_path.state_bytes()
            + sum(path.state_bytes() for path in self.ensemble_paths)
        )

    @property
    def diverted_flow_count(self) -> int:
        """Flows currently routed to the slow path."""
        return len(self._diverted)

    def is_diverted(self, flow: FlowKey) -> bool:
        """True when the flow is currently on the slow path."""
        return flow.canonical() in self._diverted

    # -- hot reload --------------------------------------------------------

    def swap_rules(
        self,
        rules: RuleSet,
        *,
        split_policy: SplitPolicy | None = None,
        model: ByteFrequencyModel | None = None,
        timestamp: float = 0.0,
    ) -> None:
        """Atomically swap the compiled signature set, keeping all flow state.

        The contract the service layer's hot reload depends on:

        - the fast path's per-flow monitor entries (expected seq, idle
          clocks, sketch counters) survive; only its piece automaton and
          the small-packet threshold are recompiled;
        - the slow path's reassembly state survives, and every in-flight
          diverted flow keeps matching under the matcher set its stream
          state was created with (automaton state ids are not
          transferable between compilations) -- new diversions and
          stateless datagram matching use the new set immediately;
        - diversion bookkeeping (``_diverted``, probation, refusals) is
          untouched, so no diverted flow is dropped by a reload.

        Atomic with respect to packets: the engine is driven from one
        thread (one shard), and callers apply swaps between batches --
        never mid-:meth:`process_batch`, whose prescan hit lists index
        the pre-swap entry table.  ``split_policy`` / ``model`` default
        to the values the engine was constructed with.
        """
        if split_policy is not None:
            self._split_policy = split_policy
        if model is not None:
            self._model = model
        self.rules = rules
        self.split_rules = split_ruleset(rules, self._split_policy, self._model)
        self.fast_path.swap_rules(self.split_rules)
        self.slow_path.swap_rules(self.split_rules)
        for path in self.ensemble_paths:
            path.swap_rules(self.split_rules)
        self.rules_generation += 1
        if self._tel_on:
            self.telemetry.counter(
                "repro_engine_rule_reloads_total",
                "Hot signature-set swaps absorbed without dropping flow state",
            ).inc()
            self.telemetry.journal.record(
                "engine",
                "rules_swapped",
                ts=timestamp,
                generation=self.rules_generation,
                signatures=len(rules),
                diverted_flows=len(self._diverted),
            )
        if self._trace_enabled:
            self.tracer.record_system(
                "engine",
                "rules_swapped",
                ts=timestamp,
                generation=self.rules_generation,
                signatures=len(rules),
            )

    # -- packet intake ------------------------------------------------------

    def process(
        self,
        packet: TimedPacket,
        _prescanned: list[tuple[int, int]] | None = None,
    ) -> list[Alert]:
        """Route one packet through the fast or slow path; returns alerts."""
        tel_on = self._tel_on
        t0 = perf_counter_ns() if tel_on else 0
        self.stats.packets_total += 1
        ip = packet.ip
        if ip.protocol in (IP_PROTO_TCP, IP_PROTO_UDP) and ip.is_fragment:
            if not self.fast_path.config.divert_fragments:
                # Ablation variant: an IPS that ignores fragmentation lets
                # fragments through unexamined (and is evadable by them).
                self.stats.fast_packets += 1
                if tel_on:
                    self._c_packets_fast.inc()
                return []
            # All fragments are slow-path work; the first one names the flow.
            if ip.fragment_offset == 0:
                try:
                    frag_flow = flow_key_of(ip)
                except ValueError:
                    frag_flow = None
                if frag_flow is not None:
                    if self._trace_enabled:
                        self.tracer.record(
                            frag_flow,
                            "decode",
                            "fragment",
                            packet.timestamp,
                            force=True,
                        )
                    if not self._divert(
                        frag_flow, DivertReason.IP_FRAGMENT, packet.timestamp
                    ):
                        # Overloaded: fail open, fragment passes unexamined.
                        self.stats.fast_packets += 1
                        if tel_on:
                            self._c_packets_fast.inc()
                        return self._refusal_alert(frag_flow, packet.timestamp)
                    # Hand the monitor's stream positions to the slow path,
                    # exactly as in the TCP divert path -- the SYN (or any
                    # in-order data) already passed through the fast path.
                    for direction in (frag_flow, frag_flow.reversed()):
                        expected = self.fast_path.expected_seq(direction)
                        if expected is not None:
                            self._hint_all(direction, expected)
                    self.fast_path.forget_flow(frag_flow)
            if tel_on:
                self._stage_decode.observe(perf_counter_ns() - t0)
            return self._to_slow(packet)
        flow: FlowKey | None = None
        if ip.protocol in (IP_PROTO_TCP, IP_PROTO_UDP):
            try:
                flow = flow_key_of(ip)
            except ValueError:
                flow = None
        if flow is not None and flow.canonical() in self._diverted:
            if self._trace_enabled:
                self.tracer.record(flow, "decode", "slow_route", packet.timestamp)
            if tel_on:
                self._stage_decode.observe(perf_counter_ns() - t0)
            return self._to_slow(packet, flow)
        self.stats.fast_packets += 1
        if self._trace_enabled and flow is not None:
            self.tracer.record(flow, "decode", "fast_route", packet.timestamp)
        before = self.fast_path.bytes_scanned
        if tel_on:
            t1 = perf_counter_ns()
            self._stage_decode.observe(t1 - t0)
            result = self.fast_path.process(packet, _prescanned)
            fast_ns = perf_counter_ns() - t1
            self._stage_fast.observe(fast_ns)
            if self.profiler is not None and flow is not None:
                self.profiler.note("fast_path", str(flow.canonical()), fast_ns)
            self._c_packets_fast.inc()
            self._c_bytes_fast.inc(self.fast_path.bytes_scanned - before)
        else:
            result = self.fast_path.process(packet, _prescanned)
        self.stats.fast_bytes_scanned += self.fast_path.bytes_scanned - before
        if result.decode_error is not None:
            self.stats.decode_errors += 1
            if tel_on:
                self._c_decode_errors.labels(cause=result.decode_error).inc()
        alerts = list(result.alerts)
        self.stats.alerts += len(alerts)
        if alerts and tel_on:
            self._c_alerts_fast.inc(len(alerts))
        if alerts and self._trace_enabled and flow is not None:
            for alert in alerts:
                self.tracer.record(
                    flow,
                    "fast",
                    "alert",
                    packet.timestamp,
                    force=True,
                    kind=alert.kind.value,
                    sid=alert.sid,
                )
        if result.divert is not None and flow is not None:
            if not self._divert(flow, result.divert, packet.timestamp, result.detail):
                alerts.extend(self._refusal_alert(flow, packet.timestamp))
                return alerts
            # Anchor the slow path's streams where in-order delivery stopped,
            # so reordered data below the diverting packet is not mistaken
            # for retransmission.
            if result.flow_expected_seq is not None:
                self._hint_all(flow, result.flow_expected_seq)
            reverse_expected = self.fast_path.expected_seq(flow.reversed())
            if reverse_expected is not None:
                self._hint_all(flow.reversed(), reverse_expected)
            self.fast_path.forget_flow(flow)
            alerts.extend(self._to_slow(packet, flow))
        return alerts

    def process_batch(self, packets: list[TimedPacket]) -> list[Alert]:
        """Route a batch of packets; returns all alerts in packet order.

        Packet-for-packet identical to calling :meth:`process` in order.
        The batch exists because the fast path's piece scan is stateless
        per packet: every payload that would reach it is scanned up front
        in one :meth:`~repro.match.DualAutomaton.scan_many` sweep, and
        the per-packet routing then consumes the precomputed matches.
        A flow that diverts mid-batch merely wastes its remaining
        prescans; one reinstated mid-batch falls back to inline scans.
        """
        packets = list(packets)
        prescanned: list[list[tuple[int, int]] | None] | None = None
        if self.fast_path.automaton is not None and len(packets) > 1:
            tel_on = self._tel_on
            t0 = perf_counter_ns() if tel_on else 0
            payloads: list[bytes] = []
            slots: list[int] = []
            for index, packet in enumerate(packets):
                payload = self._scan_candidate(packet)
                if payload:
                    payloads.append(payload)
                    slots.append(index)
            if payloads:
                prescanned = [None] * len(packets)
                for slot, hits in zip(slots, self.fast_path.prescan(payloads)):
                    prescanned[slot] = hits
            if tel_on:
                self._stage_prescan.observe(perf_counter_ns() - t0)
        alerts: list[Alert] = []
        if prescanned is None:
            for packet in packets:
                alerts.extend(self.process(packet))
        else:
            for packet, hits in zip(packets, prescanned):
                alerts.extend(self.process(packet, hits))
        return alerts

    def process_column_batch(self, batch: PacketBatch) -> list[Alert]:
        """Route one columnar batch; returns all alerts in row order.

        Row-for-row identical to materializing every row and calling
        :meth:`process` (the tested oracle: equal equivalence digests).
        The strategy is *flag-or-replicate*: each row is classified with
        side-effect-free column reads (``StateBackend.peek``, precomputed
        prescan hits); rows that are provably clean are committed inline
        by :meth:`FastPath.process_columns` with the exact side effects
        of the object path, and every other row -- fragment, diverted,
        transport-undecodable, TTL/tiny/order anomaly, automaton hit --
        is materialized into a real packet and replayed through
        :meth:`process`, which stays the single authority for diversion,
        alerting, and error accounting.  Flagging a clean row is merely
        slow; committing a dirty row is impossible because the commit
        path handles only the checks' complement.

        Telemetry deltas: clean rows are not stage-profiled per row (the
        prescan stage is; materialized rows profile via the object
        path), and the monitor-occupancy gauge samples once per batch.
        Both are outside the equivalence digest.
        """
        fast = self.fast_path
        stats = self.stats
        tel_on = self._tel_on
        trace_enabled = self._trace_enabled
        tracer = self.tracer
        diverted = self._diverted
        n = len(batch)
        proto_col = batch.proto
        frag_col = batch.fragflags
        paylen_col = batch.pay_len
        payoff_col = batch.pay_off
        tok_col = batch.tok
        ts_col = batch.ts
        flags_col = batch.tcpflags
        ttl_col = batch.ttl
        seq_col = batch.seq
        view = batch.view
        automaton = fast.automaton
        intern_flow = self._intern_flow
        process_columns = fast.process_columns
        hits_by_row: list[list[tuple[int, int]] | None] = [None] * n
        flows_by_row: list[tuple[FlowKey, FlowKey] | None] = [None] * n
        if automaton is not None and n > 1:
            t0 = perf_counter_ns() if tel_on else 0
            off_col = batch.off
            caplen_col = batch.caplen
            # Batch sweep: one C-speed substring search per pattern over
            # the batch's record range.  Rows are in capture order, so
            # the range encloses every payload view, and a clear range
            # proves every candidate scan below would find nothing (see
            # ``DualAutomaton.range_clear``).  The common benign batch
            # then skips the per-payload prescan entirely; only the
            # scan-counter accounting is replayed, keeping matcher
            # counters identical to scanning each payload.
            if automaton.range_clear(
                batch.buffer, off_col[0], off_col[n - 1] + caplen_col[n - 1]
            ):
                count = 0
                nbytes = 0
                for row in range(n):
                    p = proto_col[row]
                    if (
                        (p == IP_PROTO_TCP or p == IP_PROTO_UDP)
                        and not (frag_col[row] & 0x3FFF)
                        and tok_col[row]
                        and paylen_col[row]
                    ):
                        keys = flows_by_row[row] = intern_flow(batch, row)
                        if keys[1] not in diverted:
                            hits_by_row[row] = []
                            count += 1
                            nbytes += paylen_col[row]
                automaton.account_prefilter_skips(count, nbytes)
            else:
                # The same stateless prescan sweep process_batch runs,
                # minus the per-packet bytes copies: candidate payloads
                # go to the automaton as views over the shared capture
                # buffer.  Flow keys interned while gathering are kept
                # for the row loop.
                payloads: list[memoryview] = []
                slots: list[int] = []
                for row in range(n):
                    p = proto_col[row]
                    if (
                        (p == IP_PROTO_TCP or p == IP_PROTO_UDP)
                        and not (frag_col[row] & 0x3FFF)
                        and tok_col[row]
                        and paylen_col[row]
                    ):
                        keys = flows_by_row[row] = intern_flow(batch, row)
                        if keys[1] not in diverted:
                            start = payoff_col[row]
                            payloads.append(view[start : start + paylen_col[row]])
                            slots.append(row)
                if payloads:
                    for slot, hits in zip(slots, fast.prescan_views(payloads)):
                        hits_by_row[slot] = hits
            if tel_on:
                self._stage_prescan.observe(perf_counter_ns() - t0)
        alerts: list[Alert] = []
        # Per-batch stats accumulators: the object path mutates the same
        # fields inside process(), so these locals are folded in once
        # after the loop (pure counters -- nothing reads them mid-batch).
        packets_add = 0
        fast_add = 0
        fast_bytes_add = 0
        for row in range(n):
            p = proto_col[row]
            if p != IP_PROTO_TCP and p != IP_PROTO_UDP:
                # process() waves non-TCP/UDP packets through untouched;
                # commit the counters without building the object.
                packets_add += 1
                fast_add += 1
                fast.commit_passthrough_row()
                if tel_on:
                    self._c_packets_fast.inc()
                continue
            if frag_col[row] & 0x3FFF:
                cause = "fragment"
            else:
                flow, canonical = flows_by_row[row] or intern_flow(batch, row)
                if canonical in diverted:
                    cause = "diverted"
                else:
                    hits = hits_by_row[row]
                    plen = paylen_col[row]
                    if (
                        hits is None
                        and automaton is not None
                        and tok_col[row]
                        and plen
                    ):
                        # Row not covered by the sweep (single-row batch,
                        # or its flow was diverted then reinstated
                        # mid-batch): scan here, as _scan would inline.
                        start = payoff_col[row]
                        hits = automaton.find_all(
                            bytes(view[start : start + plen])
                        )
                        hits_by_row[row] = hits
                    verdict = process_columns(
                        flow,
                        hits,
                        p,
                        tok_col[row],
                        plen,
                        flags_col[row],
                        ttl_col[row],
                        seq_col[row],
                        ts_col[row],
                    )
                    if verdict is None:
                        packets_add += 1
                        fast_add += 1
                        if plen and automaton is not None:
                            fast_bytes_add += plen
                            if tel_on:
                                self._c_bytes_fast.inc(plen)
                        if tel_on:
                            self._c_packets_fast.inc()
                        if trace_enabled:
                            tracer.record(flow, "decode", "fast_route", ts_col[row])
                        continue
                    cause = verdict
            alerts.extend(self.process(batch.materialize(row), hits_by_row[row]))
            if tel_on:
                self._ingest_materialized(cause).inc()
        stats.packets_total += packets_add
        stats.fast_packets += fast_add
        stats.fast_bytes_scanned += fast_bytes_add
        fast.finish_column_batch()
        if tel_on:
            self._c_ingest_rows.inc(n)
            self._c_ingest_batches.inc()
        return alerts

    def _intern_flow(self, batch: PacketBatch, row: int) -> tuple[FlowKey, FlowKey]:
        """(flow, canonical) for a row, interned by numeric five-tuple."""
        key = (
            batch.src[row],
            batch.dst[row],
            batch.sport[row],
            batch.dport[row],
            batch.proto[row],
        )
        entry = self._flow_intern.get(key)
        if entry is None:
            if len(self._flow_intern) >= 65536:
                self._flow_intern.clear()
            flow = FlowKey(
                ip_u32_to_str(key[0]), ip_u32_to_str(key[1]), key[2], key[3], key[4]
            )
            entry = (flow, flow.canonical())
            self._flow_intern[key] = entry
        return entry

    def _ingest_materialized(self, cause: str):
        handle = self._ingest_mat_labels.get(cause)
        if handle is None:
            handle = self._c_ingest_materialized.labels(cause=cause)
            self._ingest_mat_labels[cause] = handle
        return handle

    def _scan_candidate(self, packet: TimedPacket) -> bytes | None:
        """The payload the fast path would scan for this packet, if any."""
        ip = packet.ip
        if ip.protocol not in (IP_PROTO_TCP, IP_PROTO_UDP) or ip.is_fragment:
            return None
        try:
            flow = flow_key_of(ip)
        except ValueError:
            return None
        if flow.canonical() in self._diverted:
            return None
        try:
            if ip.protocol == IP_PROTO_TCP:
                return decode_tcp(ip).payload or None
            return decode_udp(ip).payload or None
        except Exception:
            return None

    def _hint_all(self, direction: FlowKey, expected: int) -> None:
        self.slow_path.hint_stream_start(direction, expected)
        for path in self.ensemble_paths:
            path.hint_stream_start(direction, expected)

    def _refusal_alert(self, flow: FlowKey, timestamp: float) -> list[Alert]:
        """One RESOURCE alert per refused flow, so overload is visible."""
        canonical = flow.canonical()
        if canonical in self._refused:
            return []
        self._refused.add(canonical)
        return [
            Alert(
                kind=AlertKind.RESOURCE,
                flow=flow,
                msg=f"slow path at capacity ({self.slow_capacity_flows} flows); fail-open",
                timestamp=timestamp,
                path="fast",
            )
        ]

    def _divert(
        self, flow: FlowKey, reason: DivertReason, timestamp: float, detail: str = ""
    ) -> bool:
        """Move a flow to the slow path; False when refused for capacity."""
        canonical = flow.canonical()
        if canonical in self._diverted:
            return True
        if (
            self.slow_capacity_flows is not None
            and self.slow_path.active_flows >= self.slow_capacity_flows
        ):
            self.overload_refusals += 1
            if self._tel_on:
                self._c_refusals.inc()
                self.telemetry.journal.record(
                    "engine",
                    "overload_refusal",
                    ts=timestamp,
                    flow=str(flow),
                    capacity=self.slow_capacity_flows,
                )
            if self._trace_enabled:
                self.tracer.record(
                    flow,
                    "engine",
                    "divert_refused",
                    timestamp,
                    force=True,
                    reason=reason.value,
                    capacity=self.slow_capacity_flows,
                )
            return False
        self._diverted.add(canonical)
        if self.probation_packets and reason in PROBATION_REASONS:
            self._probation[canonical] = self.probation_packets
        self.diversions.append(
            Diversion(flow=flow, reason=reason, timestamp=timestamp, detail=detail)
        )
        self.divert_reasons[reason] += 1
        self.stats.diversions += 1
        if self._tel_on:
            self._c_diversions[reason].inc()
            self._g_diverted.set(len(self._diverted))
            self.telemetry.journal.record(
                "engine",
                "divert",
                ts=timestamp,
                flow=str(flow),
                reason=reason.value,
                detail=detail,
            )
        if self._trace_enabled:
            # force=True pins the trace id: every subsequent slow-path
            # span of this flow is recorded regardless of --trace-sample.
            self.tracer.record(
                flow,
                "engine",
                "divert",
                timestamp,
                force=True,
                reason=reason.value,
                detail=detail,
            )
        return True

    def _to_slow(self, packet: TimedPacket, flow: FlowKey | None = None) -> list[Alert]:
        tel_on = self._tel_on
        t0 = perf_counter_ns() if tel_on else 0
        self.stats.slow_packets += 1
        before = self.slow_path.bytes_normalized
        alerts = self.slow_path.process(packet)
        self.stats.slow_bytes_normalized += self.slow_path.bytes_normalized - before
        if self.ensemble_paths:
            seen = {(a.kind, a.sid, a.flow, a.stream_offset) for a in alerts}
            for path in self.ensemble_paths:
                for alert in path.process(packet):
                    key = (alert.kind, alert.sid, alert.flow, alert.stream_offset)
                    if key not in seen:
                        seen.add(key)
                        alerts.append(alert)
        self.stats.alerts += len(alerts)
        if tel_on:
            slow_ns = perf_counter_ns() - t0
            self._stage_slow.observe(slow_ns)
            if self.profiler is not None and flow is not None:
                self.profiler.note("slow_path", str(flow.canonical()), slow_ns)
            self._c_packets_slow.inc()
            self._c_bytes_slow.inc(self.slow_path.bytes_normalized - before)
            if alerts:
                self._c_alerts_slow.inc(len(alerts))
        if alerts and self._trace_enabled:
            for alert in alerts:
                alert_flow = alert.flow if alert.flow is not None else flow
                if alert_flow is None:
                    continue
                self.tracer.record(
                    alert_flow,
                    "slow",
                    "confirm",
                    packet.timestamp,
                    force=True,
                    kind=alert.kind.value,
                    sid=alert.sid,
                )
        if flow is not None:
            canonical = flow.canonical()
            if canonical in self._diverted and canonical not in self.slow_path.normalizer.live_flows():
                # The connection ended on the slow path; a future flow with
                # the same five-tuple starts fresh on the fast path.
                self._diverted.discard(canonical)
                self._probation.pop(canonical, None)
                if tel_on:
                    self._g_diverted.set(len(self._diverted))
                if self._trace_enabled:
                    self.tracer.record(
                        canonical, "engine", "flow_closed", packet.timestamp
                    )
            elif canonical in self._probation:
                self._tick_probation(canonical, alerts, packet.timestamp)
        return alerts

    def _tick_probation(
        self, canonical: FlowKey, alerts: list[Alert], timestamp: float
    ) -> None:
        """Count down a diverted flow's probation; reinstate when clean.

        Any alert makes the diversion permanent.  Reinstatement waits for
        the slow path to certify that no pattern occurrence straddles the
        hand-off (open automaton prefixes, buffered out-of-order bytes).
        """
        if any(a.flow is not None and a.flow.canonical() == canonical for a in alerts):
            del self._probation[canonical]
            return
        self._probation[canonical] -= 1
        if self._probation[canonical] > 0:
            return
        if not self.slow_path.safe_to_release(canonical):
            return  # re-check on the next packet
        del self._probation[canonical]
        self._diverted.discard(canonical)
        for direction, expected in self.slow_path.release_flow(canonical).items():
            # Stamp the seed with the releasing packet's clock: a seeded
            # entry with last_seen=0 would look ancient and be reclaimed
            # by the very next idle sweep.
            self.fast_path.seed_flow(direction, expected, now=timestamp)
        for path in self.ensemble_paths:
            path.release_flow(canonical)
        self.reinstated_flows += 1
        if self._tel_on:
            self._c_reinstated.inc()
            self._g_diverted.set(len(self._diverted))
            self.telemetry.journal.record(
                "engine", "reinstate", flow=str(canonical)
            )
        if self._trace_enabled:
            self.tracer.record(canonical, "engine", "reinstate", timestamp)

    def evict_idle(self, now: float) -> int:
        """Expire idle state everywhere (long-run housekeeping).

        Besides the slow-path reassembly state this must prune every
        engine-side per-flow record -- ``_diverted``, ``_probation``,
        ``_refused`` -- and the fast path's monitor entries, all of which
        otherwise grow without bound across long runs as flows die
        without a clean close.

        Returns the number of evicted per-flow entries (slow-path flows
        plus fast-path monitor directions; ensemble replicas track the
        same flows as the primary slow path and are not double-counted),
        so callers -- and the occupancy gauges -- can reconcile
        evictions against population.
        """
        slow_evicted = self.slow_path.evict_idle(now)
        for path in self.ensemble_paths:
            path.evict_idle(now)
        fast_evicted = self.fast_path.evict_idle(
            now, self.slow_path.normalizer.idle_timeout
        )
        slow_live = self.slow_path.normalizer.live_flows()
        self._diverted &= slow_live
        for canonical in [k for k in self._probation if k not in slow_live]:
            del self._probation[canonical]
        # A refused (fail-open) flow lives on the fast path; it is dead
        # once neither path tracks it, and forgetting it re-arms the
        # once-per-flow RESOURCE alert for any future five-tuple reuse.
        self._refused &= slow_live | self.fast_path.live_flows()
        if self._tel_on:
            if fast_evicted:
                self._c_evict_fast.inc(fast_evicted)
            if slow_evicted:
                self._c_evict_slow.inc(slow_evicted)
            self._g_diverted.set(len(self._diverted))
            if fast_evicted or slow_evicted:
                self.telemetry.journal.record(
                    "engine",
                    "evict_sweep",
                    ts=now,
                    fast_evicted=fast_evicted,
                    slow_evicted=slow_evicted,
                )
        if self._trace_enabled and (fast_evicted or slow_evicted):
            self.tracer.record_system(
                "engine",
                "evict_sweep",
                ts=now,
                fast_evicted=fast_evicted,
                slow_evicted=slow_evicted,
            )
        return fast_evicted + slow_evicted

    # -- telemetry -------------------------------------------------------

    def refresh_telemetry(self) -> None:
        """Sample every point-in-time gauge across both paths.

        The O(flows) gauges (state bytes, occupancy) are sampled here
        rather than per packet; the run harness calls this at its state
        sampling points and once more before exporting.  The state-ratio
        gauge compares *peak-so-far* Split-Detect state against what a
        conventional IPS would hold for the same flow population
        (flow record + provisioned reassembly buffer per flow) -- peaks,
        because provisioning is what the paper's 10%-state claim is
        about.
        """
        if not self._tel_on:
            return
        if self.profiler is not None:
            self.profiler.publish(self.telemetry)
        self.fast_path.refresh_telemetry()
        self.slow_path.refresh_telemetry()
        fast_state = self.fast_path.state_bytes()
        slow_state = self.slow_path.state_bytes()
        ensemble_state = sum(path.state_bytes() for path in self.ensemble_paths)
        self._g_state.labels(component="fast").set(fast_state)
        self._g_state.labels(component="slow").set(slow_state)
        self._g_state.labels(component="ensemble").set(ensemble_state)
        self._g_diverted.set(len(self._diverted))
        total_bytes = self.stats.fast_bytes_scanned + self.stats.slow_bytes_normalized
        self._g_div_frac.set(
            self.stats.slow_bytes_normalized / total_bytes if total_bytes else 0.0
        )
        # Conventional equivalent: the fast path tracks per-direction
        # entries, a conventional flow record covers both directions.
        flow_equiv = (self.fast_path.tracked_flows + 1) // 2 + self.slow_path.active_flows
        conventional = flow_equiv * (FLOW_OVERHEAD_BYTES + PROVISIONED_BUFFER_PER_FLOW)
        state = fast_state + slow_state + ensemble_state
        self._tel_peak_state = max(self._tel_peak_state, state)
        self._tel_peak_conventional = max(self._tel_peak_conventional, conventional)
        if self._tel_peak_conventional:
            self._g_ratio.set(self._tel_peak_state / self._tel_peak_conventional)

    def telemetry_snapshot(self) -> dict:
        """Refresh the gauges, then return the registry snapshot."""
        self.refresh_telemetry()
        return self.telemetry.snapshot()
