"""Control messages: out-of-band commands riding the packet stream.

The service layer (and any long-lived driver) needs to change a running
pipeline without tearing it down -- the canonical case is a hot
signature-set reload.  A :class:`ControlMessage` is a small picklable
command that travels *in between* packet batches: runners accept them
interleaved with packets in the input stream, flush the batch under
construction, and deliver the message to every shard at exactly that
stream position.  Workers apply it via
:meth:`~repro.runtime.worker.ShardProcessor.control` before consuming
the next batch, so a swap is atomic with respect to batch boundaries on
every shard.

Ops understood by :meth:`ShardProcessor.control`:

- ``"reload"`` -- payload is a dict with ``rules`` (a
  :class:`~repro.signatures.RuleSet`) and optional ``split_policy`` /
  ``model`` overrides; the shard's engine swaps its compiled matchers in
  place, keeping all flow state (see
  :meth:`~repro.core.SplitDetectIPS.swap_rules`).

Unknown ops are ignored (forward compatibility), but counted in the
shard's telemetry so a typo'd op is visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ControlMessage"]


@dataclass(frozen=True)
class ControlMessage:
    """One out-of-band command for every shard of a running pipeline."""

    op: str
    """Command name (``"reload"``)."""

    payload: Any = None
    """Op-specific data; must be picklable (it crosses worker queues)."""

    seq: int = 0
    """Issuer-side sequence number, echoed into telemetry/journal events
    so an operator can correlate "reload #3" across shards."""

    fields: dict[str, Any] = field(default_factory=dict)
    """Free-form annotations recorded alongside the journal event
    (e.g. the rules file path that produced a reload)."""
