"""Shim for legacy editable installs on environments without the wheel package."""

from setuptools import setup

setup()
