"""Figure 10 (extension) -- sizing the fixed fast-path flow table.

The paper's state argument assumes the fast path's 24-byte records live
in a fixed SRAM table.  This sweep asks the hardware designer's question:
how small can the table get before evictions degrade the monitor?
Detection of the catalog attack is asserted at *every* size (piece
matching is stateless), so the quantity that degrades is only the
eviction rate -- the fraction of packets whose flow lost its
expected-sequence context.
"""

import sys

from exp_common import (
    ATTACK_OFFSET,
    ATTACK_SIGNATURE,
    benign_trace,
    detected,
    emit,
    gauntlet_payload,
)
from repro.core import FastPathConfig, SplitDetectIPS
from repro.evasion import build_attack
from repro.signatures import RuleSet, Signature, load_bundled_rules
from repro.traffic import inject_attacks

TABLE_SIZES = ((16, 2), (64, 2), (256, 4), (1024, 4), (4096, 4))
BENIGN_FLOWS = 250


def ruleset() -> RuleSet:
    rules = load_bundled_rules()
    rules.add(Signature(sid=3001, pattern=ATTACK_SIGNATURE, msg="gauntlet target"))
    return rules


def mixed():
    # High flow-arrival rate -> tens of concurrent flows, so the smaller
    # tables actually experience replacement pressure.
    trace = benign_trace(flows=BENIGN_FLOWS, seed=43, mean_interarrival=0.0005)
    attack = build_attack(
        "tcp_seg_8",
        gauntlet_payload(),
        signature_span=(ATTACK_OFFSET, len(ATTACK_SIGNATURE)),
        src="10.66.0.1",
    )
    return inject_attacks(trace, [attack])


def series_rows() -> list[str]:
    rules = ruleset()
    trace = mixed()
    lines = [
        f"{'buckets x ways':>14} {'capacity':>9} {'state KiB':>10} "
        f"{'evictions':>10} {'evict/pkt':>10} {'attack':>7}"
    ]
    for buckets, ways in TABLE_SIZES:
        config = FastPathConfig(table_buckets=buckets, table_ways=ways)
        ips = SplitDetectIPS(rules, fast_config=config)
        alerts = []
        for packet in trace:
            alerts.extend(ips.process(packet))
        caught = detected(alerts)
        evictions = ips.fast_path.table_evictions
        packets = ips.stats.fast_packets
        lines.append(
            f"{f'{buckets}x{ways}':>14} {buckets * ways:>9} "
            f"{ips.fast_path.state_bytes() / 1024:>10.1f} {evictions:>10} "
            f"{evictions / max(packets, 1):>10.3f} {'HIT' if caught else 'MISS':>7}"
        )
    return lines


def test_fig10_flowtable_sizing(benchmark, capfd):
    rules = ruleset()
    trace = mixed()

    def run_smallest():
        config = FastPathConfig(table_buckets=16, table_ways=2)
        ips = SplitDetectIPS(rules, fast_config=config)
        alerts = []
        for packet in trace:
            alerts.extend(ips.process(packet))
        return ips, alerts

    ips, alerts = benchmark.pedantic(run_smallest, rounds=2, iterations=1)
    assert detected(alerts)  # stateless piece matching survives any table
    assert ips.fast_path.table_evictions > 0
    emit("fig10_flowtable", series_rows(), capfd)


if __name__ == "__main__":
    print("\n".join(series_rows()), file=sys.stderr)
