"""SD101: per-packet telemetry must be guarded.

Invariant (PR 2): instrumentation in the hot path costs at most one
``enabled`` check when telemetry is off -- the <=1.15x overhead gate in
``benchmarks/bench_telemetry_overhead.py`` depends on it.  Concretely,
any instrument mutation (``inc``/``dec``/``set``/``observe``/
``record``) inside a function in ``core/``, ``match/``, or ``streams/``
must be dominated by a telemetry guard: an enclosing ``if`` (or
conditional expression) testing ``tel_on``/``enabled``/``telemetry``,
or an earlier early-return of the form ``if not self._tel_on: return``.

Construction-time registration (``registry.counter(...)`` in
``__init__``) and the dedicated refresh methods are exempt: they run
per engine or per snapshot, not per packet.
"""

from __future__ import annotations

import ast

from ..astutil import build_parents, enclosing_function, statement_chain
from ..engine import FileContext, Rule, register

__all__ = ["TelemetryGuardRule"]

#: Mutating instrument methods (reads like ``.value`` are harmless).
INSTRUMENT_METHODS = frozenset({"inc", "dec", "set", "observe", "record"})

#: Substrings that mark an expression as a telemetry guard.
GUARD_TOKENS = ("tel_on", "enabled", "telemetry", "null_registry")

#: Methods that run per engine / per snapshot, never per packet.
EXEMPT_FUNCTIONS = frozenset(
    {
        "__init__",
        "refresh_telemetry",
        "snapshot",
        "finish",
        "merge",
        "record",  # a journal implementing record() is not a call site
    }
)


def _mentions_guard(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and any(
            token in node.id.lower() for token in GUARD_TOKENS
        ):
            return True
        if isinstance(node, ast.Attribute) and any(
            token in node.attr.lower() for token in GUARD_TOKENS
        ):
            return True
    return False


def _terminates(stmts: list[ast.stmt]) -> bool:
    """Does this suite unconditionally leave the enclosing block?"""
    if not stmts:
        return False
    last = stmts[-1]
    return isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break))


def _is_instrument_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in INSTRUMENT_METHODS
        # ``.set()`` on a bare name (e.g. ``event.set()``) is far more
        # often threading than telemetry; instruments are always held in
        # attributes (``self._g_x``) or chained (``...labels(...).set``).
        and not (
            node.func.attr == "set" and isinstance(node.func.value, ast.Name)
        )
    )


@register
class TelemetryGuardRule(Rule):
    id = "SD101"
    title = "hot-path telemetry call not guarded by tel_on/enabled"
    default_paths = (
        "*/repro/core/*.py",
        "*/repro/match/*.py",
        "*/repro/streams/*.py",
    )

    def check(self, ctx: FileContext) -> None:
        parents = build_parents(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not _is_instrument_call(node):
                continue
            function = enclosing_function(node, parents)
            if function is None or function.name in EXEMPT_FUNCTIONS:
                continue
            if self._guarded(node, function, parents):
                continue
            ctx.report(
                self,
                node,
                f"telemetry call .{node.func.attr}(...) in "  # type: ignore[attr-defined]
                f"{function.name}() is not under a tel_on/enabled guard; "
                "per-packet instrumentation must be skippable in one branch "
                "(PR 2's <=1.15x overhead gate)",
            )

    def _guarded(
        self,
        node: ast.AST,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        parents: dict[ast.AST, ast.AST],
    ) -> bool:
        # 1. An enclosing if/conditional whose test names the guard.
        current = node
        while current is not function:
            parent = parents.get(current)
            if parent is None:
                break
            if isinstance(parent, (ast.If, ast.IfExp)) and _mentions_guard(
                parent.test
            ):
                return True
            current = parent
        # 2. An earlier sibling of the form ``if not <guard>: return``
        #    at any nesting level between the call and the function.
        for body, index in statement_chain(node, parents, stop=function):
            for earlier in body[:index]:
                if (
                    isinstance(earlier, ast.If)
                    and _mentions_guard(earlier.test)
                    and _terminates(earlier.body)
                ):
                    return True
        return False
