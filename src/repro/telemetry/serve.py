"""Live telemetry endpoint: /metrics, /healthz, /traces over stdlib HTTP.

The ROADMAP's live-service item needs the Prometheus telemetry exposed
on an HTTP endpoint; this module is that endpoint, dependency-free
(``http.server``) and cheap enough to run beside any CLI invocation via
``splitdetect run ... --serve-telemetry PORT``.

The server never touches engine internals directly: it reads a
:class:`TelemetryPublisher`, a tiny mutable holder the run loop updates
(single-process runs point it at the live registry and tracer; sharded
runs publish the merged registry and trace snapshot when the merge
completes).  Handlers run on daemon threads, so a hung scrape can never
stall packet processing, and every response is computed fresh per
request -- ``/metrics`` is the same text :func:`to_prometheus` writes
to ``--telemetry-out``, plus the profile quantile series.

Endpoint contract (see DESIGN.md "Tracing & live observability"):

- ``GET /metrics``  -> ``text/plain`` Prometheus exposition of the
  current registry (404-free even before the run starts: an empty
  registry exposes zero series);
- ``GET /healthz``  -> ``application/json`` ``{"status": "ok", ...}``
  with packet/alert progress counters;
- ``GET /traces``   -> ``application/json`` span list (the flight
  recorder's current ring), filterable with ``?trace=<hex id>`` or
  ``?flow=<substring>``.
"""

from __future__ import annotations

import hmac
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from .export import to_prometheus
from .profile import stage_profile
from .registry import NULL_REGISTRY

__all__ = ["TelemetryPublisher", "TelemetryServer", "TelemetrySession"]


class TelemetryPublisher:
    """Mutable bridge between a running pipeline and the HTTP server.

    The run loop owns it and may swap ``registry`` / ``trace_snapshot``
    / ``health`` at any time (assignment is atomic under the GIL); the
    server only ever reads.  ``refresh`` is an optional callable the
    server invokes before serving ``/metrics`` so point-in-time gauges
    are sampled at scrape time (single-process runs wire it to
    ``engine.refresh_telemetry``).

    Service mode (``splitdetect serve``) wires three more read hooks --
    ``source_state`` / ``shed_state`` / ``tenants_state``, each a
    zero-argument callable returning a JSON-safe dict -- and one write
    hook: ``on_reload``, invoked by an authenticated ``POST /reload``.
    ``reload_token`` guards that endpoint; with no token configured the
    endpoint refuses outright (an unauthenticated rule swap is worse
    than none).
    """

    def __init__(self) -> None:
        self.registry: Any = NULL_REGISTRY
        self.trace_snapshot: dict[str, Any] = {}
        self.health: dict[str, Any] = {"status": "starting"}
        self.refresh: Any = None
        self.started = time.monotonic()
        self.source_state: Any = None
        self.shed_state: Any = None
        self.tenants_state: Any = None
        self.reload_token: str | None = None
        self.on_reload: Any = None

    def healthz(self) -> dict[str, Any]:
        """The /healthz body: liveness plus whatever hooks are wired."""
        body = dict(self.health)
        body["uptime_seconds"] = round(time.monotonic() - self.started, 3)
        source_state = self.source_state
        if source_state is not None:
            body["source"] = source_state()
        shed_state = self.shed_state
        if shed_state is not None:
            body["shed"] = shed_state()
        return body

    def metrics_text(self) -> str:
        refresh = self.refresh
        if refresh is not None:
            refresh()
        registry = self.registry
        text = to_prometheus(registry)
        profile = stage_profile(registry)
        if profile:
            lines = [
                "# HELP repro_profile_stage_latency_ns Stage latency quantiles "
                "estimated from the stage histogram",
                "# TYPE repro_profile_stage_latency_ns gauge",
            ]
            for stage in sorted(profile["stages"]):
                entry = profile["stages"][stage]
                for key in sorted(entry):
                    if key.startswith("p") and key.endswith("_ns"):
                        quantile = key[1:-3]
                        lines.append(
                            f'repro_profile_stage_latency_ns{{stage="{stage}",'
                            f'quantile="0.{quantile}"}} {entry[key]:.1f}'
                        )
            text += "\n".join(lines) + "\n"
        return text

    def spans(self, trace: str | None, flow: str | None) -> list[dict[str, Any]]:
        spans = self.trace_snapshot.get("spans", [])
        if trace:
            wanted = trace.lower().lstrip("0x")
            spans = [s for s in spans if s.get("trace", "").lstrip("0") == wanted.lstrip("0")]
        if flow:
            spans = [s for s in spans if flow in s.get("flow", "")]
        return spans


class _Handler(BaseHTTPRequestHandler):
    publisher: TelemetryPublisher  # set by TelemetryServer per-class

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrapes must not spam the run's stdout

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        parsed = urlparse(self.path)
        publisher = self.publisher
        try:
            if parsed.path == "/metrics":
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    publisher.metrics_text().encode("utf-8"),
                )
            elif parsed.path == "/healthz":
                self._send(
                    200,
                    "application/json",
                    (json.dumps(publisher.healthz(), sort_keys=True) + "\n").encode(),
                )
            elif parsed.path == "/shed":
                self._send_hook(publisher.shed_state, "load shedding")
            elif parsed.path == "/tenants":
                self._send_hook(publisher.tenants_state, "tenancy")
            elif parsed.path == "/traces":
                query = parse_qs(parsed.query)
                spans = publisher.spans(
                    query.get("trace", [None])[0], query.get("flow", [None])[0]
                )
                snapshot = publisher.trace_snapshot
                body = json.dumps(
                    {
                        "recorded": snapshot.get("recorded", 0),
                        "dropped": snapshot.get("dropped", 0),
                        "sample": snapshot.get("sample", 1),
                        "spans": spans,
                    },
                    sort_keys=True,
                )
                self._send(200, "application/json", (body + "\n").encode())
            else:
                self._send(404, "text/plain", b"not found\n")
        except BrokenPipeError:
            pass  # scraper went away mid-response; nothing to clean up

    def _send_hook(self, hook: Any, what: str) -> None:
        """Serve a wired read hook as JSON, 404 when the mode lacks it."""
        if hook is None:
            self._send(
                404, "text/plain", f"{what} is not active on this run\n".encode()
            )
            return
        self._send(
            200,
            "application/json",
            (json.dumps(hook(), sort_keys=True) + "\n").encode(),
        )

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        parsed = urlparse(self.path)
        publisher = self.publisher
        try:
            if parsed.path != "/reload":
                self._send(404, "text/plain", b"not found\n")
                return
            token = publisher.reload_token
            if not token or publisher.on_reload is None:
                self._send(
                    503,
                    "text/plain",
                    b"reload is not enabled (start with --reload-token)\n",
                )
                return
            supplied = self.headers.get("Authorization", "")
            if not hmac.compare_digest(supplied, f"Bearer {token}"):
                self._send(401, "text/plain", b"bad or missing bearer token\n")
                return
            # Drain any request body (clients may POST an empty JSON);
            # reload parameters live server-side by design -- the rules
            # path is operator configuration, not scraper input.
            length = int(self.headers.get("Content-Length") or 0)
            if length:
                self.rfile.read(min(length, 1 << 16))
            try:
                result = publisher.on_reload()
            except Exception as exc:  # surfaced to the caller, run survives
                body = json.dumps({"status": "error", "error": str(exc)})
                self._send(500, "application/json", (body + "\n").encode())
                return
            body = json.dumps(
                {"status": "ok", **(result or {})}, sort_keys=True
            )
            self._send(200, "application/json", (body + "\n").encode())
        except BrokenPipeError:
            pass


class TelemetryServer:
    """A daemon-threaded HTTP server around one :class:`TelemetryPublisher`."""

    def __init__(
        self,
        publisher: TelemetryPublisher,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.publisher = publisher
        handler = type("_BoundHandler", (_Handler,), {"publisher": publisher})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "TelemetryServer":
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="telemetry-serve",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


class TelemetrySession:
    """Publisher + server lifecycle as one context manager.

    The one place endpoint startup/shutdown lives: ``splitdetect run``
    and ``splitdetect serve`` both enter this instead of hand-wiring a
    :class:`TelemetryPublisher` / :class:`TelemetryServer` pair.  A
    ``port`` of ``None`` disables the whole thing -- every method is a
    cheap no-op and ``enabled`` is False -- so call sites need no
    conditional plumbing.

    On a clean exit the session marks the published health ``finished``
    and optionally holds the endpoint open ``hold`` seconds for a last
    scrape; on an exception it tears down immediately.
    """

    def __init__(
        self,
        port: int | None,
        *,
        host: str = "127.0.0.1",
        hold: float | None = None,
        announce: Any = print,
    ) -> None:
        self.hold = hold
        self._host = host
        self._port = port
        self._announce = announce
        self.publisher: TelemetryPublisher | None = (
            TelemetryPublisher() if port is not None else None
        )
        self.server: TelemetryServer | None = None

    @property
    def enabled(self) -> bool:
        return self.publisher is not None

    @property
    def url(self) -> str | None:
        return self.server.url if self.server is not None else None

    def update_health(self, **fields: Any) -> None:
        """Merge fields into the published health dict (no-op when off)."""
        if self.publisher is not None:
            self.publisher.health = {**self.publisher.health, **fields}

    def publish_registry(self, registry: Any, *, refresh: Any = None) -> None:
        if self.publisher is not None and registry is not None:
            self.publisher.registry = registry
            if refresh is not None:
                self.publisher.refresh = refresh

    def publish_trace(self, snapshot: dict[str, Any] | None) -> None:
        if self.publisher is not None:
            self.publisher.trace_snapshot = snapshot or {}

    def __enter__(self) -> "TelemetrySession":
        if self.publisher is not None and self._port is not None:
            self.server = TelemetryServer(
                self.publisher, port=self._port, host=self._host
            ).start()
            if self._announce is not None:
                self._announce(
                    f"telemetry endpoint: {self.server.url} "
                    "(/metrics /healthz /traces)"
                )
        return self

    def __exit__(self, exc_type: Any, *exc: Any) -> None:
        server = self.server
        if server is None:
            return
        if exc_type is None:
            self.update_health(status="ok", finished=True)
            if self.hold is not None and self.hold > 0:
                if self._announce is not None:
                    self._announce(
                        f"holding telemetry endpoint {server.url} "
                        f"for {self.hold:g}s"
                    )
                time.sleep(self.hold)
        server.stop()
        self.server = None
