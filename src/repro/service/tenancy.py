"""Per-tenant signature sets: one engine pipeline per tenant.

A monitoring point often fronts several customers (or several internal
zones) whose signature needs differ; compiling every tenant's rules into
one automaton makes each tenant pay for all the others' patterns and
makes a per-tenant reload a global event.  This module keeps tenants
*shared-nothing* instead, the same isolation argument as the runtime's
shards: a keyer maps each packet to a tenant, and each tenant owns a
full :class:`~repro.runtime.worker.ShardProcessor` -- its own compiled
AC tables, flow monitor, counters, tracer, and rule generation.
Unmatched traffic falls back to the default tenant, which runs the
service's base ruleset, so no packet is ever uninspected.

Keyers (``--tenant-key``):

- ``dst-ip`` (default) / ``src-ip`` -- fragment-safe: every IP fragment
  carries the address pair, so a fragmented flow lands on one tenant;
- ``dst-port`` -- finer-grained, but **not** fragment-safe (non-first
  fragments carry no transport header and fall back to the default
  tenant); use only where the capture point defragments.

Selectors are exact values for port keyers and addresses *or CIDR
blocks* for IP keyers (``10.0.1.5``, ``10.0.0.0/8``).  Overlapping
selectors resolve to the first tenant declared -- declaration order is
the precedence order, and :meth:`TenantTable.state` exposes the mapping
so an operator can audit it.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Any

from ..packet import IP_PROTO_TCP, IP_PROTO_UDP, TimedPacket
from ..runtime import RunnerConfig, ShardProcessor
from ..runtime.control import ControlMessage
from ..runtime.spec import EngineSpec
from ..signatures import RuleSet

__all__ = ["DEFAULT_TENANT", "TENANT_KEYERS", "TenantSpec", "TenantTable"]

#: The fallback tenant every unmatched packet lands on.
DEFAULT_TENANT = "default"

#: Valid ``--tenant-key`` values.
TENANT_KEYERS = ("dst-ip", "src-ip", "dst-port")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's declaration: a name, its selectors, and its rules."""

    name: str
    selectors: tuple[str, ...]
    rules: RuleSet
    rules_path: str | None = None
    """Where the rules came from, so a hot reload can re-read them."""


def _parse_networks(
    selectors: tuple[str, ...],
) -> list[ipaddress.IPv4Network]:
    networks = []
    for selector in selectors:
        try:
            networks.append(ipaddress.ip_network(selector, strict=False))
        except ValueError as exc:
            raise ValueError(
                f"bad tenant selector {selector!r}: not an IPv4 address or CIDR"
            ) from exc
    return networks


class TenantTable:
    """The keyer plus every tenant's pipeline, default tenant included.

    Pipelines are in-process :class:`ShardProcessor` instances -- the
    exact worker machinery the runners drive -- indexed 0 for the
    default tenant and 1.. per declared tenant, so merged reports and
    trace spans stay attributable per tenant through the existing
    shard-index plumbing.
    """

    def __init__(
        self,
        default_spec: EngineSpec,
        tenants: list[TenantSpec],
        *,
        keyer: str = "dst-ip",
        config: RunnerConfig | None = None,
    ) -> None:
        if keyer not in TENANT_KEYERS:
            raise ValueError(
                f"unknown tenant keyer {keyer!r}: expected one of {TENANT_KEYERS}"
            )
        names = [spec.name for spec in tenants]
        if DEFAULT_TENANT in names:
            raise ValueError(
                f"tenant name {DEFAULT_TENANT!r} is reserved for the fallback"
            )
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.keyer = keyer
        self.config = config or RunnerConfig()
        self.specs = {spec.name: spec for spec in tenants}
        self.default_spec = default_spec
        self.processors: dict[str, ShardProcessor] = {
            DEFAULT_TENANT: ShardProcessor(
                0, default_spec, self.config, allow_process_faults=False
            )
        }
        for index, spec in enumerate(tenants, start=1):
            engine_spec = EngineSpec(
                rules=spec.rules,
                split_policy=default_spec.split_policy,
                fast_config=default_spec.fast_config,
                overlap_policy=default_spec.overlap_policy,
                model=default_spec.model,
                probation_packets=default_spec.probation_packets,
                slow_capacity_flows=default_spec.slow_capacity_flows,
            )
            self.processors[spec.name] = ShardProcessor(
                index, engine_spec, self.config, allow_process_faults=False
            )
        self.packets_by_tenant: dict[str, int] = {
            name: 0 for name in self.processors
        }
        # Match tables, precompiled once per construction/reload.
        if keyer == "dst-port":
            self._ports: dict[int, str] = {}
            for spec in tenants:
                for selector in spec.selectors:
                    port = int(selector)
                    self._ports.setdefault(port, spec.name)
            self._networks: list[tuple[ipaddress.IPv4Network, str]] = []
        else:
            self._ports = {}
            self._networks = []
            for spec in tenants:
                for network in _parse_networks(spec.selectors):
                    self._networks.append((network, spec.name))

    def tenant_of(self, packet: TimedPacket) -> str:
        """The owning tenant's name; :data:`DEFAULT_TENANT` if unmatched."""
        ip = packet.ip
        if self.keyer == "dst-port":
            if ip.is_fragment and ip.fragment_offset > 0:
                return DEFAULT_TENANT  # no transport header to key on
            if ip.protocol not in (IP_PROTO_TCP, IP_PROTO_UDP):
                return DEFAULT_TENANT
            payload = ip.payload
            if len(payload) < 4:
                return DEFAULT_TENANT
            return self._ports.get(
                int.from_bytes(payload[2:4], "big"), DEFAULT_TENANT
            )
        address = ipaddress.ip_address(
            ip.dst if self.keyer == "dst-ip" else ip.src
        )
        for network, name in self._networks:
            if address in network:
                return name
        return DEFAULT_TENANT

    def processor(self, name: str) -> ShardProcessor:
        return self.processors[name]

    def count(self, name: str, packets: int) -> None:
        self.packets_by_tenant[name] += packets

    def reload(
        self, rules_by_tenant: dict[str, RuleSet], *, seq: int = 0
    ) -> dict[str, int]:
        """Swap rule sets per tenant via the worker control protocol.

        Each named tenant's processor gets one ``reload``
        :class:`ControlMessage` applied at its current batch boundary;
        flow state, diverted work, and counters survive (see
        ``SplitDetectIPS.swap_rules``).  Tenants absent from the map
        keep their current rules.  Returns the new rule generation per
        reloaded tenant.
        """
        generations: dict[str, int] = {}
        for name, rules in rules_by_tenant.items():
            processor = self.processors.get(name)
            if processor is None:
                raise KeyError(f"unknown tenant {name!r}")
            processor.control(
                ControlMessage(
                    op="reload", payload={"rules": rules}, seq=seq,
                    fields={"tenant": name},
                )
            )
            generations[name] = processor.engine.rules_generation
        return generations

    def state(self) -> dict[str, Any]:
        """The /tenants body: per-tenant progress and rule generation."""
        tenants: dict[str, Any] = {}
        for name, processor in self.processors.items():
            spec = self.specs.get(name)
            tenants[name] = {
                "packets": self.packets_by_tenant[name],
                "alerts": len(processor.alerts),
                "diverted_flows": len(processor.engine.diversions),
                "rules": len(processor.engine.rules),
                "rules_generation": processor.engine.rules_generation,
                "selectors": list(spec.selectors) if spec else [],
            }
        return {"keyer": self.keyer, "tenants": tenants}
