"""Sketch-backed flow state for the 1M-flow regime.

The exact backends (dict, :class:`~repro.core.flowtable.FlowTable`)
spend a full table entry on every flow direction, anomalous or not.
At the paper's ~1M-concurrent-connection operating point almost all of
those flows are benign and need nothing but a 4-byte expected sequence
number -- so this backend splits the state three ways:

- **Cold slots** -- a fixed power-of-two ``array('Q')`` where each
  64-bit word packs the expected sequence number (bits 0-31), a 16-bit
  key fingerprint (bits 32-47, zero means empty), and a has-seq flag
  (bit 48).  Direct-mapped by the low bits of the flow hash; a
  colliding flow *recycles* the slot rather than chaining, so memory
  never grows.  Cold slots are keyless: they cannot be enumerated or
  idle-swept, only recycled.
- **A count-min sketch** of per-flow anomaly counters
  (:class:`CountMinSketch`).  Overestimate-only and bucket-wise
  mergeable, so the sharded runtime can fold per-worker sketches into
  one report (the OctoSketch sketch-per-worker / periodic-merge shape).
- **A small exact hot set** -- flows the sketch says have diverted at
  least ``promote_threshold`` times get a real dict entry (promoted on
  first anomaly), LRU-bounded at ``hot_capacity``, and demoted back to
  a cold slot when idle.  Anomalous flows are exactly the ones whose
  monitor state must survive collisions, because they are headed for
  slow-path probation.

Failure modes are asymmetric by construction: a cold-slot *hash*
collision loses the victim's expected sequence number, which re-arms
its monitor in midstream-pickup mode (a missed-divert risk, identical
to a ``FlowTable`` eviction) -- while a *fingerprint* collision inside
one slot (same low bits AND same 16 high bits) can hand a flow another
flow's sequence number, the only source of false diverts.
``benchmarks/bench_state_scale.py`` measures that rate against the
exact-dict oracle and gates it at 1%.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterator

from ..hashing import fnv1a_64, mix64
from ..packet import FlowKey
from .state import FAST_FLOW_STATE_BYTES, FlowState

__all__ = ["CountMinSketch", "SketchBackend"]

_SEQ_MASK = 0xFFFFFFFF
_FP_SHIFT = 32
_FP_MASK = 0xFFFF
_HAS_SEQ_BIT = 1 << 48

#: Count-min cells are 32-bit hardware counters; increments saturate
#: rather than wrap so merged estimates stay overestimate-only.
_CELL_MAX = 0xFFFFFFFF


class CountMinSketch:
    """Fixed-size frequency sketch: overestimate-only, bucket-wise mergeable.

    ``depth`` rows of ``width`` 32-bit counters.  Keys are pre-hashed
    64-bit values (one FNV-1a pass per flow, shared with the slot
    array); per-row indexes are derived with :func:`~repro.hashing.mix64`
    so the rows are pairwise independent without re-hashing the key.
    """

    def __init__(self, width: int = 1 << 14, depth: int = 4) -> None:
        if width <= 0 or width & (width - 1):
            raise ValueError(f"width must be a power of two, got {width}")
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.width = width
        self.depth = depth
        self._mask = width - 1
        self._rows: list[array] = [array("I", bytes(4 * width)) for _ in range(depth)]

    def add(self, key_hash: int, count: int = 1) -> None:
        """Count ``count`` occurrences of the flow hashed to ``key_hash``."""
        for row_index in range(self.depth):
            row = self._rows[row_index]
            cell = mix64(key_hash, row_index) & self._mask
            value = row[cell] + count
            row[cell] = value if value <= _CELL_MAX else _CELL_MAX

    def estimate(self, key_hash: int) -> int:
        """Upper bound on this flow's count (never an underestimate)."""
        best = _CELL_MAX + 1
        for row_index in range(self.depth):
            value = self._rows[row_index][mix64(key_hash, row_index) & self._mask]
            if value < best:
                best = value
        return best

    def merge(self, other: CountMinSketch) -> None:
        """Fold ``other`` into this sketch cell-by-cell (saturating add).

        Sound for count-min: min over rows of (a_i + b_i) is still an
        upper bound on the two true counts combined, so merged shard
        sketches keep the overestimate-only guarantee.
        """
        if (other.width, other.depth) != (self.width, self.depth):
            raise ValueError(
                f"sketch shapes differ: {self.width}x{self.depth} vs "
                f"{other.width}x{other.depth}"
            )
        for mine, theirs in zip(self._rows, other._rows):
            for cell in range(self.width):
                value = mine[cell] + theirs[cell]
                mine[cell] = value if value <= _CELL_MAX else _CELL_MAX

    def copy(self) -> CountMinSketch:
        clone = CountMinSketch.__new__(CountMinSketch)
        clone.width = self.width
        clone.depth = self.depth
        clone._mask = self._mask
        clone._rows = [array("I", row) for row in self._rows]
        return clone

    def total(self) -> int:
        """Sum of one row's cells == total increments (row 0 is exact
        because every add touches each row exactly once)."""
        return sum(self._rows[0])

    def state_bytes(self) -> int:
        return self.width * self.depth * 4

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountMinSketch):
            return NotImplemented
        return (
            self.width == other.width
            and self.depth == other.depth
            and self._rows == other._rows
        )


class SketchBackend:
    """Compact fast-path flow state: cold slots + count-min + exact hot set.

    Implements :class:`~repro.core.state.StateBackend`.  Provisioned
    memory is fixed at construction -- slot array + sketch + hot-set
    capacity -- and never grows with flow count.
    """

    def __init__(
        self,
        slots: int = 1 << 17,
        hot_capacity: int = 4096,
        *,
        width: int = 1 << 14,
        depth: int = 4,
        promote_threshold: int = 1,
        key_bytes: Callable[[FlowKey], bytes],
    ) -> None:
        if slots <= 0 or slots & (slots - 1):
            raise ValueError(f"slots must be a power of two, got {slots}")
        if hot_capacity <= 0:
            raise ValueError("hot_capacity must be positive")
        if promote_threshold <= 0:
            raise ValueError("promote_threshold must be positive")
        self.hot_capacity = hot_capacity
        self.promote_threshold = promote_threshold
        self._key_bytes = key_bytes
        self._slots = array("Q", bytes(8 * slots))
        self._slot_mask = slots - 1
        # Insertion order doubles as LRU order: reads re-insert.
        self._hot: dict[FlowKey, FlowState] = {}
        self._cms = CountMinSketch(width, depth)
        self._occupied = 0  # live cold slots (nonzero fingerprint)
        self.promotions = 0  # cold -> hot (sketch crossed threshold)
        self.demotions = 0  # hot -> cold (idle sweep or hot-set overflow)
        self.slot_recycles = 0  # cold slot overwritten by a different flow
        # One-entry hash memo: a packet touches the same flow several
        # times (get, put, record_anomaly), and the FNV pass over the
        # serialized five-tuple is the expensive part.
        self._memo_key: FlowKey | None = None
        self._memo_hash = 0

    # -- hashing -----------------------------------------------------------

    def _hash(self, flow: FlowKey) -> int:
        if flow == self._memo_key:
            return self._memo_hash
        value = fnv1a_64(self._key_bytes(flow))
        self._memo_key = flow
        self._memo_hash = value
        return value

    @staticmethod
    def _fingerprint(key_hash: int) -> int:
        # High 16 bits, disjoint from the slot index (low bits); zero is
        # reserved for "empty slot" so a zero fingerprint is remapped.
        return ((key_hash >> 48) & _FP_MASK) or 1

    # -- cold-slot codec ---------------------------------------------------

    @staticmethod
    def _decode(word: int) -> FlowState:
        expected = word & _SEQ_MASK if word & _HAS_SEQ_BIT else None
        return FlowState(expected_seq=expected)

    def _write_slot(self, key_hash: int, state: FlowState) -> None:
        index = key_hash & self._slot_mask
        fingerprint = self._fingerprint(key_hash)
        old_fp = (self._slots[index] >> _FP_SHIFT) & _FP_MASK
        if old_fp == 0:
            self._occupied += 1
        elif old_fp != fingerprint:
            self.slot_recycles += 1
        word = fingerprint << _FP_SHIFT
        if state.expected_seq is not None:
            word |= (state.expected_seq & _SEQ_MASK) | _HAS_SEQ_BIT
        self._slots[index] = word

    def _read_slot(self, key_hash: int) -> FlowState | None:
        word = self._slots[key_hash & self._slot_mask]
        fingerprint = (word >> _FP_SHIFT) & _FP_MASK
        if fingerprint != self._fingerprint(key_hash):
            # Empty, or another flow's record: this flow has no state.
            # Never steal on read -- a lost record degrades to midstream
            # pickup, never to a fabricated divert.
            return None
        return self._decode(word)

    def _clear_slot(self, key_hash: int) -> FlowState | None:
        index = key_hash & self._slot_mask
        word = self._slots[index]
        fingerprint = (word >> _FP_SHIFT) & _FP_MASK
        if fingerprint != self._fingerprint(key_hash):
            return None
        self._slots[index] = 0
        self._occupied -= 1
        return self._decode(word)

    # -- StateBackend ------------------------------------------------------

    def get(self, flow: FlowKey) -> FlowState | None:
        state = self._hot.pop(flow, None)
        if state is not None:
            self._hot[flow] = state  # LRU touch
            return state
        return self._read_slot(self._hash(flow))

    def peek(self, flow: FlowKey) -> FlowState | None:
        state = self._hot.get(flow)
        if state is not None:
            return state
        return self._read_slot(self._hash(flow))

    def put(self, flow: FlowKey, state: FlowState) -> None:
        if flow in self._hot:
            self._hot.pop(flow)
            self._hot[flow] = state
            return
        key_hash = self._hash(flow)
        if self._cms.estimate(key_hash) >= self.promote_threshold:
            self._promote(flow, state, key_hash)
        else:
            self._write_slot(key_hash, state)

    def _promote(self, flow: FlowKey, state: FlowState, key_hash: int) -> None:
        self._clear_slot(key_hash)  # no stale cold duplicate
        self._hot[flow] = state
        self.promotions += 1
        if len(self._hot) > self.hot_capacity:
            victim = next(iter(self._hot))  # LRU: oldest insertion
            victim_state = self._hot.pop(victim)
            self._write_slot(self._hash(victim), victim_state)
            self.demotions += 1

    def pop(self, flow: FlowKey, default: FlowState | None = None) -> FlowState | None:
        state = self._hot.pop(flow, None)
        if state is not None:
            return state
        cleared = self._clear_slot(self._hash(flow))
        return cleared if cleared is not None else default

    def clear(self) -> None:
        """Flush monitor entries.  The anomaly sketch is history, not a
        monitor entry, and survives the flush."""
        self._hot.clear()
        self._slots = array("Q", bytes(8 * (self._slot_mask + 1)))
        self._occupied = 0

    def items(self) -> Iterator[tuple[FlowKey, FlowState]]:
        """The exact (hot) records only: cold slots are keyless."""
        return iter(self._hot.items())

    def __len__(self) -> int:
        return len(self._hot) + self._occupied

    def record_anomaly(self, flow: FlowKey) -> None:
        self._cms.add(self._hash(flow))

    def evict_idle(self, now: float, idle_timeout: float) -> int:
        """Demote idle hot flows back to cold slots (they keep their
        expected sequence number, but stop costing an exact entry)."""
        stale = [
            flow
            for flow, state in self._hot.items()
            if now - state.last_seen > idle_timeout
        ]
        for flow in stale:
            state = self._hot.pop(flow)
            self._write_slot(self._hash(flow), state)
            self.demotions += 1
        return len(stale)

    def provisioned_bytes(self) -> int:
        return (
            (self._slot_mask + 1) * 8
            + self._cms.state_bytes()
            + self.hot_capacity * FAST_FLOW_STATE_BYTES
        )

    @property
    def table_evictions(self) -> int:
        return self.slot_recycles

    def sketch_snapshot(self) -> CountMinSketch:
        return self._cms.copy()

    # -- accounting --------------------------------------------------------

    @property
    def hot_entries(self) -> int:
        return len(self._hot)

    @property
    def cold_entries(self) -> int:
        return self._occupied
