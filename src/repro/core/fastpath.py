"""The Split-Detect fast path: per-packet piece matching + anomaly monitor.

The fast path never reassembles and never buffers payload.  Per flow
direction it keeps only an expected sequence number and a flag byte --
:data:`FAST_FLOW_STATE_BYTES` bytes in a hardware implementation -- and
per packet it does exactly one automaton scan over the payload.  Every
transport behaviour that could hide a signature from per-packet matching
(small segments, reordering, retransmission/overlap, IP fragments) causes
the flow to be *diverted*; the detection theorem guarantees this covers
all byte-string evasions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..match import DualAutomaton
from ..telemetry import NULL_REGISTRY, NULL_TRACER, SIZE_BYTES_BUCKETS
from ..packet import (
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    TCP_FIN,
    TCP_RST,
    TCP_SYN,
    FlowKey,
    TcpSegment,
    TimedPacket,
    decode_tcp,
    decode_udp,
    flow_key_of,
    seq_add,
    seq_diff,
)
from ..packet.errors import PacketError
from ..signatures import Piece, Signature, SplitRuleSet
from .alerts import Alert, AlertKind, DivertReason
from .sketch import SketchBackend
from .state import (
    FAST_FLOW_STATE_BYTES,
    DictBackend,
    FlowState,
    StateBackend,
    TableBackend,
)

__all__ = [
    "FAST_FLOW_STATE_BYTES",
    "FASTPATH_IDLE_TIMEOUT",
    "FastPath",
    "FastPathConfig",
    "FastPathResult",
]


@dataclass(frozen=True)
class FastPathConfig:
    """Fast-path behaviour knobs (the ablation surface of Table 8)."""

    check_tiny: bool = True
    """Divert flows sending non-final data segments below the threshold."""

    check_order: bool = True
    """Divert flows sending data out of order or re-sending delivered data."""

    divert_fragments: bool = True
    """Divert flows that use IP fragmentation at all."""

    min_ttl: int = 8
    """Divert data packets whose TTL is below this floor (Handley-Paxson):
    such a packet may expire between the IPS and the protected host, the
    delivery trick insertion attacks rely on.  The deployment assumption
    is that every protected host is fewer than ``min_ttl`` hops behind
    the IPS.  0 disables the check."""

    scan_short_signatures: bool = True
    """Best-effort whole-pattern scan for unsplittable signatures."""

    scan_whole_signatures: bool = True
    """Also match complete split signatures per packet, so an occurrence
    wholly inside one packet is confirmed immediately (no slow-path round
    trip) even when the packet is about to be dropped from slow-path view
    as pre-diversion retransmitted data."""

    threshold_override: int | None = None
    """Replace the ruleset-derived small-packet threshold B (testing only)."""

    table_buckets: int | None = None
    """When set, flow state lives in a fixed set-associative
    :class:`~repro.core.flowtable.FlowTable` of this many buckets
    (power of two) instead of an unbounded map -- the hardware-faithful
    configuration.  Evicted flows restart in midstream-pickup mode."""

    table_ways: int = 4
    """Associativity of the fixed flow table."""

    state_backend: str = "dict"
    """Where per-flow monitor records live: ``dict`` (unbounded exact
    map), ``table`` (the fixed set-associative flow table), or
    ``sketch`` (cold slots + count-min anomaly sketch + exact hot set --
    the 1M-flow configuration).  Setting ``table_buckets`` with the
    default backend still selects the table, for compatibility with the
    pre-protocol spelling."""

    sketch_slots: int = 1 << 17
    """Sketch backend: cold-slot count (power of two)."""

    sketch_hot_capacity: int = 4096
    """Sketch backend: exact hot-set capacity (entries)."""

    sketch_width: int = 1 << 14
    """Sketch backend: count-min width (counters per row, power of two)."""

    sketch_depth: int = 4
    """Sketch backend: count-min rows."""

    sketch_promote_threshold: int = 1
    """Sketch backend: anomaly-count estimate at which a flow earns an
    exact hot-set entry (1 == promoted on first anomaly)."""


def _flow_key_bytes(flow: FlowKey) -> bytes:
    """Serialize a five-tuple for the hardware hash unit."""
    return (
        f"{flow.src}|{flow.dst}|{flow.src_port}|{flow.dst_port}|{flow.protocol}"
    ).encode()


#: How long a monitor entry may sit idle before :meth:`FastPath.evict_idle`
#: reclaims it (matches the slow path's normalizer default).
FASTPATH_IDLE_TIMEOUT = 300.0


@dataclass
class FastPathResult:
    """Outcome of one packet through the fast path."""

    divert: DivertReason | None = None
    alerts: list[Alert] = field(default_factory=list)
    piece_hits: list[Piece] = field(default_factory=list)
    detail: str = ""
    decode_error: str | None = None
    """Exception class name when the transport header failed to decode
    (the packet passed unexamined) -- the engine's decode-quarantine
    accounting reads this; None for a clean decode."""
    flow_expected_seq: int | None = None
    """The monitor's expected sequence number for this packet's direction,
    snapshotted *before* this packet advanced it -- i.e. where in-order
    delivery stood when the divert decision was made.  The engine anchors
    the slow path's stream here."""


class FastPath:
    """Stateless-per-packet matcher with a minimal per-flow monitor."""

    def __init__(
        self,
        split_rules: SplitRuleSet,
        config: FastPathConfig | None = None,
        *,
        telemetry=None,
        tracer=None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._trace_enabled = self.tracer.enabled
        self.config = config or FastPathConfig()
        self.rules_generation = 0
        """How many :meth:`swap_rules` reloads this path has absorbed."""
        self._compile(split_rules)
        backend = self.config.state_backend
        if backend == "dict" and self.config.table_buckets is not None:
            backend = "table"  # pre-protocol spelling of the table backend
        if backend == "dict":
            self._flows: StateBackend = DictBackend()
        elif backend == "table":
            self._flows = TableBackend(
                self.config.table_buckets or 1024,
                self.config.table_ways,
                key_bytes=_flow_key_bytes,
            )
        elif backend == "sketch":
            self._flows = SketchBackend(
                self.config.sketch_slots,
                self.config.sketch_hot_capacity,
                width=self.config.sketch_width,
                depth=self.config.sketch_depth,
                promote_threshold=self.config.sketch_promote_threshold,
                key_bytes=_flow_key_bytes,
            )
        else:
            raise ValueError(f"unknown state backend: {backend!r}")
        # Counters the evaluation reads.
        self.packets_processed = 0
        self.bytes_scanned = 0
        # Telemetry: instruments are bound once here; per-packet sites
        # are guarded on ``_tel_on`` so a disabled run never pays more
        # than the boolean check.
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        tel = self.telemetry
        self._tel_on = tel.enabled
        self._c_packets = tel.counter(
            "repro_fastpath_packets_total", "Packets through the fast path"
        )
        self._c_bytes = tel.counter(
            "repro_fastpath_scanned_bytes_total",
            "Payload bytes scanned by the fast-path automaton",
        )
        anomaly = tel.counter(
            "repro_fastpath_anomaly_total",
            "Fast-path anomaly triggers by cause (per triggering packet)",
            ("cause",),
        )
        self._c_anomaly = {
            reason: anomaly.labels(cause=reason.value) for reason in DivertReason
        }
        self._h_payload = tel.histogram(
            "repro_fastpath_payload_bytes",
            "Scanned payload size distribution",
            buckets=SIZE_BYTES_BUCKETS,
        )
        self._c_evictions = tel.counter(
            "repro_fastpath_monitor_evictions_total",
            "Monitor entries reclaimed, by mechanism",
            ("kind",),
        )
        self._c_evict_idle = self._c_evictions.labels(kind="idle")
        self._g_monitor = tel.gauge(
            "repro_fastpath_monitor_entries",
            "Flow directions currently occupying monitor entries",
            merge="sum",
        )
        self._g_state = tel.gauge(
            "repro_fastpath_state_bytes",
            "Fast-path per-flow state footprint (provisioned when fixed-table)",
            merge="sum",
        )
        self._g_table_evictions = tel.gauge(
            "repro_fastpath_table_evictions",
            "Fixed flow-table evictions so far (0 when unbounded)",
            merge="sum",
        )

    def _compile(self, split_rules: SplitRuleSet) -> None:
        """(Re)build the piece automaton and entry table for a ruleset.

        Called at construction and by :meth:`swap_rules`; touches only
        the compiled artifacts (entries, automaton, threshold), never the
        per-flow monitor.
        """
        self.split_rules = split_rules
        self.threshold = (
            self.config.threshold_override
            if self.config.threshold_override is not None
            else split_rules.small_packet_threshold
        )
        # One automaton over every piece, plus (optionally) whole short
        # signatures; ids map back to their sources.
        self._entries: list[Piece | Signature] = list(split_rules.all_pieces())
        if self.config.scan_short_signatures:
            self._entries.extend(split_rules.unsplittable)
        if self.config.scan_whole_signatures:
            self._entries.extend(
                split_rules.splits[sid].signature for sid in sorted(split_rules.splits)
            )
        # UDP signatures are always matched whole (no stream to split).
        self._entries.extend(split_rules.udp_whole)
        patterns = [
            (entry.signature.fold(entry.data), entry.signature.nocase)
            if isinstance(entry, Piece)
            else (entry.pattern, entry.nocase)
            for entry in self._entries
        ]
        self.automaton = DualAutomaton(patterns) if patterns else None

    def swap_rules(self, split_rules: SplitRuleSet) -> None:
        """Hot-swap the compiled piece set, keeping the flow monitor.

        Every per-flow monitor entry (expected sequence numbers, idle
        clocks, sketch counters) survives untouched -- the monitor's
        anomaly checks are ruleset-independent except for the small-packet
        threshold B, which is recompiled here.  Must be called between
        batches: a prescan hit list from :meth:`prescan` indexes into the
        entry table it was produced against, so callers (the shard
        processors) apply swaps only at batch boundaries.
        """
        self._compile(split_rules)
        self.rules_generation += 1

    # -- accounting ------------------------------------------------------

    @property
    def tracked_flows(self) -> int:
        """Flow directions currently occupying monitor entries."""
        return len(self._flows)

    def state_bytes(self) -> int:
        """Fast-path per-flow state footprint (excludes the shared automaton).

        Occupied entries for the unbounded dict; full *provisioned*
        capacity for the fixed-size backends (table, sketch), as a
        hardware design would count it.
        """
        return self._flows.provisioned_bytes()

    @property
    def table_evictions(self) -> int:
        """Records lost to capacity: bucket-LRU evictions for the fixed
        table, cold-slot recycles for the sketch, 0 when unbounded."""
        return self._flows.table_evictions

    def sketch_snapshot(self):
        """Copy of the anomaly count-min sketch (None for exact backends).

        The sharded runtime attaches this to each worker's final report
        and folds the copies bucket-wise into one merged sketch."""
        return self._flows.sketch_snapshot()

    def refresh_telemetry(self) -> None:
        """Sample the point-in-time gauges (occupancy, state, AC stats).

        Gauges that would cost O(flows) per packet are sampled here
        instead of inline; callers (the run harness, the CLI exporter)
        invoke this right before taking a snapshot.
        """
        if not self._tel_on:
            return
        self._g_monitor.set(len(self._flows))
        self._g_state.set(self.state_bytes())
        self._g_table_evictions.set(self.table_evictions)
        if isinstance(self._flows, SketchBackend):
            tel = self.telemetry
            tel.gauge(
                "repro_fastpath_sketch_hot_entries",
                "Exact hot-set entries in the sketch backend",
                merge="sum",
            ).set(self._flows.hot_entries)
            tel.gauge(
                "repro_fastpath_sketch_cold_entries",
                "Occupied cold slots in the sketch backend",
                merge="sum",
            ).set(self._flows.cold_entries)
            tel.gauge(
                "repro_fastpath_sketch_promotions",
                "Cold-to-hot promotions (sketch crossed the anomaly threshold)",
                merge="sum",
            ).set(self._flows.promotions)
            tel.gauge(
                "repro_fastpath_sketch_demotions",
                "Hot-to-cold demotions (idle sweep or hot-set overflow)",
                merge="sum",
            ).set(self._flows.demotions)
        if self.automaton is not None:
            stats = self.automaton.scan_stats()
            tel = self.telemetry
            tel.gauge(
                "repro_match_scans",
                "Automaton scan calls (fast-path piece automaton)",
                merge="sum",
            ).set(stats["scans"])
            tel.gauge(
                "repro_match_scanned_bytes",
                "Bytes the piece automaton actually stepped or prefiltered",
                merge="sum",
            ).set(stats["scanned_bytes"])
            tel.gauge(
                "repro_match_matches_emitted",
                "Raw automaton match tuples emitted",
                merge="sum",
            ).set(stats["matches_emitted"])
            tel.gauge(
                "repro_match_prefilter_skip_rate",
                "Fraction of scans the first-byte prefilter proved match-free",
                merge="max",
            ).set(stats["prefilter_skip_rate"])

    # -- packet intake ------------------------------------------------------

    def process(
        self,
        packet: TimedPacket,
        prescanned: list[tuple[int, int]] | None = None,
    ) -> FastPathResult:
        """Classify one packet: pass silently, alert, and/or divert its flow.

        ``prescanned`` carries this packet's payload matches from a prior
        :meth:`prescan` sweep (batched intake); ``None`` means scan here.
        """
        result = self._process(packet, prescanned)
        if self._tel_on:
            self._c_packets.inc()
            if result.divert is not None:
                self._c_anomaly[result.divert].inc()
            self._g_monitor.set(len(self._flows))
        return result

    def _process(
        self,
        packet: TimedPacket,
        prescanned: list[tuple[int, int]] | None = None,
    ) -> FastPathResult:
        self.packets_processed += 1
        result = FastPathResult()
        ip = packet.ip
        if ip.protocol not in (IP_PROTO_TCP, IP_PROTO_UDP):
            return result
        if ip.is_fragment:
            if self.config.divert_fragments:
                result.divert = DivertReason.IP_FRAGMENT
            return result
        if ip.protocol == IP_PROTO_UDP:
            # No stream, no monitor: one stateless scan per datagram.
            try:
                datagram = decode_udp(ip)
            except PacketError as exc:
                result.decode_error = type(exc).__name__
                return result
            except Exception:
                result.decode_error = "DecodeError"
                return result
            if datagram.payload and self.automaton is not None:
                self._scan(
                    flow_key_of(ip),
                    datagram.payload,
                    packet.timestamp,
                    result,
                    prescanned,
                )
            return result
        try:
            segment = decode_tcp(ip)
        except PacketError as exc:
            result.decode_error = type(exc).__name__
            return result
        except Exception:
            result.decode_error = "DecodeError"
            return result
        flow = flow_key_of(ip)
        if self.config.min_ttl and segment.payload and ip.ttl < self.config.min_ttl:
            result.divert = DivertReason.TTL_FLOOR
            result.detail = f"ttl={ip.ttl} < floor={self.config.min_ttl}"
        self._monitor(flow, segment, packet.timestamp, result)
        if segment.payload and self.automaton is not None:
            self._scan(flow, segment.payload, packet.timestamp, result, prescanned)
        if result.divert is not None:
            # Feed the per-flow anomaly counters: the sketch backend's
            # promotion signal (exact backends ignore this).
            self._flows.record_anomaly(flow)
        if self._trace_enabled:
            if result.divert is not None:
                # The detail string carries the expected/observed seq
                # pair from _check_progression (or the ttl/size bound).
                self.tracer.record(
                    flow,
                    "fast",
                    "anomaly",
                    packet.timestamp,
                    force=True,
                    cause=result.divert.value,
                    detail=result.detail,
                )
            if result.piece_hits:
                self.tracer.record(
                    flow,
                    "fast",
                    "piece_hit",
                    packet.timestamp,
                    force=True,
                    pieces=len(result.piece_hits),
                    sids=sorted({p.signature.sid for p in result.piece_hits}),
                )
        if segment.rst:
            # A reset tears down the whole connection: retire the monitor
            # entries for *both* directions, or the reverse one lives on
            # forever in the unbounded-table configuration.
            self._flows.pop(flow, None)
            self._flows.pop(flow.reversed(), None)
        elif segment.fin:
            # A FIN only half-closes: the sender is done sending, so only
            # the sender's direction entry is retired; the reverse
            # direction keeps its monitor until its own FIN or RST.
            self._flows.pop(flow, None)
        return result

    def expected_seq(self, flow: FlowKey) -> int | None:
        """The monitor's next expected sequence number for one direction.

        Handed to the slow path at diversion time so its reassembled
        stream starts exactly where in-order fast-path delivery stopped.
        This is a passive probe -- the flow did not just send a packet --
        so it reads via :meth:`~repro.core.state.StateBackend.peek` and
        leaves LRU order and hit/miss accounting untouched.
        """
        state = self._flows.peek(flow)
        return state.expected_seq if state else None

    def seed_flow(self, flow: FlowKey, expected_seq: int, now: float = 0.0) -> None:
        """Prime the monitor with a known stream position (used when a
        probationed flow returns from the slow path).

        ``now`` stamps the entry's ``last_seen``; without it a re-seeded
        flow looks 300+ seconds idle and the very next
        :meth:`evict_idle` sweep reclaims it before the flow sends
        another packet."""
        self._flows.put(flow, FlowState(expected_seq=expected_seq, last_seen=now))

    def forget_flow(self, flow: FlowKey) -> None:
        """Drop monitor state for both directions (called after diversion)."""
        self._flows.pop(flow, None)
        self._flows.pop(flow.reversed(), None)

    def evict_all(self) -> None:
        """Flush the monitor table (idle sweep hook for long runs)."""
        self._flows.clear()

    def evict_idle(
        self, now: float, idle_timeout: float = FASTPATH_IDLE_TIMEOUT
    ) -> int:
        """Reclaim monitor entries idle past the timeout; returns the count.

        Dead flows that never said goodbye (no FIN/RST seen, half-open
        scans, one-sided traffic) otherwise pin entries forever in the
        unbounded-dict configuration.  The sketch backend *demotes* idle
        hot flows to cold slots instead of dropping them."""
        count = self._flows.evict_idle(now, idle_timeout)
        if count and self._tel_on:
            self._c_evict_idle.inc(count)
            self._g_monitor.set(len(self._flows))
        return count

    def live_flows(self) -> set[FlowKey]:
        """Canonical keys of flows currently holding monitor entries."""
        return {flow.canonical() for flow, _ in self._flows.items()}

    def prescan(self, payloads: list[bytes]) -> list[list[tuple[int, int]]]:
        """Batch-scan raw payloads ahead of per-packet intake.

        The piece scan is stateless per packet, so a caller holding a
        batch can run one :meth:`~repro.match.DualAutomaton.scan_many`
        sweep and feed each packet's matches back via ``process``'s
        ``prescanned`` argument."""
        if self.automaton is None:
            return [[] for _ in payloads]
        return self.automaton.scan_many(payloads)

    def prescan_views(
        self, payloads: list[memoryview]
    ) -> list[list[tuple[int, int]]]:
        """:meth:`prescan` over shared-buffer memoryviews (columnar intake)."""
        if self.automaton is None:
            return [[] for _ in payloads]
        return self.automaton.prescan_batch(payloads)

    # -- columnar intake --------------------------------------------------

    def process_columns(
        self,
        flow: FlowKey,
        hits: list[tuple[int, int]] | None,
        proto: int,
        tok: int,
        plen: int,
        flags: int,
        ttl: int,
        seq: int,
        ts: float,
    ) -> str | None:
        """Fast-path verdict for one :class:`~repro.packet.batch.PacketBatch` row.

        The columnar engine loop interleaves its own per-row bookkeeping
        (diverted-set lookups, diversion side effects) between rows, so
        this consumes the batch one row at a time -- the caller passes
        the row's column values as scalars (it already holds the column
        arrays as locals; re-reading them here would double the hot
        loop's subscript work).  The contract is *flag-or-replicate*: a
        row is committed inline -- with exactly the monitor/scan side
        effects :meth:`process` would produce -- only when it is
        provably clean (decodes, passes TTL/tiny/order checks, has no
        automaton hits).  Anything else returns a materialization cause
        string and is replayed through the object path, which stays the
        single authority for anomalies, alerts, and error accounting.
        Over-flagging is therefore safe by construction; only the
        clean-commit path must (and does) mirror :meth:`_process` side
        effect for side effect.

        Returns ``None`` when the row was committed clean, else the
        cause (``decode_error``/``ttl``/``tiny``/``order``/``match``).
        The caller guarantees the row is non-fragment TCP/UDP on a
        non-diverted flow.
        """
        config = self.config
        if not tok:
            return "decode_error"
        if hits:
            return "match"
        tel_on = self._tel_on
        if proto == IP_PROTO_UDP:
            # Stateless datagram: no monitor, just scan accounting.
            self.packets_processed += 1
            if plen and self.automaton is not None:
                self.bytes_scanned += plen
                if tel_on:
                    self._c_bytes.inc(plen)
                    self._h_payload.observe(plen)
            if tel_on:
                self._c_packets.inc()
            return None
        syn = flags & TCP_SYN
        if config.min_ttl and plen and ttl < config.min_ttl:
            return "ttl"
        if not syn and plen:
            if config.check_tiny and not (flags & TCP_FIN) and plen < self.threshold:
                return "tiny"
            if config.check_order:
                state = self._flows.peek(flow)
                if (
                    state is not None
                    and state.expected_seq is not None
                    and seq != state.expected_seq
                ):
                    return "order"
        # Clean row: replicate _process/_monitor side effects inline.
        self.packets_processed += 1
        state = self._flows.get(flow)
        if state is None and (syn or plen):
            state = FlowState()
        if state is not None:
            # (A pure ACK with no monitor entry creates none -- the
            # FIN-handshake resurrection rule in _monitor.)
            state.last_seen = ts
            if syn:
                state.expected_seq = seq_add(
                    seq, plen + 1 + (1 if flags & TCP_FIN else 0)
                )
            elif plen:
                # In-order, midstream pickup, or order-check disabled:
                # all advance to this segment's end, as _check_progression
                # does for every non-diverting data segment.
                state.expected_seq = seq_add(
                    seq, plen + (1 if flags & TCP_FIN else 0)
                )
            self._flows.put(flow, state)
        if plen and self.automaton is not None:
            self.bytes_scanned += plen
            if tel_on:
                self._c_bytes.inc(plen)
                self._h_payload.observe(plen)
        if flags & TCP_RST:
            self._flows.pop(flow, None)
            self._flows.pop(flow.reversed(), None)
        elif flags & TCP_FIN:
            self._flows.pop(flow, None)
        if tel_on:
            self._c_packets.inc()
        return None

    def commit_passthrough_row(self) -> None:
        """Account one non-TCP/UDP row the fast path waves through.

        Mirrors :meth:`process` on a packet :meth:`_process` returns
        early for: the packet counter moves, nothing else does.
        """
        self.packets_processed += 1
        if self._tel_on:
            self._c_packets.inc()

    def finish_column_batch(self) -> None:
        """Batch-end gauge sample (`process` samples per packet; the
        columnar loop samples once, landing on the same final value)."""
        if self._tel_on:
            self._g_monitor.set(len(self._flows))

    # -- internals --------------------------------------------------------

    def _monitor(
        self,
        flow: FlowKey,
        segment: TcpSegment,
        timestamp: float,
        result: FastPathResult,
    ) -> None:
        """Sequence-progression and segment-size anomaly checks."""
        state = self._flows.get(flow)
        if state is None:
            if not segment.syn and not segment.payload:
                # A pure ACK carries no stream evidence worth monitoring;
                # creating an entry for it would let the final ACK of a
                # FIN handshake resurrect an already-closed direction.
                return
            state = FlowState()
        state.last_seen = timestamp
        result.flow_expected_seq = state.expected_seq
        self._check_progression(segment, state, result)
        # Write-back completes the read/mutate/write discipline: a no-op
        # for the dict (same object), the LRU position ``get`` already
        # granted for the table, and the only persistence point for the
        # sketch backend's cold slots.
        self._flows.put(flow, state)

    def _check_progression(
        self,
        segment: TcpSegment,
        state: FlowState,
        result: FastPathResult,
    ) -> None:
        if segment.syn:
            state.expected_seq = segment.end_seq
            return
        if not segment.payload:
            return
        if (
            self.config.check_tiny
            and not segment.fin
            and len(segment.payload) < self.threshold
            and result.divert is None
        ):
            result.divert = DivertReason.TINY_SEGMENT
            result.detail = f"{len(segment.payload)} < B={self.threshold}"
        if state.expected_seq is None:
            state.expected_seq = segment.end_seq  # midstream pickup
            return
        if self.config.check_order and segment.seq != state.expected_seq:
            if result.divert is None:
                ahead = seq_diff(segment.seq, state.expected_seq) > 0
                result.divert = (
                    DivertReason.OUT_OF_ORDER if ahead else DivertReason.RETRANSMISSION
                )
                result.detail = f"seq={segment.seq} expected={state.expected_seq}"
            return
        state.expected_seq = segment.end_seq

    def _scan(
        self,
        flow: FlowKey,
        payload: bytes,
        timestamp: float,
        result: FastPathResult,
        hits: list[tuple[int, int]] | None = None,
    ) -> None:
        """One automaton pass over the payload; state resets per packet.

        ``hits`` short-circuits the pass with matches a batched
        :meth:`prescan` already produced for this payload."""
        self.bytes_scanned += len(payload)
        if self._tel_on:
            self._c_bytes.inc(len(payload))
            self._h_payload.observe(len(payload))
        if hits is None:
            hits = self.automaton.find_all(payload)
        for entry_id, _end in hits:
            entry = self._entries[entry_id]
            if isinstance(entry, Piece):
                if not entry.signature.applies_to_flow(flow):
                    continue
                result.piece_hits.append(entry)
                if result.divert is None:
                    result.divert = DivertReason.PIECE_MATCH
                    result.detail = (
                        f"sid={entry.signature.sid} piece={entry.index}"
                    )
            else:  # whole signature occurrence within one packet
                if not entry.applies_to_flow(flow):
                    continue
                folded = entry.fold(payload)
                extras_here = all(
                    extra in folded for extra in entry.match_extras
                )
                if extras_here:
                    # Fully confirmed inside one packet: the alert IS the
                    # verdict, for TCP and UDP alike -- no slow-path round
                    # trip, which is scan_whole_signatures' contract.
                    # (Historically the TCP case also diverted via a
                    # SHORT_SIGNATURE fallthrough here, buying nothing:
                    # the slow path could only re-confirm what the alert
                    # already states.)  A *split* occurrence of the same
                    # signature elsewhere in the stream still diverts
                    # through its own piece hits.
                    result.alerts.append(
                        Alert(
                            kind=AlertKind.SIGNATURE,
                            flow=flow,
                            sid=entry.sid,
                            msg=entry.msg,
                            timestamp=timestamp,
                            path="fast",
                        )
                    )
                elif flow.protocol == IP_PROTO_TCP and result.divert is None:
                    # The extra contents may arrive elsewhere in the
                    # stream; let the slow path track completion.
                    result.divert = DivertReason.PIECE_MATCH
                    result.detail = f"sid={entry.sid} awaiting extra contents"
