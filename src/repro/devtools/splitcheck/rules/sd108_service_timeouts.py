"""SD108: blocking calls in the service layer must carry timeouts.

Invariant (PR 8): ``splitdetect serve`` is a long-lived daemon whose
loop must always come back to check its stop/reload events -- a single
unbounded blocking call in the ingest path turns SIGTERM's clean drain
into a hang.  Concretely, inside ``service/``:

- queue hand-offs -- ``.get(...)`` / ``.put(...)`` on a receiver that
  names a queue -- must pass an explicit ``timeout=`` (the ``_nowait``
  variants are inherently non-blocking and exempt);
- socket waits -- ``.accept(...)`` / ``.recv*(...)`` -- are only legal
  in a class that calls ``settimeout`` somewhere (the established
  pattern: the constructor or the loop entry arms the timeout once,
  every read under it polls);
- thread ``.join(...)`` calls must bound the wait with ``timeout=``.

The rule is scoped to ``service/`` alone: the runner's queue discipline
is different (its blocking puts are the lossless backpressure *feature*
and carry their own liveness polling, reviewed under SD103/SD106).
"""

from __future__ import annotations

import ast

from ..astutil import build_parents, enclosing_function
from ..engine import FileContext, Rule, register

__all__ = ["ServiceTimeoutRule"]

#: Queue methods that block without a timeout argument.
QUEUE_METHODS = frozenset({"get", "put"})

#: Socket methods that block until the peer acts.
SOCKET_METHODS = frozenset({"accept", "recv", "recv_into", "recvfrom"})

#: Receiver-name substrings marking a queue (so ``dict.get`` stays out).
QUEUE_TOKENS = ("queue",)

#: Receiver-name substrings marking a thread for ``.join``.
THREAD_TOKENS = ("thread",)


def _receiver_mentions(func: ast.Attribute, tokens: tuple[str, ...]) -> bool:
    for node in ast.walk(func.value):
        if isinstance(node, ast.Name) and any(
            token in node.id.lower() for token in tokens
        ):
            return True
        if isinstance(node, ast.Attribute) and any(
            token in node.attr.lower() for token in tokens
        ):
            return True
    return False


def _has_keyword(call: ast.Call, name: str) -> bool:
    return any(keyword.arg == name for keyword in call.keywords)


def _nonblocking(call: ast.Call) -> bool:
    """``block=False`` makes a queue get/put non-blocking without a timeout."""
    for keyword in call.keywords:
        if keyword.arg == "block" and isinstance(keyword.value, ast.Constant):
            if keyword.value.value is False:
                return True
    return False


def _enclosing_class(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.ClassDef | None:
    current = parents.get(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        current = parents.get(current)
    return None


def _calls_settimeout(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "settimeout"
        ):
            return True
    return False


@register
class ServiceTimeoutRule(Rule):
    id = "SD108"
    title = "blocking call in service/ without an explicit timeout"
    default_paths = ("*/repro/service/*.py",)

    def check(self, ctx: FileContext) -> None:
        parents = build_parents(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = node.func.attr
            if attr in QUEUE_METHODS and _receiver_mentions(
                node.func, QUEUE_TOKENS
            ):
                if _has_keyword(node, "timeout") or _nonblocking(node):
                    continue
                ctx.report(
                    self,
                    node,
                    f"queue .{attr}(...) without timeout= can block the "
                    "service loop forever; pass an explicit timeout or use "
                    f"{attr}_nowait()",
                )
            elif attr == "join" and _receiver_mentions(node.func, THREAD_TOKENS):
                if _has_keyword(node, "timeout"):
                    continue
                ctx.report(
                    self,
                    node,
                    "thread .join() without timeout= can hang shutdown; "
                    "bound the wait",
                )
            elif attr in SOCKET_METHODS:
                scope = _enclosing_class(node, parents)
                if scope is None:
                    scope = enclosing_function(node, parents) or ctx.tree
                if _calls_settimeout(scope):
                    continue
                ctx.report(
                    self,
                    node,
                    f"socket .{attr}(...) in a scope that never calls "
                    "settimeout() blocks unboundedly; arm a socket timeout "
                    "so the reader can notice shutdown",
                )
