"""SD202: the worker wire protocol is exhaustive in both directions.

Invariant (PR 3): shard workers speak ``(kind, shard, generation,
payload)`` tuples over the results queue, and the supervisor's merge
loop must dispatch on every kind a worker can emit -- a new delta or
heartbeat kind with no handler arm is a message class that silently
disappears, which is exactly the lossy-merge failure mode the
serial==parallel digest exists to rule out.  The reverse direction
matters too: a handler arm for a kind nothing emits is dead code or a
typo hiding a live kind.  Arities must agree so a protocol change can
never half-land.

Facts come from :mod:`..facts`: ``wire_puts`` are literal-kind tuples
put on a ``*out_queue``; ``wire_handles`` are comparisons on variables
unpacked from ``*out_queue.get()`` (one call level deep), so the
batching layer's unrelated ``"ctl"`` markers never enter the protocol.
"""

from __future__ import annotations

from ..project import ProjectContext, ProjectRule, register

__all__ = ["WireProtocolRule"]

EMITTER_PATHS = ("*/repro/runtime/worker.py",)
HANDLER_PATHS = ("*/repro/runtime/parallel.py",)


@register
class WireProtocolRule(ProjectRule):
    id = "SD202"
    title = "worker wire-protocol kind without a matching peer"
    default_paths = EMITTER_PATHS + HANDLER_PATHS

    def check_project(self, ctx: ProjectContext) -> None:
        root = ctx.config.root
        emitters = ctx.graph.facts_matching(EMITTER_PATHS, ctx.exclude, root=root)
        handlers = ctx.graph.facts_matching(HANDLER_PATHS, ctx.exclude, root=root)
        if not emitters or not handlers:
            return  # partial scans (one file given on the CLI) stay silent

        emitted: dict[str, tuple[str, int, int]] = {}
        put_arities: dict[int, tuple[str, int, int]] = {}
        for facts in emitters:
            for put in facts.wire_puts:
                emitted.setdefault(
                    put["kind"], (facts.path, put["lineno"], put["col"])
                )
                put_arities.setdefault(
                    put["arity"], (facts.path, put["lineno"], put["col"])
                )

        handled: dict[str, tuple[str, int, int]] = {}
        unpack_arities: dict[int, tuple[str, int, int]] = {}
        for facts in handlers:
            for handle in facts.wire_handles:
                site = (facts.path, handle["lineno"], handle.get("col", 0))
                if handle["kind"] is None:
                    unpack_arities.setdefault(handle["arity"], site)
                else:
                    handled.setdefault(handle["kind"], site)

        if not emitted or not handled:
            return

        for kind, (path, lineno, col) in sorted(emitted.items()):
            if kind not in handled:
                ctx.report(
                    self,
                    path,
                    lineno,
                    col,
                    f"worker emits wire kind {kind!r} but the supervisor has "
                    "no dispatch arm for it; the message would be silently "
                    "dropped at merge",
                )
        for kind, (path, lineno, col) in sorted(handled.items()):
            if kind not in emitted:
                ctx.report(
                    self,
                    path,
                    lineno,
                    col,
                    f"supervisor dispatches on wire kind {kind!r} but no "
                    "worker emits it (dead arm or misspelled kind)",
                )
        for arity, (path, lineno, col) in sorted(put_arities.items()):
            if unpack_arities and arity not in unpack_arities:
                ctx.report(
                    self,
                    path,
                    lineno,
                    col,
                    f"worker puts {arity}-tuples on the wire but the "
                    "supervisor unpacks "
                    f"{'/'.join(str(a) for a in sorted(unpack_arities))}-tuples",
                )
