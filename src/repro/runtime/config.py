"""Runner configuration shared by the serial and parallel front-ends."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .sharding import ShardPolicy

__all__ = ["Backpressure", "RunnerConfig"]


class Backpressure(enum.Enum):
    """What the feeder does when a shard's bounded queue is full."""

    BLOCK = "block"
    """Wait for the worker: lossless, the reader slows to the pipeline's
    pace (the IPS-on-a-tap equivalent of NIC flow control)."""

    SHED = "shed"
    """Drop the batch and count it: bounded latency, explicit loss --
    what a wire-speed appliance does when a shard falls behind.  Shed
    packets are never examined; the count is the coverage hole."""


@dataclass(frozen=True)
class RunnerConfig:
    """Knobs shared by :class:`SerialRunner` and :class:`ParallelRunner`."""

    batch_size: int = 256
    """Packets per routed batch (also the prescan amortization unit)."""

    shard_policy: ShardPolicy = ShardPolicy.FLOW
    """Shard-key policy; see :mod:`repro.runtime.sharding`."""

    backpressure: Backpressure = Backpressure.BLOCK
    """Full-queue behaviour (parallel runner only; the serial runner is
    synchronous and can never fall behind itself)."""

    queue_depth: int = 8
    """Bounded batches in flight per worker queue."""

    evict_interval: float | None = None
    """Seconds of *packet time* between automatic ``evict_idle`` sweeps
    on each shard.  ``None`` (default) disables the sweeps, preserving
    the historical behaviour where callers evict explicitly."""

    telemetry: bool = False
    """Give each shard its own :class:`TelemetryRegistry` and merge the
    snapshots into the combined report."""

    sample_state: bool = True
    """Sample peak state/flow occupancy after every shard batch (the
    run-harness convention); disable for pure-throughput benchmarks."""

    drain_timeout: float = 120.0
    """Seconds the parallel runner waits for a worker to flush its
    queue and report results after the drain sentinel, before declaring
    the run failed."""

    start_method: str | None = None
    """``multiprocessing`` start method (``fork``/``spawn``/...); None
    picks the platform default."""

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.evict_interval is not None and self.evict_interval <= 0:
            raise ValueError(
                f"evict_interval must be positive, got {self.evict_interval}"
            )
        if self.drain_timeout <= 0:
            raise ValueError(f"drain_timeout must be positive, got {self.drain_timeout}")
