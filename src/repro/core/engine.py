"""The Split-Detect IPS: fast path by default, slow path after diversion.

Routing rules:

- IP fragments always go to the slow path (the fast path never
  defragments); the first fragment additionally diverts its flow so the
  rest of the connection follows.
- A flow, once diverted, stays on the slow path until the connection
  closes there (RST, FIN in both directions, or idle eviction).
- A diversion feeds the *diverting packet itself* into the slow path, so
  the slow path's reassembled view starts with the packet that carried
  the anomaly or piece.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..packet import (
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    FlowKey,
    TimedPacket,
    decode_tcp,
    decode_udp,
    flow_key_of,
)
from ..signatures import ByteFrequencyModel, RuleSet, SplitPolicy, split_ruleset
from ..streams import OverlapPolicy
from .alerts import Alert, AlertKind, Diversion, DivertReason
from .fastpath import FastPath, FastPathConfig
from .slowpath import SlowPath

#: Diversion reasons eligible for probation (return to the fast path after
#: a clean interval).  Fragmented flows stay diverted -- fragments keep
#: arriving and the fast path cannot handle them; tiny-segment flows are
#: typically interactive and would bounce straight back; a short-signature
#: hit is already a confirmed alert.
PROBATION_REASONS = frozenset(
    {
        DivertReason.PIECE_MATCH,
        DivertReason.OUT_OF_ORDER,
        DivertReason.RETRANSMISSION,
    }
)


@dataclass
class EngineStats:
    """Counters the evaluation harness reads after a run."""

    packets_total: int = 0
    fast_packets: int = 0
    slow_packets: int = 0
    fast_bytes_scanned: int = 0
    slow_bytes_normalized: int = 0
    diversions: int = 0
    alerts: int = 0


class SplitDetectIPS:
    """The paper's system: split signatures, divert anomalies, confirm slowly."""

    def __init__(
        self,
        rules: RuleSet,
        *,
        split_policy: SplitPolicy | None = None,
        fast_config: FastPathConfig | None = None,
        overlap_policy: OverlapPolicy = OverlapPolicy.BSD,
        model: ByteFrequencyModel | None = None,
        probation_packets: int = 8,
        slow_capacity_flows: int | None = None,
        ensemble_policies: tuple[OverlapPolicy, ...] = (),
    ) -> None:
        self.split_rules = split_ruleset(rules, split_policy, model)
        self.fast_path = FastPath(self.split_rules, fast_config)
        self.slow_path = SlowPath(self.split_rules, policy=overlap_policy)
        self.ensemble_paths: list[SlowPath] = [
            SlowPath(self.split_rules, policy=policy)
            for policy in ensemble_policies
            if policy is not overlap_policy
        ]
        """Target-based ensemble: extra slow paths reassembling each diverted
        flow under additional overlap policies, so a signature is confirmed
        at SIGNATURE level no matter which policy the victim runs (a lone
        slow path would still flag the overlap as AMBIGUITY, but could not
        name the signature when its own policy reconstructs the decoy).
        Costs one reassembly state set per extra policy -- the trade
        Shankar-Paxson active mapping avoids by learning host policies."""
        self.probation_packets = probation_packets
        """After a probation-eligible diversion, how many clean slow-path
        packets before the flow is handed back to the fast path.  The
        hand-off only happens when ``SlowPath.safe_to_release`` certifies
        that no signature occurrence can straddle it.  0 disables
        probation (every diversion is then permanent, as in the ablation)."""

        self.slow_capacity_flows = slow_capacity_flows
        """Provisioned slow-path flow capacity.  When full, further
        diversions run *fail-open*: the flow stays on the fast path
        (pieces and whole patterns still scanned per packet) and a
        RESOURCE alert records the degraded coverage.  None = unbounded
        (the evaluation default)."""

        self._diverted: set[FlowKey] = set()
        self._probation: dict[FlowKey, int] = {}
        self.diversions: list[Diversion] = []
        self.divert_reasons: Counter[DivertReason] = Counter()
        self.reinstated_flows = 0
        self.overload_refusals = 0
        self._refused: set[FlowKey] = set()
        self.stats = EngineStats()

    # -- accounting ------------------------------------------------------

    def state_bytes(self) -> int:
        """Total per-flow state across both paths (and ensemble replicas)."""
        return (
            self.fast_path.state_bytes()
            + self.slow_path.state_bytes()
            + sum(path.state_bytes() for path in self.ensemble_paths)
        )

    @property
    def diverted_flow_count(self) -> int:
        """Flows currently routed to the slow path."""
        return len(self._diverted)

    def is_diverted(self, flow: FlowKey) -> bool:
        """True when the flow is currently on the slow path."""
        return flow.canonical() in self._diverted

    # -- packet intake ------------------------------------------------------

    def process(
        self,
        packet: TimedPacket,
        _prescanned: list[tuple[int, int]] | None = None,
    ) -> list[Alert]:
        """Route one packet through the fast or slow path; returns alerts."""
        self.stats.packets_total += 1
        ip = packet.ip
        if ip.protocol in (IP_PROTO_TCP, IP_PROTO_UDP) and ip.is_fragment:
            if not self.fast_path.config.divert_fragments:
                # Ablation variant: an IPS that ignores fragmentation lets
                # fragments through unexamined (and is evadable by them).
                self.stats.fast_packets += 1
                return []
            # All fragments are slow-path work; the first one names the flow.
            if ip.fragment_offset == 0:
                try:
                    frag_flow = flow_key_of(ip)
                except ValueError:
                    frag_flow = None
                if frag_flow is not None:
                    if not self._divert(
                        frag_flow, DivertReason.IP_FRAGMENT, packet.timestamp
                    ):
                        # Overloaded: fail open, fragment passes unexamined.
                        self.stats.fast_packets += 1
                        return self._refusal_alert(frag_flow, packet.timestamp)
                    # Hand the monitor's stream positions to the slow path,
                    # exactly as in the TCP divert path -- the SYN (or any
                    # in-order data) already passed through the fast path.
                    for direction in (frag_flow, frag_flow.reversed()):
                        expected = self.fast_path.expected_seq(direction)
                        if expected is not None:
                            self._hint_all(direction, expected)
                    self.fast_path.forget_flow(frag_flow)
            return self._to_slow(packet)
        flow: FlowKey | None = None
        if ip.protocol in (IP_PROTO_TCP, IP_PROTO_UDP):
            try:
                flow = flow_key_of(ip)
            except ValueError:
                flow = None
        if flow is not None and flow.canonical() in self._diverted:
            return self._to_slow(packet, flow)
        self.stats.fast_packets += 1
        before = self.fast_path.bytes_scanned
        result = self.fast_path.process(packet, _prescanned)
        self.stats.fast_bytes_scanned += self.fast_path.bytes_scanned - before
        alerts = list(result.alerts)
        self.stats.alerts += len(alerts)
        if result.divert is not None and flow is not None:
            if not self._divert(flow, result.divert, packet.timestamp, result.detail):
                alerts.extend(self._refusal_alert(flow, packet.timestamp))
                return alerts
            # Anchor the slow path's streams where in-order delivery stopped,
            # so reordered data below the diverting packet is not mistaken
            # for retransmission.
            if result.flow_expected_seq is not None:
                self._hint_all(flow, result.flow_expected_seq)
            reverse_expected = self.fast_path.expected_seq(flow.reversed())
            if reverse_expected is not None:
                self._hint_all(flow.reversed(), reverse_expected)
            self.fast_path.forget_flow(flow)
            alerts.extend(self._to_slow(packet, flow))
        return alerts

    def process_batch(self, packets: list[TimedPacket]) -> list[Alert]:
        """Route a batch of packets; returns all alerts in packet order.

        Packet-for-packet identical to calling :meth:`process` in order.
        The batch exists because the fast path's piece scan is stateless
        per packet: every payload that would reach it is scanned up front
        in one :meth:`~repro.match.DualAutomaton.scan_many` sweep, and
        the per-packet routing then consumes the precomputed matches.
        A flow that diverts mid-batch merely wastes its remaining
        prescans; one reinstated mid-batch falls back to inline scans.
        """
        packets = list(packets)
        prescanned: list[list[tuple[int, int]] | None] | None = None
        if self.fast_path.automaton is not None and len(packets) > 1:
            payloads: list[bytes] = []
            slots: list[int] = []
            for index, packet in enumerate(packets):
                payload = self._scan_candidate(packet)
                if payload:
                    payloads.append(payload)
                    slots.append(index)
            if payloads:
                prescanned = [None] * len(packets)
                for slot, hits in zip(slots, self.fast_path.prescan(payloads)):
                    prescanned[slot] = hits
        alerts: list[Alert] = []
        if prescanned is None:
            for packet in packets:
                alerts.extend(self.process(packet))
        else:
            for packet, hits in zip(packets, prescanned):
                alerts.extend(self.process(packet, hits))
        return alerts

    def _scan_candidate(self, packet: TimedPacket) -> bytes | None:
        """The payload the fast path would scan for this packet, if any."""
        ip = packet.ip
        if ip.protocol not in (IP_PROTO_TCP, IP_PROTO_UDP) or ip.is_fragment:
            return None
        try:
            flow = flow_key_of(ip)
        except ValueError:
            return None
        if flow.canonical() in self._diverted:
            return None
        try:
            if ip.protocol == IP_PROTO_TCP:
                return decode_tcp(ip).payload or None
            return decode_udp(ip).payload or None
        except Exception:
            return None

    def _hint_all(self, direction: FlowKey, expected: int) -> None:
        self.slow_path.hint_stream_start(direction, expected)
        for path in self.ensemble_paths:
            path.hint_stream_start(direction, expected)

    def _refusal_alert(self, flow: FlowKey, timestamp: float) -> list[Alert]:
        """One RESOURCE alert per refused flow, so overload is visible."""
        canonical = flow.canonical()
        if canonical in self._refused:
            return []
        self._refused.add(canonical)
        return [
            Alert(
                kind=AlertKind.RESOURCE,
                flow=flow,
                msg=f"slow path at capacity ({self.slow_capacity_flows} flows); fail-open",
                timestamp=timestamp,
                path="fast",
            )
        ]

    def _divert(
        self, flow: FlowKey, reason: DivertReason, timestamp: float, detail: str = ""
    ) -> bool:
        """Move a flow to the slow path; False when refused for capacity."""
        canonical = flow.canonical()
        if canonical in self._diverted:
            return True
        if (
            self.slow_capacity_flows is not None
            and self.slow_path.active_flows >= self.slow_capacity_flows
        ):
            self.overload_refusals += 1
            return False
        self._diverted.add(canonical)
        if self.probation_packets and reason in PROBATION_REASONS:
            self._probation[canonical] = self.probation_packets
        self.diversions.append(
            Diversion(flow=flow, reason=reason, timestamp=timestamp, detail=detail)
        )
        self.divert_reasons[reason] += 1
        self.stats.diversions += 1
        return True

    def _to_slow(self, packet: TimedPacket, flow: FlowKey | None = None) -> list[Alert]:
        self.stats.slow_packets += 1
        before = self.slow_path.bytes_normalized
        alerts = self.slow_path.process(packet)
        self.stats.slow_bytes_normalized += self.slow_path.bytes_normalized - before
        if self.ensemble_paths:
            seen = {(a.kind, a.sid, a.flow, a.stream_offset) for a in alerts}
            for path in self.ensemble_paths:
                for alert in path.process(packet):
                    key = (alert.kind, alert.sid, alert.flow, alert.stream_offset)
                    if key not in seen:
                        seen.add(key)
                        alerts.append(alert)
        self.stats.alerts += len(alerts)
        if flow is not None:
            canonical = flow.canonical()
            if canonical in self._diverted and canonical not in self.slow_path.normalizer.live_flows():
                # The connection ended on the slow path; a future flow with
                # the same five-tuple starts fresh on the fast path.
                self._diverted.discard(canonical)
                self._probation.pop(canonical, None)
            elif canonical in self._probation:
                self._tick_probation(canonical, alerts)
        return alerts

    def _tick_probation(self, canonical: FlowKey, alerts: list[Alert]) -> None:
        """Count down a diverted flow's probation; reinstate when clean.

        Any alert makes the diversion permanent.  Reinstatement waits for
        the slow path to certify that no pattern occurrence straddles the
        hand-off (open automaton prefixes, buffered out-of-order bytes).
        """
        if any(a.flow is not None and a.flow.canonical() == canonical for a in alerts):
            del self._probation[canonical]
            return
        self._probation[canonical] -= 1
        if self._probation[canonical] > 0:
            return
        if not self.slow_path.safe_to_release(canonical):
            return  # re-check on the next packet
        del self._probation[canonical]
        self._diverted.discard(canonical)
        for direction, expected in self.slow_path.release_flow(canonical).items():
            self.fast_path.seed_flow(direction, expected)
        for path in self.ensemble_paths:
            path.release_flow(canonical)
        self.reinstated_flows += 1

    def evict_idle(self, now: float) -> None:
        """Expire idle state everywhere (long-run housekeeping).

        Besides the slow-path reassembly state this must prune every
        engine-side per-flow record -- ``_diverted``, ``_probation``,
        ``_refused`` -- and the fast path's monitor entries, all of which
        otherwise grow without bound across long runs as flows die
        without a clean close."""
        self.slow_path.evict_idle(now)
        for path in self.ensemble_paths:
            path.evict_idle(now)
        self.fast_path.evict_idle(now, self.slow_path.normalizer.idle_timeout)
        slow_live = self.slow_path.normalizer.live_flows()
        self._diverted &= slow_live
        for canonical in [k for k in self._probation if k not in slow_live]:
            del self._probation[canonical]
        # A refused (fail-open) flow lives on the fast path; it is dead
        # once neither path tracks it, and forgetting it re-arms the
        # once-per-flow RESOURCE alert for any future five-tuple reuse.
        self._refused &= slow_live | self.fast_path.live_flows()
