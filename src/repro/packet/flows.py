"""Flow keys and convenience constructors tying the IP and TCP layers together.

The IPS pipeline identifies a flow by its five-tuple.  ``FlowKey`` is
hashable and direction-sensitive; ``FlowKey.canonical()`` gives the
direction-insensitive form used when both directions share state.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ip import IP_PROTO_TCP, IP_PROTO_UDP, IPv4Packet
from .tcp import TcpSegment


@dataclass(frozen=True, slots=True)
class FlowKey:
    """A directional five-tuple identifying one side of a conversation."""

    src: str
    dst: str
    src_port: int
    dst_port: int
    protocol: int = IP_PROTO_TCP

    def reversed(self) -> "FlowKey":
        """The same conversation viewed from the other endpoint."""
        return FlowKey(self.dst, self.src, self.dst_port, self.src_port, self.protocol)

    def canonical(self) -> "FlowKey":
        """A direction-insensitive key: the lexicographically smaller endpoint first."""
        if (self.src, self.src_port) <= (self.dst, self.dst_port):
            return self
        return self.reversed()

    def __str__(self) -> str:
        return f"{self.src}:{self.src_port} -> {self.dst}:{self.dst_port}/{self.protocol}"


@dataclass(frozen=True, slots=True)
class TimedPacket:
    """An IPv4 packet stamped with its capture time in seconds."""

    timestamp: float
    ip: IPv4Packet


def flow_key_of(packet: IPv4Packet) -> FlowKey:
    """Extract the directional five-tuple of a TCP/UDP packet.

    For a fragmented packet only the first fragment carries the transport
    header; callers must defragment first (``ValueError`` otherwise).
    Ports are zero for protocols without them.
    """
    if packet.is_fragment and packet.fragment_offset > 0:
        raise ValueError("non-first fragment carries no transport header")
    src_port = dst_port = 0
    if packet.protocol in (IP_PROTO_TCP, IP_PROTO_UDP) and len(packet.payload) >= 4:
        src_port = int.from_bytes(packet.payload[0:2], "big")
        dst_port = int.from_bytes(packet.payload[2:4], "big")
    return FlowKey(packet.src, packet.dst, src_port, dst_port, packet.protocol)


def build_tcp_packet(
    src: str,
    dst: str,
    segment: TcpSegment,
    *,
    ttl: int = 64,
    identification: int = 0,
    dont_fragment: bool = True,
) -> IPv4Packet:
    """Wrap a ``TcpSegment`` in an IPv4 packet with a valid TCP checksum."""
    return IPv4Packet(
        src=src,
        dst=dst,
        protocol=IP_PROTO_TCP,
        payload=segment.serialize(src, dst),
        ttl=ttl,
        identification=identification,
        dont_fragment=dont_fragment,
    )


def decode_tcp(packet: IPv4Packet, *, strict: bool = False) -> TcpSegment:
    """Parse the TCP segment out of a non-fragmented IPv4 packet."""
    if packet.protocol != IP_PROTO_TCP:
        raise ValueError(f"not a TCP packet (protocol {packet.protocol})")
    if packet.is_fragment:
        raise ValueError("cannot decode TCP from an IP fragment; defragment first")
    return TcpSegment.parse(
        packet.payload, src_ip=packet.src, dst_ip=packet.dst, strict=strict
    )
