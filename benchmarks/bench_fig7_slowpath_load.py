"""Figure 7 -- slow-path load as the attacker fraction grows.

An attacker cannot melt the slow path for free: only flows that
misbehave (or contain pieces) are diverted, and each diverted attack
flow is also *detected*.  The sweep raises the fraction of attack flows
from 0 to ~10% and reports slow-path byte share and detection counts.
Shape: slow-path load grows roughly linearly with the attack fraction,
benign diversion stays flat, and every attack flow alerts.
"""

import sys

from exp_common import (
    ATTACK_OFFSET,
    ATTACK_SIGNATURE,
    benign_trace,
    detected,
    emit,
    gauntlet_payload,
)
from repro.core import SplitDetectIPS
from repro.evasion import build_attack
from repro.metrics import run_split_detect
from repro.signatures import RuleSet, Signature, load_bundled_rules
from repro.traffic import inject_attacks

ATTACK_COUNTS = (0, 2, 5, 10, 20, 30)
BENIGN_FLOWS = 250


def ruleset() -> RuleSet:
    rules = load_bundled_rules()
    rules.add(Signature(sid=3001, pattern=ATTACK_SIGNATURE, msg="gauntlet target"))
    return rules


def build_mixed(attack_count: int):
    trace = benign_trace(flows=BENIGN_FLOWS, seed=41)
    strategies = ["tcp_seg_8", "ip_frag_8", "stealth_segments", "tcp_reorder"]
    attacks = [
        build_attack(
            strategies[i % len(strategies)],
            gauntlet_payload(),
            signature_span=(ATTACK_OFFSET, len(ATTACK_SIGNATURE)),
            src=f"10.66.{i // 250}.{i % 250 + 1}",
            seed=i,
        )
        for i in range(attack_count)
    ]
    return inject_attacks(trace, attacks)


def series_rows() -> list[str]:
    rules = ruleset()
    lines = [
        f"{'attacks':>8} {'attack%':>8} {'diverted':>9} {'slow bytes%':>11} "
        f"{'sig alerts':>10} {'caught':>7}"
    ]
    for count in ATTACK_COUNTS:
        trace = build_mixed(count)
        ips = SplitDetectIPS(rules)
        report = run_split_detect(ips, trace, sample_every=500)
        attack_alerts = {
            a.flow.canonical()
            for a in report.alerts
            if a.sid == 3001 and a.flow is not None
        }
        lines.append(
            f"{count:>8} {count / (BENIGN_FLOWS + count):>8.1%} "
            f"{report.diverted_flows:>9} {report.diversion_byte_fraction:>11.1%} "
            f"{len([a for a in report.alerts if a.sid == 3001]):>10} "
            f"{len(attack_alerts):>4}/{count:<3}"
        )
    return lines


def overload_rows() -> list[str]:
    """Second panel: a provisioned (capacity-limited) slow path under flood."""
    rules = ruleset()
    trace = build_mixed(30)
    lines = [
        "",
        "with a provisioned slow path (fail-open beyond capacity):",
        f"{'capacity':>9} {'refusals':>9} {'resource alerts':>15} {'attacks caught':>14}",
    ]
    for capacity in (None, 20, 10, 5):
        ips = SplitDetectIPS(rules, slow_capacity_flows=capacity, probation_packets=0)
        report = run_split_detect(ips, trace, sample_every=500)
        from repro.core import AlertKind

        resource = sum(1 for a in report.alerts if a.kind is AlertKind.RESOURCE)
        caught = len(
            {
                a.flow.canonical()
                for a in report.alerts
                if a.sid == 3001 and a.flow is not None
            }
        )
        lines.append(
            f"{str(capacity or 'inf'):>9} {ips.overload_refusals:>9} "
            f"{resource:>15} {caught:>10}/30"
        )
    return lines


def test_fig7_slowpath_load(benchmark, capfd):
    rules = ruleset()
    trace = build_mixed(10)

    def run():
        ips = SplitDetectIPS(rules)
        return run_split_detect(ips, trace, sample_every=500)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    caught = {
        a.flow.canonical() for a in report.alerts if a.sid == 3001 and a.flow is not None
    }
    assert len(caught) == 10  # every attack flow detected
    emit("fig7_slowpath_load", series_rows() + overload_rows(), capfd)


if __name__ == "__main__":
    print("\n".join(series_rows() + overload_rows()), file=sys.stderr)
