"""Module entry point: ``python -m repro``."""

from .cli import main

raise SystemExit(main())
