"""TCP reassembly, IP defragmentation, and traffic normalization.

The substrate a conventional IPS stands on -- and the slow path of
Split-Detect.  See DESIGN.md for how the pieces fit.
"""

from .active import ActiveNormalizer, ShadowStream
from .defrag import DefragResult, IpDefragmenter
from .events import StreamEvent, StreamEventRecord
from .normalizer import (
    FLOW_OVERHEAD_BYTES,
    NormalizedOutput,
    StreamNormalizer,
)
from .policies import OverlapPolicy, ambiguous_policies, resolve_overlap
from .reassembly import ReassemblyResult, TcpReassembler

__all__ = [
    "ActiveNormalizer",
    "DefragResult",
    "FLOW_OVERHEAD_BYTES",
    "IpDefragmenter",
    "NormalizedOutput",
    "OverlapPolicy",
    "ReassemblyResult",
    "ShadowStream",
    "StreamEvent",
    "StreamEventRecord",
    "StreamNormalizer",
    "TcpReassembler",
    "ambiguous_policies",
    "resolve_overlap",
]
