"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, tmp_path):
    args = [sys.executable, str(script)]
    if script.name == "enterprise_monitor.py":
        args.append(str(tmp_path / "out.pcap"))
    result = subprocess.run(
        args, capture_output=True, text=True, timeout=300
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they demonstrate"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4
