"""The multiprocessing runner: flow-hashed shards with bounded queues.

Topology: one feeder (this process) routes batches onto N bounded
per-worker queues; each worker owns one shard -- a private engine built
from the shared :class:`EngineSpec` -- and reports a
:class:`ShardReport` back on a results queue at drain time.  There is no
cross-shard communication at all during the run; the flow-consistent
hash (:mod:`repro.runtime.sharding`) is what makes that sound.

Backpressure is explicit: a full queue either blocks the feeder
(lossless, the default) or sheds the batch and counts every dropped
packet (:class:`~repro.runtime.config.Backpressure`).  Shutdown is a
graceful drain -- a sentinel per queue, workers flush everything already
enqueued, then report -- so no in-flight batch is ever lost on the
lossless path.

Two failure regimes, selected by ``RunnerConfig.max_restarts``:

- **legacy fail-fast** (``max_restarts == 0``, the default): any worker
  death or engine error raises :class:`WorkerFailure` and the whole run
  aborts -- appropriate for correctness tests, where a failure must be
  loud.
- **supervised** (``max_restarts > 0``): the feeder doubles as a
  supervisor.  Workers heartbeat and flush result deltas (see
  :mod:`repro.runtime.worker`); a dead, hung, or erroring worker is
  replaced with a fresh engine on the *same* input queue (bounded
  restarts, exponential backoff), so batches enqueued but not yet
  consumed survive the failure.  Whatever did not survive -- packets
  consumed but never confirmed by a delta, flow state, unflushed alerts
  -- is recorded as a :class:`~repro.runtime.report.DegradedInterval` in
  the merged report.  Coverage degrades; it never degrades *silently*.

Known limitation, accepted and documented: a worker that dies while
holding a shared queue's internal lock (mid-``get``/``put``) can wedge
the survivors.  Injected crashes fire between batches, never inside
queue operations, and real mid-pipe deaths additionally trip the
heartbeat timeout, whereupon the run ends with loss accounted rather
than hanging forever (the drain deadline backstops the rest).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from collections.abc import Iterable, Iterator
from time import monotonic, perf_counter
from typing import Any

from ..packet import TimedPacket
from ..packet.batch import PacketBatch
from .batching import iter_batches_with_controls, rebatch_columns
from .config import Backpressure, RunnerConfig
from .control import ControlMessage
from .quarantine import PacketSource, Quarantine, decode_packets
from .report import (
    DegradedInterval,
    RuntimeReport,
    ShardDelta,
    ShardReport,
    merge_shard_reports,
)
from .sharding import ShardRouter
from .spec import EngineSpec
from .worker import DRAIN, shard_worker_main

__all__ = ["ParallelRunner", "WorkerFailure"]

#: Seconds between liveness checks while a blocking put waits on a full
#: queue (a dead worker must not hang the feeder forever).
_PUT_POLL_SECONDS = 0.5

#: Seconds the supervisor's drain loop waits per results-queue read
#: between liveness sweeps.
_DRAIN_POLL_SECONDS = 0.1

def _bucket_first_ts(bucket: "list[TimedPacket] | PacketBatch") -> float:
    """Timestamp of a non-empty bucket's first packet (either kind)."""
    if isinstance(bucket, PacketBatch):
        return bucket.first_ts
    return bucket[0].timestamp


class WorkerFailure(RuntimeError):
    """A shard worker died or reported an engine error."""


class _Seat:
    """Supervisor-side state for one shard slot across restarts."""

    def __init__(self, index: int, in_queue: Any, process: Any) -> None:
        self.index = index
        self.in_queue = in_queue
        self.process = process
        self.generation = 0
        self.restarts_used = 0
        self.dead = False
        """Restart budget exhausted: no process, traffic counts as lost."""

        self.finished = False
        """Final ``ok`` report received for the current generation."""

        self.routed_packets = 0
        self.routed_batches = 0
        """Work actually enqueued to this seat (all generations); the
        basis of the loss accounting ``routed - accounted``."""

        self.accounted_packets = 0
        self.accounted_batches = 0
        """Work confirmed by finished generations: final reports plus
        the last delta of each failed generation."""

        self.dead_dropped_packets = 0
        self.dead_dropped_batches = 0
        """Traffic that arrived after the seat died (never enqueued)."""

        self.chunks: list = []
        """Alert chunks flushed by the current generation's deltas."""

        self.last_delta: ShardDelta | None = None
        self.last_seen = monotonic()
        self.reports: list[ShardReport] = []
        """Salvaged partials from failed generations + the final report."""

        self.open_interval: DegradedInterval | None = None
        """The latest failure's interval, until the replacement confirms
        it is processing traffic again (which closes it)."""


class ParallelRunner:
    """N shared-nothing engine shards in worker processes."""

    def __init__(
        self,
        spec: EngineSpec,
        *,
        workers: int,
        config: RunnerConfig | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers = workers
        self.config = config or RunnerConfig()
        self.router = ShardRouter(workers, self.config.shard_policy)

    # -- shared plumbing -------------------------------------------------

    def _spawn(self, ctx: Any, shard: int, generation: int, in_queue: Any, out_queue: Any) -> Any:
        process = ctx.Process(
            target=shard_worker_main,
            args=(shard, generation, self.spec, self.config, in_queue, out_queue),
            daemon=True,
            name=f"repro-shard-{shard}-g{generation}",
        )
        process.start()
        return process

    @staticmethod
    def _reap(processes: list[Any], in_queues: list[Any], out_queue: Any) -> None:
        """Leave no zombie process or stuck feeder thread behind.

        Runs on every exit path, successful or not.  Ordering matters:
        nudge blocked workers with a best-effort sentinel, escalate
        join -> terminate -> kill until every child is gone, then drain
        the queues (releasing their background feeder threads, which
        otherwise block forever writing to a full pipe nobody reads) and
        close everything, including the ``Process`` objects themselves.
        """
        for in_queue in in_queues:
            try:
                in_queue.put_nowait(DRAIN)
            except (queue_mod.Full, ValueError, OSError):
                pass
        live = [p for p in processes if p is not None]
        for process in live:
            process.join(timeout=2.0)
        for process in live:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for process in live:
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        for some_queue in [*in_queues, out_queue]:
            while True:
                try:
                    some_queue.get_nowait()
                except (queue_mod.Empty, ValueError, OSError):
                    break
            some_queue.close()
            some_queue.cancel_join_thread()
        for process in live:
            try:
                process.close()
            except ValueError:
                pass  # unkillable straggler; nothing more we can do

    def _split_buckets(
        self, item: "list[TimedPacket] | PacketBatch"
    ) -> "Iterator[tuple[int, list[TimedPacket] | PacketBatch]]":
        """Yield non-empty ``(shard, bucket)`` pairs for one input batch.

        Columnar batches are routed off the precomputed hash columns and
        compacted (fresh buffer holding just the selected records) so a
        pickle to the worker never ships the whole capture file.
        """
        if isinstance(item, PacketBatch):
            if self.workers == 1:
                yield 0, item.compact()
                return
            for index, rows in enumerate(item.shard_rows(self.router)):
                if rows:
                    yield index, item.select(rows).compact()
            return
        buckets: list[list[TimedPacket]] = [[] for _ in range(self.workers)]
        shard_of = self.router.shard_of
        for packet in item:
            buckets[shard_of(packet)].append(packet)
        for index, bucket in enumerate(buckets):
            if bucket:
                yield index, bucket

    def _columnar_items(
        self, batches: Iterable[PacketBatch], quarantine: Quarantine
    ) -> "Iterator[tuple[str, PacketBatch]]":
        """Adapt a columnar stream to the feeder loops' item protocol.

        Reader-side quarantined exceptions are absorbed into the feeder
        ledger here -- they never cross a process boundary (SD103)."""
        for batch in rebatch_columns(batches, self.config.batch_size):
            for exc in batch.quarantined:
                quarantine.add(exc)
            if batch:
                yield "batch", batch

    # -- legacy fail-fast path -------------------------------------------

    def _put_blocking(
        self,
        in_queue: Any,
        item: "list[TimedPacket] | PacketBatch | None",
        process: Any,
        shard: int,
    ) -> None:
        """Lossless enqueue: wait for the worker, but notice if it died."""
        while True:
            try:
                in_queue.put(item, timeout=_PUT_POLL_SECONDS)
                return
            except queue_mod.Full:
                if not process.is_alive():
                    raise WorkerFailure(
                        f"shard {shard} worker exited with its queue full"
                    ) from None

    def run(self, packets: PacketSource) -> RuntimeReport:
        """Route, process in parallel, drain gracefully, merge.

        Accepts parsed :class:`TimedPacket` streams (zero-cost
        passthrough) or raw ``(timestamp, bytes)`` records, which are
        decoded here with malformed frames quarantined rather than
        raised (see :mod:`repro.runtime.quarantine`).
        """
        if self.config.supervised:
            return self._run_supervised(packets)
        return self._run_legacy(packets)

    def run_columnar(self, batches: Iterable[PacketBatch]) -> RuntimeReport:
        """Route, process in parallel, and merge a columnar batch stream.

        Same topology, backpressure, supervision, and merge as
        :meth:`run`; the input is :class:`~repro.packet.batch.PacketBatch`
        columns (see :func:`repro.pcap.read_column_batches`) and each
        shard's engine consumes its routed column slices directly.
        """
        if self.config.faults is not None:
            raise ValueError("fault injection is incompatible with columnar ingest")
        if self.config.supervised:
            return self._run_supervised(batches, columnar=True)
        return self._run_legacy(batches, columnar=True)

    def _run_legacy(
        self, packets: Any, *, columnar: bool = False
    ) -> RuntimeReport:
        config = self.config
        ctx = mp.get_context(config.start_method)
        in_queues = [ctx.Queue(maxsize=config.queue_depth) for _ in range(self.workers)]
        out_queue = ctx.Queue()
        start = perf_counter()
        processes = [
            self._spawn(ctx, index, 0, in_queues[index], out_queue)
            for index in range(self.workers)
        ]
        quarantine = Quarantine()
        shed_packets = 0
        shed_batches = 0
        batches_routed = 0
        shed = config.backpressure is Backpressure.SHED
        interrupted = False
        try:
            if columnar:
                items: Any = self._columnar_items(packets, quarantine)
            else:
                stream = decode_packets(packets, quarantine)
                items = iter_batches_with_controls(stream, config.batch_size)
            try:
                for kind, item in items:
                    if kind == "ctl":
                        # Controls are lossless even under shed: dropping
                        # a reload would silently split the fleet across
                        # rule generations.
                        for index, in_queue in enumerate(in_queues):
                            self._put_blocking(in_queue, item, processes[index], index)
                        continue
                    for index, bucket in self._split_buckets(item):
                        if shed:
                            try:
                                in_queues[index].put_nowait(bucket)
                                batches_routed += 1
                            except queue_mod.Full:
                                shed_packets += len(bucket)
                                shed_batches += 1
                        else:
                            self._put_blocking(
                                in_queues[index], bucket, processes[index], index
                            )
                            batches_routed += 1
            except KeyboardInterrupt:
                # First interrupt: stop feeding, fall through to the
                # normal sentinel drain so every enqueued batch is
                # flushed and the caller gets a *partial* report instead
                # of a traceback.  A second interrupt during the drain
                # propagates (force quit; _reap still runs).
                interrupted = True
            # Graceful drain: one sentinel per queue *after* all batches;
            # workers flush everything already enqueued before reporting.
            for index, in_queue in enumerate(in_queues):
                self._put_blocking(in_queue, DRAIN, processes[index], index)
            reports: dict[int, Any] = {}
            errors: dict[int, str] = {}
            deadline = monotonic() + config.drain_timeout
            for _ in range(self.workers):
                remaining = deadline - monotonic()
                if remaining <= 0:
                    raise WorkerFailure(
                        f"drain timed out; shards reporting: {sorted(reports)}"
                    )
                try:
                    status, shard, _generation, payload = out_queue.get(timeout=remaining)
                except queue_mod.Empty:
                    raise WorkerFailure(
                        f"drain timed out; shards reporting: {sorted(reports)}"
                    ) from None
                if status == "ok":
                    reports[shard] = payload
                else:
                    errors[shard] = payload
            if errors:
                detail = "\n".join(
                    f"--- shard {shard} ---\n{tb}" for shard, tb in sorted(errors.items())
                )
                raise WorkerFailure(f"{len(errors)} shard worker(s) failed:\n{detail}")
        finally:
            self._reap(processes, in_queues, out_queue)
        return merge_shard_reports(
            list(reports.values()),
            mode="parallel",
            workers=self.workers,
            wall_seconds=perf_counter() - start,
            batches_routed=batches_routed,
            shed_packets=shed_packets,
            shed_batches=shed_batches,
            quarantined=dict(quarantine.counts),
            interrupted=interrupted,
        )

    # -- supervised path --------------------------------------------------

    def _run_supervised(
        self, packets: Any, *, columnar: bool = False
    ) -> RuntimeReport:
        config = self.config
        ctx = mp.get_context(config.start_method)
        out_queue = ctx.Queue()
        seats: list[_Seat] = []
        for index in range(self.workers):
            in_queue = ctx.Queue(maxsize=config.queue_depth)
            seats.append(
                _Seat(index, in_queue, self._spawn(ctx, index, 0, in_queue, out_queue))
            )
        quarantine = Quarantine()
        degraded: list[DegradedInterval] = []
        restarts = 0
        shed_packets = 0
        shed_batches = 0
        batches_routed = 0
        shed = config.backpressure is Backpressure.SHED
        start = perf_counter()
        drain_started = False
        last_controls: dict[str, ControlMessage] = {}

        def fail_seat(seat: _Seat, reason: str, detail: str) -> None:
            """Salvage the dying generation, then restart or bury the seat."""
            nonlocal restarts
            delta = seat.last_delta
            salvaged_alerts = list(seat.chunks)
            start_ts: float | None = None
            flows_reset = 0
            if delta is not None:
                salvaged = delta.report
                salvaged.alerts = salvaged_alerts
                seat.reports.append(salvaged)
                seat.accounted_packets += salvaged.accounted_packets
                seat.accounted_batches += salvaged.batches
                start_ts = delta.last_ts
                flows_reset = delta.tracked_flows
            interval = DegradedInterval(
                shard=seat.index,
                generation=seat.generation,
                reason=reason,
                start_ts=start_ts,
                flows_reset=flows_reset,
                alerts_salvaged=len(salvaged_alerts),
                detail=detail,
            )
            degraded.append(interval)
            seat.open_interval = interval
            seat.chunks = []
            seat.last_delta = None
            process = seat.process
            if process is not None:
                process.join(timeout=0.5)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5.0)
                try:
                    process.close()
                except ValueError:
                    pass
                seat.process = None
            if seat.restarts_used >= config.max_restarts:
                seat.dead = True
                return
            time.sleep(config.restart_backoff * 2**seat.restarts_used)
            seat.restarts_used += 1
            restarts += 1
            seat.generation += 1
            seat.process = self._spawn(
                ctx, seat.index, seat.generation, seat.in_queue, out_queue
            )
            seat.last_seen = monotonic()
            for op in sorted(last_controls):
                # A replacement builds a fresh engine from the original
                # spec; replay the latest control per op so it rejoins
                # the fleet's current rule generation, not the seed's.
                try:
                    seat.in_queue.put(last_controls[op], timeout=_PUT_POLL_SECONDS)
                except queue_mod.Full:
                    pass  # queue is saturated with pre-reload batches; the
                    # coverage gap is already recorded on this interval
            if drain_started:
                # The original sentinel may have died with the old
                # worker; a duplicate is harmless (the replacement stops
                # at the first one it sees).
                seat.in_queue.put(DRAIN)

        def handle_message(kind: str, shard: int, generation: int, payload: Any) -> None:
            seat = seats[shard]
            if generation != seat.generation or seat.dead or seat.process is None:
                return  # stale chatter from a generation already buried
            seat.last_seen = monotonic()
            if kind == "hb":
                return
            if kind == "delta":
                seat.chunks.extend(payload.report.alerts)
                seat.last_delta = payload
                return
            if kind == "error":
                fail_seat(seat, "error", payload)
                return
            if kind == "ok":
                payload.alerts = seat.chunks + payload.alerts
                seat.reports.append(payload)
                seat.accounted_packets += payload.accounted_packets
                seat.accounted_batches += payload.batches
                seat.chunks = []
                seat.last_delta = None
                seat.finished = True

        def poll() -> None:
            """Drain pending worker messages, then sweep for the dead."""
            while True:
                try:
                    kind, shard, generation, payload = out_queue.get_nowait()
                except queue_mod.Empty:
                    break
                handle_message(kind, shard, generation, payload)
            now = monotonic()
            for seat in seats:
                if seat.dead or seat.finished or seat.process is None:
                    continue
                if not seat.process.is_alive():
                    # One last sweep: the worker may have reported (an
                    # error, or even its final ok) and exited cleanly
                    # between our reads.
                    exitcode = seat.process.exitcode
                    drained = True
                    while drained:
                        try:
                            kind, shard, generation, payload = out_queue.get_nowait()
                        except queue_mod.Empty:
                            drained = False
                            break
                        handle_message(kind, shard, generation, payload)
                    if seat.finished or seat.dead or seat.process is None:
                        continue
                    if seat.process.is_alive():
                        continue  # a restart replaced it mid-sweep
                    fail_seat(seat, "crash", f"exit code {exitcode}")
                elif now - seat.last_seen > config.heartbeat_timeout:
                    fail_seat(
                        seat,
                        "hang",
                        f"no heartbeat for {config.heartbeat_timeout:g}s",
                    )

        def route(seat: _Seat, bucket: "list[TimedPacket] | PacketBatch") -> None:
            nonlocal shed_packets, shed_batches, batches_routed
            if seat.dead:
                seat.dead_dropped_packets += len(bucket)
                seat.dead_dropped_batches += 1
                return
            if shed:
                try:
                    seat.in_queue.put_nowait(bucket)
                except queue_mod.Full:
                    shed_packets += len(bucket)
                    shed_batches += 1
                    return
            else:
                while True:
                    try:
                        seat.in_queue.put(bucket, timeout=_PUT_POLL_SECONDS)
                        break
                    except queue_mod.Full:
                        poll()  # a dead consumer gets replaced right here
                        if seat.dead:
                            seat.dead_dropped_packets += len(bucket)
                            seat.dead_dropped_batches += 1
                            return
            seat.routed_packets += len(bucket)
            seat.routed_batches += 1
            batches_routed += 1
            interval = seat.open_interval
            if interval is not None and bucket:
                # The replacement generation is taking traffic again;
                # close the coverage gap at this batch's first packet.
                interval.end_ts = _bucket_first_ts(bucket)
                seat.open_interval = None

        def broadcast_control(message: ControlMessage) -> None:
            """Lossless control delivery to every live seat.

            Controls bypass the shed policy: dropping a reload would
            silently split the fleet across rule generations.  A seat
            that dies mid-put gets replaced by ``poll`` and the put
            retries against the replacement on the same queue; a buried
            seat is skipped (its traffic is already accounted as lost).
            """
            last_controls[message.op] = message
            for seat in seats:
                if seat.dead:
                    continue
                while True:
                    try:
                        seat.in_queue.put(message, timeout=_PUT_POLL_SECONDS)
                        break
                    except queue_mod.Full:
                        poll()
                        if seat.dead:
                            break

        interrupted = False
        try:
            if columnar:
                items: Any = self._columnar_items(packets, quarantine)
            else:
                stream = decode_packets(packets, quarantine)
                items = iter_batches_with_controls(stream, config.batch_size)
            try:
                for kind, item in items:
                    poll()
                    if kind == "ctl":
                        broadcast_control(item)
                        continue
                    for index, bucket in self._split_buckets(item):
                        route(seats[index], bucket)
            except KeyboardInterrupt:
                # First interrupt: stop feeding and fall through to the
                # sentinel drain for a partial (but loss-accounted)
                # report.  A second interrupt propagates; _reap runs.
                interrupted = True
            drain_started = True
            for seat in seats:
                if seat.dead:
                    continue
                while True:
                    try:
                        seat.in_queue.put(DRAIN, timeout=_PUT_POLL_SECONDS)
                        break
                    except queue_mod.Full:
                        poll()
                        if seat.dead:
                            break
            deadline = monotonic() + config.drain_timeout
            while any(not (seat.finished or seat.dead) for seat in seats):
                if monotonic() > deadline:
                    for seat in seats:
                        if not (seat.finished or seat.dead):
                            seat.restarts_used = config.max_restarts  # no respawn
                            fail_seat(seat, "drain_loss", "drain deadline passed")
                    break
                try:
                    kind, shard, generation, payload = out_queue.get(
                        timeout=_DRAIN_POLL_SECONDS
                    )
                except queue_mod.Empty:
                    poll()
                    continue
                handle_message(kind, shard, generation, payload)
                poll()
        finally:
            self._reap(
                [seat.process for seat in seats],
                [seat.in_queue for seat in seats],
                out_queue,
            )
        # Close the books: whatever was routed to a seat but never
        # confirmed by any generation is lost -- pin it on the seat's
        # final failure interval (there is one whenever loss is nonzero).
        for seat in seats:
            lost_packets = (
                seat.routed_packets - seat.accounted_packets + seat.dead_dropped_packets
            )
            lost_batches = (
                seat.routed_batches - seat.accounted_batches + seat.dead_dropped_batches
            )
            if lost_packets <= 0 and lost_batches <= 0:
                continue
            seat_intervals = [iv for iv in degraded if iv.shard == seat.index]
            if not seat_intervals:
                # Defensive: loss with no recorded failure should be
                # impossible; surface it rather than swallowing it.
                seat_intervals = [
                    DegradedInterval(
                        shard=seat.index,
                        generation=seat.generation,
                        reason="drain_loss",
                        detail="unaccounted loss with no recorded failure",
                    )
                ]
                degraded.extend(seat_intervals)
            seat_intervals[-1].packets_lost += max(0, lost_packets)
            seat_intervals[-1].batches_lost += max(0, lost_batches)
        return merge_shard_reports(
            [report for seat in seats for report in seat.reports],
            mode="parallel",
            workers=self.workers,
            wall_seconds=perf_counter() - start,
            batches_routed=batches_routed,
            shed_packets=shed_packets,
            shed_batches=shed_batches,
            degraded=degraded,
            worker_restarts=restarts,
            quarantined=dict(quarantine.counts),
            interrupted=interrupted,
        )
