#!/usr/bin/env python3
"""Enterprise monitoring scenario: a synthetic trace with hidden attacks.

Generates a few hundred benign flows (heavy-tailed sizes, realistic
packet mix, natural reordering), hides three evasion attacks among them,
writes the whole thing to a real pcap, then runs both Split-Detect and
the conventional IPS over it and compares alerts, state, and the
throughput estimate.

Run:  python examples/enterprise_monitor.py [pcap_out]
"""

import sys
import tempfile

from repro.core import ConventionalIPS, SplitDetectIPS
from repro.evasion import build_attack
from repro.metrics import run_conventional, run_split_detect, throughput_comparison
from repro.pcap import read_trace, write_trace
from repro.signatures import load_bundled_rules
from repro.traffic import TrafficProfile, generate_trace, inject_attacks


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else tempfile.mktemp(suffix=".pcap")
    rules = load_bundled_rules()

    print("generating benign traffic (300 flows)...")
    trace = generate_trace(TrafficProfile(flows=300), seed=2006)

    print("hiding three attacks (tcp_seg_8, ip_frag_8, ttl_chaff)...")
    target = rules.by_sid(1000001)  # cmd.exe, port 80
    payload = b"GET /scripts/root.exe?/c+" + target.pattern + b" HTTP/1.0\r\n\r\n" + b"x" * 300
    span = (payload.index(target.pattern), len(target.pattern))
    attacks = [
        build_attack(name, payload, signature_span=span, src=f"10.66.0.{i + 1}", seed=i)
        for i, name in enumerate(["tcp_seg_8", "ip_frag_8", "ttl_chaff"])
    ]
    merged = inject_attacks(trace, attacks)

    count = write_trace(out, merged)
    print(f"wrote {count} packets to {out}")

    replay = list(read_trace(out))  # prove the pcap round-trips

    print("\n--- Split-Detect ---")
    split_ips = SplitDetectIPS(rules)
    split_report = run_split_detect(split_ips, replay)
    hits = sorted({a.sid for a in split_report.alerts if a.sid})
    print(f"alerts: {len(split_report.alerts)} (sids {hits})")
    print(f"diverted flows: {split_report.diverted_flows} / {split_report.peak_flows} peak")
    print(f"bytes on slow path: {split_report.diversion_byte_fraction:.2%}")
    print(f"peak state: {split_report.peak_state_bytes:,} bytes")

    print("\n--- Conventional IPS ---")
    conv_ips = ConventionalIPS(rules)
    conv_report = run_conventional(conv_ips, replay)
    hits = sorted({a.sid for a in conv_report.alerts if a.sid})
    print(f"alerts: {len(conv_report.alerts)} (sids {hits})")
    print(f"peak state: {conv_report.peak_state_bytes:,} bytes")

    ratio = split_report.peak_state_bytes / max(conv_report.peak_state_bytes, 1)
    print(f"\nmeasured state ratio (split/conventional): {ratio:.1%}")

    print("\nprovisioned throughput at 1M connections:")
    print(f"{'engine':<22} {'bytes':>12} {'refs/B':>9} {'state':>12} {'mem':>5} {'ns/B':>9} {'Gbps':>8}")
    for row in throughput_comparison(split_report, conv_report):
        print(row.row())


if __name__ == "__main__":
    main()
