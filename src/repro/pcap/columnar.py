"""Columnar pcap decode: whole batches of packets without packet objects.

:func:`read_column_batches` walks a savefile once and yields
:class:`~repro.packet.batch.PacketBatch` instances -- parallel columns
of fast-path-relevant fields over one shared capture buffer -- instead
of per-packet dataclasses.  The engine consumes the columns directly
and materializes full objects only for the flagged minority, which is
where the ingest speedup comes from.

Parity contract (tested, and the reason this module is careful rather
than clever):

* Record framing, both byte orders, and the nanosecond magics follow
  :class:`~repro.pcap.io.PcapReader` exactly, including the timestamp
  arithmetic (``sec + frac / scale``) and every ``PcapFormatError``.
* ``on_invalid="quarantine"`` mirrors :func:`~repro.pcap.io.read_records`
  + the runtime decode quarantine: Ethernet-short records are treated
  as raw IP, non-IPv4 ethertypes are skipped silently, and malformed IP
  rows become real exception instances on ``batch.quarantined``.
* ``on_invalid="raise"`` mirrors :func:`~repro.pcap.io.read_trace`: the
  first malformed record raises the authoritative parse error.
* Invalid rows are produced by delegating to the *object* parsers
  (``EthernetFrame.parse`` / ``IPv4Packet.parse``), so exception types
  and messages can never drift from the object path.
* Rows whose transport header would not decode get ``tok == 0`` and are
  materialized by the engine, which reproduces the object path's
  decode-error accounting byte for byte.

The optional numpy path (probed at import, disabled when the
environment variable ``REPRO_COLUMNAR_NUMPY=0``) vectorizes field
extraction and validity checks; rows it cannot prove clean fall back to
the stdlib row decoder, so both paths produce identical columns by
construction.  The stdlib path is mandatory and fully featured.

Each batch carries exactly ``batch_size`` valid rows (skipped and
quarantined records consume no slots), so downstream evict cadence
matches the object path's fixed-size batches.  The reader holds the
whole file in one ``bytes`` buffer that all batches share -- the price
of zero-copy payload views; ``PacketBatch.compact`` copies slices out
before they are pickled to workers.
"""

from __future__ import annotations

import os
import struct
from collections.abc import Iterator
from typing import BinaryIO

from ..packet import EthernetFrame, IPv4Packet, PacketError
from ..packet.batch import PacketBatch, PacketBatchBuilder, portless_flow_hash
from .format import (
    GLOBAL_HEADER_SIZE,
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IP,
    RECORD_HEADER_SIZE,
    PcapFormatError,
    decode_global_header,
)

__all__ = ["ColumnarPcapReader", "numpy_available", "read_column_batches"]

_DECODE_ERRORS = (PacketError, ValueError, struct.error)

IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

ETHERTYPE_IPV4 = 0x0800
_ETH_HLEN = 14

# One unpack per row for the fixed IPv4 header prefix; src/dst decoded
# as integers (the columns are numeric, strings are interned lazily).
_IP_FIXED = struct.Struct("!BBHHHBBHII")
_PORTS = struct.Struct("!HH")
_TCP_PREFIX = struct.Struct("!HHII")

_NUMPY_ENV = "REPRO_COLUMNAR_NUMPY"


def _load_numpy():  # type: ignore[no-untyped-def]
    if os.environ.get(_NUMPY_ENV, "").strip() == "0":
        return None
    try:
        import numpy
    except Exception:
        return None
    return numpy


_NUMPY = _load_numpy()


def numpy_available() -> bool:
    """True when the vectorized extraction path is importable and enabled."""
    return _NUMPY is not None


def _read_source(source: str | os.PathLike[str] | bytes | BinaryIO) -> bytes:
    if isinstance(source, bytes):
        return source
    if isinstance(source, (str, os.PathLike)):
        with open(source, "rb") as handle:
            return handle.read()
    return source.read()


class ColumnarPcapReader:
    """Iterates :class:`PacketBatch` columns out of a pcap savefile."""

    def __init__(
        self,
        source: str | os.PathLike[str] | bytes | BinaryIO,
        *,
        batch_size: int = 256,
        on_invalid: str = "quarantine",
        use_numpy: bool | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if on_invalid not in ("quarantine", "raise"):
            raise ValueError(f"on_invalid must be 'quarantine' or 'raise', got {on_invalid!r}")
        self.data = _read_source(source)
        self.header = decode_global_header(self.data[:GLOBAL_HEADER_SIZE])
        if self.header.linktype not in (LINKTYPE_ETHERNET, LINKTYPE_RAW_IP):
            raise PcapFormatError(f"unsupported linktype {self.header.linktype}")
        self.batch_size = batch_size
        self.on_invalid = on_invalid
        self._numpy = _NUMPY if use_numpy is None else (_NUMPY if use_numpy else None)
        if use_numpy and self._numpy is None:
            raise RuntimeError("numpy requested but not available")

    # -- record walk ---------------------------------------------------

    def _walk_records(self) -> tuple[list[float], list[int], list[int]]:
        """Offsets/lengths of every record body, with PcapReader's errors."""
        data = self.data
        record = struct.Struct(self.header.byte_order + "IIII")
        scale = 1_000_000_000 if self.header.nanosecond else 1_000_000
        ts_list: list[float] = []
        off_list: list[int] = []
        cap_list: list[int] = []
        pos = GLOBAL_HEADER_SIZE
        end = len(data)
        while pos < end:
            if end - pos < RECORD_HEADER_SIZE:
                raise PcapFormatError(
                    f"truncated record header: {end - pos} < {RECORD_HEADER_SIZE} bytes"
                )
            sec, frac, captured, _original = record.unpack_from(data, pos)
            if frac >= scale:
                raise PcapFormatError(f"record sub-second field {frac} out of range")
            body = pos + RECORD_HEADER_SIZE
            if end - body < captured:
                raise PcapFormatError(
                    f"truncated record body: need {captured} bytes, got {end - body}"
                )
            ts_list.append(sec + frac / scale)
            off_list.append(body)
            cap_list.append(captured)
            pos = body + captured
        return ts_list, off_list, cap_list

    # -- per-row decode (stdlib; also the fallback for the numpy path) -

    def _decode_row(
        self, builder: PacketBatchBuilder, ts: float, off: int, caplen: int
    ) -> None:
        """Decode one record into a row, a silent skip, or a quarantine.

        Any record that fails the cheap field checks is re-parsed with
        the object-path parsers so the resulting exception (raised or
        quarantined) is authoritative.
        """
        data = self.data
        ip_off = off
        ip_len = caplen
        if self.header.linktype == LINKTYPE_ETHERNET:
            if caplen >= _ETH_HLEN:
                if data[off + 12] != 0x08 or data[off + 13] != 0x00:
                    return  # non-IPv4 ethertype: skipped silently
                ip_off = off + _ETH_HLEN
                ip_len = caplen - _ETH_HLEN
            elif self.on_invalid == "raise":
                # read_trace parses the frame strictly and propagates.
                EthernetFrame.parse(data[off : off + caplen])
                raise AssertionError("unreachable: short Ethernet frame parsed")
            # else: read_records yields the whole record as IP bytes and
            # lets the decode quarantine classify it below.
        valid = ip_len >= 20
        if valid:
            (
                ver_ihl,
                _tos,
                total,
                _ident,
                fragflags,
                ttl,
                proto,
                _checksum,
                src,
                dst,
            ) = _IP_FIXED.unpack_from(data, ip_off)
            ihl = (ver_ihl & 0x0F) * 4
            valid = (
                (ver_ihl >> 4) == 4
                and ihl >= 20
                and ip_len >= ihl
                and total >= ihl
                and ip_len >= total
            )
        if not valid:
            exc = self._invalid_row(ip_off, ip_len)
            if exc is not None:
                builder.quarantined.append(exc)
                return
            # Defensive: the object parser accepted what the cheap
            # checks rejected (should be impossible -- the checks are
            # the parser's own); trust the parser and unpack the fields.
            (
                ver_ihl,
                _tos,
                total,
                _ident,
                fragflags,
                ttl,
                proto,
                _checksum,
                src,
                dst,
            ) = _IP_FIXED.unpack_from(data, ip_off)
            ihl = (ver_ihl & 0x0F) * 4
        self._append_row(
            builder, ts, ip_off, ip_len, ihl, total, fragflags, ttl, proto, src, dst
        )

    def _invalid_row(self, ip_off: int, ip_len: int) -> BaseException | None:
        """Authoritative exception for a malformed IP region (or None)."""
        try:
            IPv4Packet.parse(self.data[ip_off : ip_off + ip_len])
        except _DECODE_ERRORS as exc:
            if self.on_invalid == "raise":
                raise
            return exc
        return None

    def _append_row(
        self,
        builder: PacketBatchBuilder,
        ts: float,
        ip_off: int,
        ip_len: int,
        ihl: int,
        total: int,
        fragflags: int,
        ttl: int,
        proto: int,
        src: int,
        dst: int,
    ) -> None:
        data = self.data
        p_off = ip_off + ihl
        p_len = total - ihl
        sport = dport = seq = tcpflags = tok = 0
        pay_off = pay_len = 0
        flow_hash = 0
        transport = proto == IP_PROTO_TCP or proto == IP_PROTO_UDP
        if transport:
            flow_hash = portless_flow_hash(src, dst, proto)
            if p_len >= 4:
                sport, dport = _PORTS.unpack_from(data, p_off)
            if not (fragflags & 0x3FFF):
                if proto == IP_PROTO_TCP:
                    if p_len >= 20:
                        _sp, _dp, seq, _ack = _TCP_PREFIX.unpack_from(data, p_off)
                        header_len = (data[p_off + 12] >> 4) * 4
                        tcpflags = data[p_off + 13]
                        if header_len >= 20 and p_len >= header_len:
                            tok = 1
                            pay_off = p_off + header_len
                            pay_len = p_len - header_len
                elif p_len >= 8:
                    length_field = (data[p_off + 4] << 8) | data[p_off + 5]
                    if length_field >= 8 and p_len >= length_field:
                        tok = 1
                        pay_off = p_off + 8
                        pay_len = length_field - 8
        builder.append(
            ts, ip_off, ip_len, proto, fragflags, ttl, src, dst,
            sport, dport, seq, tcpflags, pay_off, pay_len, tok, flow_hash,
        )

    # -- iteration -----------------------------------------------------

    def __iter__(self) -> Iterator[PacketBatch]:
        ts_list, off_list, cap_list = self._walk_records()
        if self._numpy is not None and ts_list:
            yield from self._iter_numpy(ts_list, off_list, cap_list)
            return
        builder = PacketBatchBuilder()
        size = self.batch_size
        decode = self._decode_row
        for index in range(len(ts_list)):
            decode(builder, ts_list[index], off_list[index], cap_list[index])
            if len(builder) >= size:
                yield builder.build(self.data)
        if len(builder) or builder.quarantined:
            yield builder.build(self.data)

    # -- vectorized extraction (optional) ------------------------------

    def _iter_numpy(
        self, ts_list: list[float], off_list: list[int], cap_list: list[int]
    ) -> Iterator[PacketBatch]:
        """Vectorized decode: prove rows clean in bulk, fall back per row.

        Produces byte-identical columns to the stdlib path: every field
        is extracted with the same arithmetic, and any record that fails
        a vectorized validity check -- or needs Ethernet/quarantine
        special-casing -- is routed through :meth:`_decode_row`.
        """
        np = self._numpy
        buf = np.frombuffer(self.data, dtype=np.uint8)
        limit = len(buf) - 1
        off = np.asarray(off_list, dtype=np.int64)
        cap = np.asarray(cap_list, dtype=np.int64)

        def gather(idx):  # type: ignore[no-untyped-def]
            return buf[np.minimum(idx, limit)].astype(np.int64)

        ethernet = self.header.linktype == LINKTYPE_ETHERNET
        if ethernet:
            eth_ok = cap >= _ETH_HLEN
            ethertype = (gather(off + 12) << 8) | gather(off + 13)
            skip = eth_ok & (ethertype != ETHERTYPE_IPV4)
            fallback = ~eth_ok
            ip_off = off + _ETH_HLEN
            ip_len = cap - _ETH_HLEN
        else:
            skip = np.zeros(len(off), dtype=bool)
            fallback = skip.copy()
            ip_off = off
            ip_len = cap

        ver_ihl = gather(ip_off)
        ihl = (ver_ihl & 0x0F) * 4
        total = (gather(ip_off + 2) << 8) | gather(ip_off + 3)
        ip_valid = (
            (ip_len >= 20)
            & ((ver_ihl >> 4) == 4)
            & (ihl >= 20)
            & (ip_len >= ihl)
            & (total >= ihl)
            & (ip_len >= total)
        )
        fallback |= ~skip & ~ip_valid

        fragflags = (gather(ip_off + 6) << 8) | gather(ip_off + 7)
        ttl = gather(ip_off + 8)
        proto = gather(ip_off + 9)
        src = (
            (gather(ip_off + 12) << 24)
            | (gather(ip_off + 13) << 16)
            | (gather(ip_off + 14) << 8)
            | gather(ip_off + 15)
        )
        dst = (
            (gather(ip_off + 16) << 24)
            | (gather(ip_off + 17) << 16)
            | (gather(ip_off + 18) << 8)
            | gather(ip_off + 19)
        )
        p_off = ip_off + ihl
        p_len = total - ihl
        transport = (proto == IP_PROTO_TCP) | (proto == IP_PROTO_UDP)
        has_ports = transport & (p_len >= 4)
        sport = np.where(has_ports, (gather(p_off) << 8) | gather(p_off + 1), 0)
        dport = np.where(has_ports, (gather(p_off + 2) << 8) | gather(p_off + 3), 0)

        not_fragment = (fragflags & 0x3FFF) == 0
        tcp_head = transport & not_fragment & (proto == IP_PROTO_TCP) & (p_len >= 20)
        header_len = (gather(p_off + 12) >> 4) * 4
        tcp_ok = tcp_head & (header_len >= 20) & (p_len >= header_len)
        seq = np.where(
            tcp_head,
            (gather(p_off + 4) << 24)
            | (gather(p_off + 5) << 16)
            | (gather(p_off + 6) << 8)
            | gather(p_off + 7),
            0,
        )
        tcpflags = np.where(tcp_head, gather(p_off + 13), 0)
        udp_head = transport & not_fragment & (proto == IP_PROTO_UDP) & (p_len >= 8)
        length_field = (gather(p_off + 4) << 8) | gather(p_off + 5)
        udp_ok = udp_head & (length_field >= 8) & (p_len >= length_field)
        tok = tcp_ok | udp_ok
        pay_off = np.where(tcp_ok, p_off + header_len, np.where(udp_ok, p_off + 8, 0))
        pay_len = np.where(
            tcp_ok, p_len - header_len, np.where(udp_ok, length_field - 8, 0)
        )

        special = skip | fallback
        # Stored offsets cover the IP region, not the raw frame.
        eth_shift = _ETH_HLEN if ethernet else 0
        if not special.any():
            # Every record decoded clean (no quarantine, no ethertype
            # skip, no stdlib fallback): assemble whole batches with
            # C-speed column extends instead of a per-row append.  The
            # flow-hash column is the one per-row computation left, and
            # it is an intern-cache hit for all but a flow's first
            # packet.  Values are identical to the row loop below: same
            # arrays, same arithmetic, same bool->int narrowing.
            src_l = src.tolist()
            dst_l = dst.tolist()
            proto_l = proto.tolist()
            flow_hash_l = [
                portless_flow_hash(s, d, p)
                if p == IP_PROTO_TCP or p == IP_PROTO_UDP
                else 0
                for s, d, p in zip(src_l, dst_l, proto_l)
            ]
            lists = {
                "ts": ts_list,
                "off": (off + eth_shift).tolist() if eth_shift else off_list,
                "caplen": (cap - eth_shift).tolist() if eth_shift else cap_list,
                "proto": proto_l,
                "fragflags": fragflags.tolist(),
                "ttl": ttl.tolist(),
                "src": src_l,
                "dst": dst_l,
                "sport": sport.tolist(),
                "dport": dport.tolist(),
                "seq": seq.tolist(),
                "tcpflags": tcpflags.tolist(),
                "pay_off": pay_off.tolist(),
                "pay_len": pay_len.tolist(),
                "tok": tok.astype(np.uint8).tolist(),
                "flow_hash": flow_hash_l,
            }
            builder = PacketBatchBuilder()
            size = self.batch_size
            for start in range(0, len(off_list), size):
                stop = start + size
                builder.extend_lists(
                    {name: values[start:stop] for name, values in lists.items()}
                )
                yield builder.build(self.data)
            return

        # Single conversion to python scalars; per-element access on
        # numpy arrays is slower than list indexing in the assembly loop.
        columns = [
            arr.tolist()
            for arr in (
                special, fallback, cap, fragflags, ttl, proto, src, dst,
                sport, dport, seq, tcpflags, pay_off, pay_len, tok,
            )
        ]
        (
            special_l, fallback_l, cap_l, frag_l, ttl_l, proto_l, src_l, dst_l,
            sport_l, dport_l, seq_l, flags_l, payoff_l, paylen_l, tok_l,
        ) = columns
        off_l = off_list

        builder = PacketBatchBuilder()
        size = self.batch_size
        append = builder.append
        for i in range(len(off_l)):
            if special_l[i]:
                if fallback_l[i]:
                    self._decode_row(builder, ts_list[i], off_l[i], cap_l[i])
                # else: non-IPv4 ethertype, skipped silently
            else:
                p = proto_l[i]
                transport_row = p == IP_PROTO_TCP or p == IP_PROTO_UDP
                append(
                    ts_list[i], off_l[i] + eth_shift, cap_l[i] - eth_shift,
                    p, frag_l[i], ttl_l[i],
                    src_l[i], dst_l[i], sport_l[i], dport_l[i], seq_l[i],
                    flags_l[i], payoff_l[i], paylen_l[i], int(tok_l[i]),
                    portless_flow_hash(src_l[i], dst_l[i], p) if transport_row else 0,
                )
            if len(builder) >= size:
                yield builder.build(self.data)
        if len(builder) or builder.quarantined:
            yield builder.build(self.data)


def read_column_batches(
    source: str | os.PathLike[str] | bytes | BinaryIO,
    *,
    batch_size: int = 256,
    on_invalid: str = "quarantine",
    use_numpy: bool | None = None,
) -> Iterator[PacketBatch]:
    """Yield columnar packet batches from a savefile (see module docs)."""
    return iter(
        ColumnarPcapReader(
            source,
            batch_size=batch_size,
            on_invalid=on_invalid,
            use_numpy=use_numpy,
        )
    )
