"""Active (inline) traffic normalization à la Handley-Paxson.

This is the "classic defense" the paper's abstract cites: an inline
element that *rewrites* the packet stream so that every host behind it --
whatever its overlap policy -- reconstructs exactly the same bytes,
eliminating the ambiguity evasions exploit.  Split-Detect exists because
doing this for a million flows is expensive; the class therefore also
exposes its state footprint, which the evaluation compares against.

Normalization rules (TCP):

- IP fragments are reassembled and forwarded as whole datagrams;
  overlapping fragment content is resolved first-copy-wins.
- Data packets whose TTL could expire before the host are dropped
  (forcing the sender to retransmit at a deliverable TTL).
- Every stream byte is pinned to the *first copy* the normalizer saw:
  retransmissions and overlaps are rewritten to that copy before
  forwarding, so conflicting copies never reach a host.

The defining invariant -- behind the normalizer, victims of every overlap
policy read identical streams -- is property-tested against the full
adversarial strategy in ``tests/test_streams_active.py``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..packet import (
    IP_PROTO_TCP,
    FlowKey,
    IPv4Packet,
    TimedPacket,
    build_tcp_packet,
    decode_tcp,
    flow_key_of,
    seq_add,
    seq_diff,
)
from .defrag import IpDefragmenter
from .policies import OverlapPolicy


class ShadowStream:
    """First-copy-wins record of every stream byte seen so far.

    Stores disjoint, coalesced (offset, bytes) intervals.  ``pin`` inserts
    new bytes where nothing was recorded and returns the canonical copy
    for the whole queried range; previously recorded bytes always win.
    """

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._chunks: list[bytearray] = []

    @property
    def stored_bytes(self) -> int:
        return sum(len(c) for c in self._chunks)

    def pin(self, offset: int, data: bytes) -> bytes:
        """Record ``data`` at ``offset`` (first copy wins); return canonical bytes."""
        if not data:
            return b""
        end = offset + len(data)
        lo = bisect.bisect_right(self._starts, offset)
        while lo > 0 and self._starts[lo - 1] + len(self._chunks[lo - 1]) > offset:
            lo -= 1
        hi = lo
        while hi < len(self._starts) and self._starts[hi] < end:
            hi += 1
        merged_start = min([offset] + self._starts[lo:hi])
        merged_end = max(
            [end]
            + [s + len(c) for s, c in zip(self._starts[lo:hi], self._chunks[lo:hi])]
        )
        merged = bytearray(merged_end - merged_start)
        have = bytearray(merged_end - merged_start)
        for start, chunk in zip(self._starts[lo:hi], self._chunks[lo:hi]):
            at = start - merged_start
            merged[at : at + len(chunk)] = chunk
            for i in range(at, at + len(chunk)):
                have[i] = 1
        for i, byte in enumerate(data):
            at = offset - merged_start + i
            if not have[at]:
                merged[at] = byte
                have[at] = 1
        del self._starts[lo:hi]
        del self._chunks[lo:hi]
        self._starts.insert(lo, merged_start)
        self._chunks.insert(lo, merged)
        at = offset - merged_start
        return bytes(merged[at : at + len(data)])


@dataclass
class _NormFlow:
    """Per-direction normalization state."""

    shadow: ShadowStream = field(default_factory=ShadowStream)
    base_seq: int | None = None


class ActiveNormalizer:
    """Inline element enforcing one consistent interpretation per flow."""

    def __init__(self, *, min_ttl: int = 8, mtu: int = 65535) -> None:
        self.min_ttl = min_ttl
        self.mtu = mtu
        self.defragmenter = IpDefragmenter(policy=OverlapPolicy.FIRST)
        self._flows: dict[FlowKey, _NormFlow] = {}
        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped = 0
        self.bytes_rewritten = 0

    # -- accounting ------------------------------------------------------

    def state_bytes(self) -> int:
        """The classic defense's bill: a full shadow copy per direction."""
        return sum(flow.shadow.stored_bytes + 32 for flow in self._flows.values())

    @property
    def active_flows(self) -> int:
        """Flow directions holding shadow state."""
        return len(self._flows)

    # -- packet intake ------------------------------------------------------

    def process(self, packet: TimedPacket) -> list[TimedPacket]:
        """Normalize one packet; returns the packets to forward (0 or 1)."""
        self.packets_in += 1
        result = self.defragmenter.add(packet.ip, packet.timestamp)
        ip = result.packet
        if ip is None:
            return []  # fragment swallowed until its datagram completes
        if ip.protocol != IP_PROTO_TCP:
            return self._forward(packet.timestamp, ip)
        try:
            segment = decode_tcp(ip)
        except Exception:
            self.packets_dropped += 1
            return []
        if segment.payload and ip.ttl < self.min_ttl:
            # Would-be insertion chaff: drop rather than guess.
            self.packets_dropped += 1
            return []
        if not segment.payload:
            return self._forward(packet.timestamp, ip)
        direction = flow_key_of(ip)
        flow = self._flows.get(direction)
        if flow is None:
            flow = _NormFlow()
            self._flows[direction] = flow
        data_seq = seq_add(segment.seq, 1) if segment.syn else segment.seq
        if flow.base_seq is None:
            flow.base_seq = data_seq
        offset = seq_diff(data_seq, flow.base_seq)
        canonical = flow.shadow.pin(offset, segment.payload)
        if canonical != segment.payload:
            self.bytes_rewritten += sum(
                1 for a, b in zip(canonical, segment.payload) if a != b
            )
            segment = segment.copy(payload=canonical)
            ip = build_tcp_packet(
                ip.src,
                ip.dst,
                segment,
                ttl=ip.ttl,
                identification=ip.identification,
                dont_fragment=ip.dont_fragment,
            )
        if segment.rst or segment.fin:
            # Connection ending: the shadow can be released lazily; we keep
            # it until both directions close in a fuller implementation.
            pass
        return self._forward(packet.timestamp, ip)

    def _forward(self, timestamp: float, ip: IPv4Packet) -> list[TimedPacket]:
        self.packets_out += 1
        return [TimedPacket(timestamp, ip)]

    def release_flow(self, direction: FlowKey) -> None:
        """Free the shadow copy for one direction (post-connection sweep)."""
        self._flows.pop(direction, None)
