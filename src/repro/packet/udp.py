"""UDP datagram model with pseudo-header checksum.

UDP matters to the reproduction for two reasons: real rule sets contain
UDP signatures (DNS, RPC, worm payloads like Slammer), and UDP has no
stream to reassemble -- the only byte-string evasion channel is IP
fragmentation, which Split-Detect handles by diverting fragments.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from .checksum import internet_checksum, pseudo_header
from .errors import ChecksumError, MalformedPacketError, TruncatedPacketError
from .ip import IP_PROTO_UDP, IPv4Packet, ip_to_bytes

_UDP_FMT = struct.Struct("!HHHH")


@dataclass
class UdpDatagram:
    """A parsed (or to-be-serialized) UDP datagram without the IP layer."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    def __post_init__(self) -> None:
        for name, value in (("src_port", self.src_port), ("dst_port", self.dst_port)):
            if not 0 <= value <= 0xFFFF:
                raise MalformedPacketError(f"{name} {value} out of range")
        if 8 + len(self.payload) > 0xFFFF:
            raise MalformedPacketError("UDP datagram exceeds 65535 bytes")

    @property
    def length(self) -> int:
        """Wire length field: header plus payload."""
        return 8 + len(self.payload)

    def serialize(self, src_ip: str | None = None, dst_ip: str | None = None) -> bytes:
        """Render to wire bytes; checksum included when IPs are given."""
        header = _UDP_FMT.pack(self.src_port, self.dst_port, self.length, 0)
        datagram = header + self.payload
        if src_ip is not None and dst_ip is not None:
            pseudo = pseudo_header(
                ip_to_bytes(src_ip), ip_to_bytes(dst_ip), IP_PROTO_UDP, self.length
            )
            checksum = internet_checksum(pseudo + datagram)
            if checksum == 0:
                checksum = 0xFFFF  # RFC 768: transmitted zero means "none"
            datagram = datagram[:6] + checksum.to_bytes(2, "big") + datagram[8:]
        return datagram

    @classmethod
    def parse(
        cls,
        raw: bytes,
        *,
        src_ip: str | None = None,
        dst_ip: str | None = None,
        strict: bool = False,
    ) -> "UdpDatagram":
        """Parse wire bytes; with ``strict`` the checksum must verify."""
        if len(raw) < 8:
            raise TruncatedPacketError("UDP header", 8, len(raw))
        src_port, dst_port, length, checksum = _UDP_FMT.unpack_from(raw)
        if length < 8:
            raise MalformedPacketError(f"UDP length field {length} below header size")
        if len(raw) < length:
            raise TruncatedPacketError("UDP payload", length, len(raw))
        if strict and checksum and src_ip is not None and dst_ip is not None:
            pseudo = pseudo_header(
                ip_to_bytes(src_ip), ip_to_bytes(dst_ip), IP_PROTO_UDP, length
            )
            if internet_checksum(pseudo + raw[:length]) != 0:
                raise ChecksumError("UDP", checksum, 0)
        return cls(src_port=src_port, dst_port=dst_port, payload=bytes(raw[8:length]))

    def copy(self, **changes) -> "UdpDatagram":
        return replace(self, **changes)


def build_udp_packet(
    src: str,
    dst: str,
    datagram: UdpDatagram,
    *,
    ttl: int = 64,
    identification: int = 0,
    dont_fragment: bool = False,
) -> IPv4Packet:
    """Wrap a ``UdpDatagram`` in an IPv4 packet with a valid checksum."""
    return IPv4Packet(
        src=src,
        dst=dst,
        protocol=IP_PROTO_UDP,
        payload=datagram.serialize(src, dst),
        ttl=ttl,
        identification=identification,
        dont_fragment=dont_fragment,
    )


def decode_udp(packet: IPv4Packet, *, strict: bool = False) -> UdpDatagram:
    """Parse the UDP datagram out of a non-fragmented IPv4 packet."""
    if packet.protocol != IP_PROTO_UDP:
        raise ValueError(f"not a UDP packet (protocol {packet.protocol})")
    if packet.is_fragment:
        raise ValueError("cannot decode UDP from an IP fragment; defragment first")
    return UdpDatagram.parse(
        packet.payload, src_ip=packet.src, dst_ip=packet.dst, strict=strict
    )
