"""TCP segment model: header fields, flags, options, checksum over pseudo-header.

The model keeps sequence/ack numbers as plain ints (mod 2**32 on the wire)
and exposes the option kinds an IPS meets in practice (MSS, window scale,
SACK-permitted, timestamps, NOP/EOL) as parsed tuples while preserving the
raw option bytes for re-serialization.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from .checksum import internet_checksum, pseudo_header
from .errors import ChecksumError, MalformedPacketError, TruncatedPacketError
from .ip import IP_PROTO_TCP, ip_to_bytes

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10
TCP_URG = 0x20

_TCP_FMT = struct.Struct("!HHIIBBHHH")

_OPT_EOL = 0
_OPT_NOP = 1
_OPT_MSS = 2
_OPT_WSCALE = 3
_OPT_SACK_PERMITTED = 4
_OPT_TIMESTAMP = 8

SEQ_MOD = 2**32


def seq_add(seq: int, delta: int) -> int:
    """Add ``delta`` to a sequence number modulo 2**32."""
    return (seq + delta) % SEQ_MOD


def seq_diff(a: int, b: int) -> int:
    """Signed distance from ``b`` to ``a`` in sequence space (RFC 793 wraparound).

    Positive when ``a`` is after ``b``; the result lies in [-2**31, 2**31).
    """
    d = (a - b) % SEQ_MOD
    if d >= SEQ_MOD // 2:
        d -= SEQ_MOD
    return d


def flags_to_str(flags: int) -> str:
    """Render a flag byte as the conventional letter string, e.g. ``"SA"``."""
    letters = []
    for bit, letter in (
        (TCP_FIN, "F"),
        (TCP_SYN, "S"),
        (TCP_RST, "R"),
        (TCP_PSH, "P"),
        (TCP_ACK, "A"),
        (TCP_URG, "U"),
    ):
        if flags & bit:
            letters.append(letter)
    return "".join(letters) or "."


@dataclass
class TcpSegment:
    """A parsed (or to-be-serialized) TCP segment without the IP layer."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = TCP_ACK
    window: int = 65535
    urgent: int = 0
    payload: bytes = b""
    options: bytes = b""

    def __post_init__(self) -> None:
        for name, value, limit in (
            ("src_port", self.src_port, 0xFFFF),
            ("dst_port", self.dst_port, 0xFFFF),
            ("window", self.window, 0xFFFF),
            ("urgent", self.urgent, 0xFFFF),
        ):
            if not 0 <= value <= limit:
                raise MalformedPacketError(f"{name} {value} out of range")
        self.seq %= SEQ_MOD
        self.ack %= SEQ_MOD
        if len(self.options) % 4:
            raise MalformedPacketError("TCP options must pad to a 4-byte multiple")
        if len(self.options) > 40:
            raise MalformedPacketError("TCP options exceed 40 bytes")

    @property
    def header_length(self) -> int:
        """Header length in bytes (20 plus options)."""
        return 20 + len(self.options)

    @property
    def syn(self) -> bool:
        return bool(self.flags & TCP_SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & TCP_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & TCP_RST)

    @property
    def ack_set(self) -> bool:
        return bool(self.flags & TCP_ACK)

    @property
    def seq_len(self) -> int:
        """Sequence-space length: payload bytes plus one each for SYN and FIN."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def end_seq(self) -> int:
        """Sequence number just past this segment's data."""
        return seq_add(self.seq, self.seq_len)

    def serialize(self, src_ip: str | None = None, dst_ip: str | None = None) -> bytes:
        """Render to wire bytes.

        When both IP addresses are given, the checksum is computed over the
        RFC 793 pseudo-header; otherwise the checksum field is left zero
        (useful when the caller recomputes checksums at the IP layer).
        """
        data_offset = self.header_length // 4
        header = _TCP_FMT.pack(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            data_offset << 4,
            self.flags,
            self.window,
            0,
            self.urgent,
        ) + self.options
        segment = header + self.payload
        if src_ip is not None and dst_ip is not None:
            pseudo = pseudo_header(
                ip_to_bytes(src_ip), ip_to_bytes(dst_ip), IP_PROTO_TCP, len(segment)
            )
            checksum = internet_checksum(pseudo + segment)
            segment = segment[:16] + checksum.to_bytes(2, "big") + segment[18:]
        return segment

    @classmethod
    def parse(
        cls,
        raw: bytes,
        *,
        src_ip: str | None = None,
        dst_ip: str | None = None,
        strict: bool = False,
    ) -> "TcpSegment":
        """Parse wire bytes into a ``TcpSegment``.

        With ``strict=True`` (and both IP addresses supplied) the
        pseudo-header checksum must verify.
        """
        if len(raw) < 20:
            raise TruncatedPacketError("TCP header", 20, len(raw))
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_byte,
            flags,
            window,
            checksum,
            urgent,
        ) = _TCP_FMT.unpack_from(raw)
        header_len = (offset_byte >> 4) * 4
        if header_len < 20:
            raise MalformedPacketError(f"TCP data offset {header_len} below 20")
        if len(raw) < header_len:
            raise TruncatedPacketError("TCP options", header_len, len(raw))
        if strict and src_ip is not None and dst_ip is not None:
            pseudo = pseudo_header(
                ip_to_bytes(src_ip), ip_to_bytes(dst_ip), IP_PROTO_TCP, len(raw)
            )
            if internet_checksum(pseudo + raw) != 0:
                raise ChecksumError("TCP", checksum, 0)
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent=urgent,
            payload=bytes(raw[header_len:]),
            options=bytes(raw[20:header_len]),
        )

    def parsed_options(self) -> list[tuple[int, bytes]]:
        """Decode the option blob into (kind, data) tuples.

        NOP options are skipped; EOL terminates the list.  Malformed
        lengths raise ``MalformedPacketError``.
        """
        out: list[tuple[int, bytes]] = []
        i = 0
        opts = self.options
        while i < len(opts):
            kind = opts[i]
            if kind == _OPT_EOL:
                break
            if kind == _OPT_NOP:
                i += 1
                continue
            if i + 1 >= len(opts):
                raise MalformedPacketError("TCP option truncated before length byte")
            length = opts[i + 1]
            if length < 2 or i + length > len(opts):
                raise MalformedPacketError(f"TCP option kind {kind} bad length {length}")
            out.append((kind, bytes(opts[i + 2 : i + length])))
            i += length
        return out

    def mss_option(self) -> int | None:
        """Return the MSS value if the segment carries an MSS option."""
        for kind, data in self.parsed_options():
            if kind == _OPT_MSS and len(data) == 2:
                return int.from_bytes(data, "big")
        return None

    def copy(self, **changes) -> "TcpSegment":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def mss_option_bytes(mss: int) -> bytes:
    """Build an MSS option blob padded to 4 bytes (it already is 4 bytes)."""
    if not 0 <= mss <= 0xFFFF:
        raise MalformedPacketError(f"MSS {mss} out of range")
    return bytes((_OPT_MSS, 4)) + mss.to_bytes(2, "big")
