"""Figure 9 (micro) -- matcher engine throughput.

Software scan rates for the matching engines on benign payloads:
Aho-Corasick (compiled dense-table engine vs the sparse reference
oracle) with the full piece set and with a single pattern,
Boyer-Moore-Horspool, and the naive reference.  These anchor the cost
model's "1 reference per scanned byte" abstraction and show BMH's
sublinear skipping on real payloads.

``test_fig9_compiled_vs_reference`` is the acceptance gate for the
compiled engine: it times both engines on the same payloads, requires
byte-identical match output, requires the compiled engine to be at
least as fast on every workload and >= 2x on the full piece set, and
writes the machine-readable comparison to ``BENCH_matchers.json`` at
the repo root (CI's perf smoke job runs exactly this test).
"""

import json
import random
import sys
import time
from pathlib import Path

from exp_common import bundled_rules, emit
from repro.match import AhoCorasick, BoyerMooreHorspool, naive_find_all
from repro.signatures import split_ruleset
from repro.traffic import benign_payload

PAYLOAD_SIZE = 65_536
PATTERN = b"EVIL-PAYLOAD\x90\x90\x90\x90:exec/bin/sh"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: The compiled engine must beat the reference by this factor on the
#: full piece set (the fast path's production workload).
REQUIRED_SPEEDUP = 2.0


def payload() -> bytes:
    return benign_payload(random.Random(77), PAYLOAD_SIZE)


def rate_of(benchmark_stats, nbytes: int) -> float:
    return nbytes / benchmark_stats["mean"] / 1e6


def best_rate_mbps(fn, data: bytes, *, repeats: int = 5, min_rep_s: float = 0.05) -> float:
    """Best-of-N scan rate in MB/s, calibrating the inner loop so each
    repeat runs long enough for the clock to resolve."""
    iterations = 1
    while True:
        start = time.perf_counter()
        for _ in range(iterations):
            fn(data)
        elapsed = time.perf_counter() - start
        if elapsed >= min_rep_s:
            break
        iterations *= 4
    best = elapsed
    for _ in range(repeats - 1):
        start = time.perf_counter()
        for _ in range(iterations):
            fn(data)
        best = min(best, time.perf_counter() - start)
    return len(data) * iterations / best / 1e6


def pieceset_patterns() -> list[bytes]:
    return [piece.data for piece in split_ruleset(bundled_rules()).all_pieces()]


def test_fig9_compiled_vs_reference(capfd):
    """Acceptance gate: compiled >= reference everywhere, >= 2x on the
    production piece set, byte-identical output.  Emits BENCH_matchers.json."""
    data = payload()
    workloads = [
        ("ac_full_pieceset", pieceset_patterns()),
        ("ac_single_pattern", [PATTERN]),
    ]
    engines = []
    for name, patterns in workloads:
        compiled = AhoCorasick(patterns)
        reference = AhoCorasick(patterns, dense_state_limit=0)
        assert compiled.compiled and not reference.compiled
        # Correctness before speed: identical matches and final state on
        # the benchmark payload and on a payload with planted patterns.
        planted = data[: PAYLOAD_SIZE // 2] + patterns[0] + data[PAYLOAD_SIZE // 2 :]
        for buf in (data, planted, b"", patterns[0]):
            assert compiled.scan(buf) == reference.scan(buf), name
        compiled_mbps = best_rate_mbps(compiled.find_all, data)
        reference_mbps = best_rate_mbps(reference.find_all, data)
        engines.append(
            {
                "workload": name,
                "patterns": len(patterns),
                "states": compiled.state_count,
                "start_bytes": len(compiled.start_bytes),
                "compiled_table_bytes": compiled.compiled_table_bytes(),
                "reference_mbps": round(reference_mbps, 3),
                "compiled_mbps": round(compiled_mbps, 3),
                "speedup": round(compiled_mbps / reference_mbps, 3),
                "identical_output": True,
                # Work accounting from the engines' own scan counters
                # (covers the correctness probes plus every timing rep).
                "scan_stats": {
                    "compiled": compiled.scan_stats(),
                    "reference": reference.scan_stats(),
                },
            }
        )
    result = {
        "benchmark": "fig9_matchers",
        "payload_bytes": PAYLOAD_SIZE,
        "required_speedup_full_pieceset": REQUIRED_SPEEDUP,
        "engines": engines,
    }
    (REPO_ROOT / "BENCH_matchers.json").write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        f"{e['workload']:<20} ref={e['reference_mbps']:>9.2f} MB/s  "
        f"compiled={e['compiled_mbps']:>9.2f} MB/s  speedup={e['speedup']:.2f}x"
        for e in engines
    ]
    emit("fig9_compiled_vs_reference", lines, capfd)
    by_name = {e["workload"]: e for e in engines}
    for e in engines:
        assert e["speedup"] >= 1.0, f"{e['workload']}: compiled slower than reference"
    assert by_name["ac_full_pieceset"]["speedup"] >= REQUIRED_SPEEDUP


def test_fig9_ac_full_pieceset_compiled(benchmark, capfd):
    automaton = AhoCorasick(pieceset_patterns())
    data = payload()
    benchmark(automaton.find_all, data)
    with capfd.disabled():
        print(
            f"\nAC compiled (full {len(automaton.patterns)}-piece set): "
            f"{rate_of(benchmark.stats, len(data)):.2f} MB/s",
            file=sys.stderr,
        )


def test_fig9_ac_full_pieceset_reference(benchmark, capfd):
    automaton = AhoCorasick(pieceset_patterns(), dense_state_limit=0)
    data = payload()
    benchmark(automaton.find_all, data)
    with capfd.disabled():
        print(
            f"AC reference (full {len(automaton.patterns)}-piece set): "
            f"{rate_of(benchmark.stats, len(data)):.2f} MB/s",
            file=sys.stderr,
        )


def test_fig9_ac_single_pattern(benchmark, capfd):
    automaton = AhoCorasick([PATTERN])
    data = payload()
    benchmark(automaton.find_all, data)
    with capfd.disabled():
        print(
            f"AC compiled (single pattern): {rate_of(benchmark.stats, len(data)):.2f} MB/s",
            file=sys.stderr,
        )


def test_fig9_bmh_single_pattern(benchmark, capfd):
    matcher = BoyerMooreHorspool(PATTERN)
    data = payload()
    benchmark(matcher.find_all, data)
    with capfd.disabled():
        print(
            f"BMH (single pattern): {rate_of(benchmark.stats, len(data)):.2f} MB/s",
            file=sys.stderr,
        )


def test_fig9_naive_single_pattern(benchmark, capfd):
    data = payload()[:8192]  # quadratic reference; keep it small
    benchmark(naive_find_all, PATTERN, data)
    with capfd.disabled():
        print(
            f"naive (single pattern, 8 KiB): "
            f"{rate_of(benchmark.stats, len(data)):.2f} MB/s",
            file=sys.stderr,
        )
    emit(
        "fig9_matchers",
        ["see pytest-benchmark table in bench_output.txt for the timing rows",
         "and BENCH_matchers.json (repo root) for the compiled-vs-reference gate"],
    )
