"""Unit and property tests for the TCP reassembler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import OverlapPolicy, StreamEvent, TcpReassembler


def events_of(result):
    return [record.event for record in result.events]


def reasm(**kw):
    """Reassembler whose stream offset 0 is pinned at absolute seq 1000."""
    kw.setdefault("first_byte_seq", 1000)
    return TcpReassembler(**kw)


def feed_all(reassembler, pieces, base_seq=1000):
    """Feed (offset, data) pieces at absolute seq base_seq+offset; collect stream."""
    out = bytearray()
    events = []
    for offset, data in pieces:
        result = reassembler.add(base_seq + offset, data)
        out += result.delivered
        events.extend(events_of(result))
    return bytes(out), events


class TestInOrderDelivery:
    def test_single_segment(self):
        r = reasm()
        result = r.add(1000, b"hello")
        assert result.delivered == b"hello"
        assert result.events == []

    def test_consecutive_segments(self):
        r = reasm()
        stream, events = feed_all(r, [(0, b"abc"), (3, b"def"), (6, b"ghi")])
        assert stream == b"abcdefghi"
        assert events == []

    def test_syn_consumes_one_sequence_number(self):
        r = reasm()
        r.add(999, b"", syn=True)
        result = r.add(1000, b"abc")
        assert result.delivered == b"abc"

    def test_syn_with_data(self):
        r = reasm()
        result = r.add(999, b"ab", syn=True)
        assert result.delivered == b"ab"
        assert r.add(1002, b"cd").delivered == b"cd"

    def test_empty_ack_is_noop(self):
        r = reasm()
        r.add(1000, b"abc")
        result = r.add(1003, b"")
        assert result.delivered == b"" and result.events == []

    def test_sequence_wraparound(self):
        start = 2**32 - 3
        r = reasm(first_byte_seq=start)
        r.add(start, b"abc")
        result = r.add(0, b"def")
        assert result.delivered == b"def"
        assert r.delivered_total == 6


class TestFin:
    def test_fin_in_order_finishes(self):
        r = reasm()
        r.add(1000, b"abc")
        result = r.add(1003, b"de", fin=True)
        assert result.finished and r.finished

    def test_fin_waits_for_hole(self):
        r = reasm()
        r.add(1000, b"abc")
        result = r.add(1006, b"fg", fin=True)
        assert not result.finished
        result = r.add(1003, b"def")
        assert result.finished
        assert result.delivered == b"deffg"  # "def" then the buffered "fg"

    def test_fin_waits_for_hole_exact(self):
        r = reasm()
        r.add(1000, b"abc")
        r.add(1005, b"fg", fin=True)
        result = r.add(1003, b"de")
        assert result.finished
        assert result.delivered == b"defg"

    def test_moved_fin_is_inconsistent(self):
        r = reasm()
        r.add(1003, b"x", fin=True)
        result = r.add(1005, b"y", fin=True)
        assert StreamEvent.INCONSISTENT_OVERLAP in events_of(result)


class TestOutOfOrder:
    def test_gap_then_fill(self):
        r = reasm()
        result = r.add(1003, b"def")
        assert StreamEvent.OUT_OF_ORDER in events_of(result)
        assert result.delivered == b""
        result = r.add(1000, b"abc")
        assert result.delivered == b"abcdef"

    def test_multiple_holes(self):
        r = reasm()
        r.add(1006, b"g")
        r.add(1002, b"cd")
        assert r.pending_holes() == [(0, 2), (4, 6)]
        result = r.add(1000, b"ab")
        assert result.delivered == b"abcd"
        result = r.add(1004, b"ef")
        assert result.delivered == b"efg"

    def test_buffered_accounting(self):
        r = reasm()
        r.add(1010, b"x" * 5)
        assert r.buffered_bytes == 5
        assert r.buffered_chunks == 1
        r.add(1000, b"y" * 10)
        assert r.buffered_bytes == 0

    def test_out_of_window_dropped(self):
        r = reasm(horizon=100)
        r.add(1000, b"a")
        result = r.add(1000 + 500, b"far")
        assert StreamEvent.OUT_OF_WINDOW in events_of(result)
        assert r.buffered_bytes == 0

    def test_buffer_overflow(self):
        r = reasm(max_buffered=10)
        result = r.add(1100, b"x" * 20)
        assert StreamEvent.BUFFER_OVERFLOW in events_of(result)
        assert r.buffered_bytes == 10


class TestRetransmission:
    def test_exact_retransmission_is_consistent(self):
        r = reasm()
        r.add(1000, b"abcdef")
        result = r.add(1000, b"abcdef")
        assert events_of(result) == [StreamEvent.RETRANSMISSION]
        assert result.delivered == b""

    def test_inconsistent_retransmission_detected(self):
        r = reasm()
        r.add(1000, b"abcdef")
        result = r.add(1000, b"abCdef")
        assert StreamEvent.INCONSISTENT_OVERLAP in events_of(result)

    def test_partial_retransmission_delivers_tail(self):
        r = reasm()
        r.add(1000, b"abc")
        result = r.add(1001, b"bcdef")
        assert result.delivered == b"def"

    def test_history_limit_disables_consistency_check(self):
        r = reasm(history=4)
        r.add(1000, b"abcdefgh")
        # Bytes 0..3 are out of history; a differing copy is unverifiable.
        result = r.add(1000, b"XXcd")
        assert StreamEvent.RETRANSMISSION in events_of(result)
        assert StreamEvent.INCONSISTENT_OVERLAP not in events_of(result)


class TestOverlapPolicies:
    def make_overlap(self, policy):
        """Buffer [5,10) then send [2,8) with different bytes; fill hole last."""
        r = reasm(policy=policy)
        r.add(1005, b"OLDxx")  # offsets 5..10
        r.add(1002, b"newNEW")  # offsets 2..8, contested 5..8
        result = r.add(1000, b"ab")  # fills 0..2, releases everything
        return result.delivered

    def test_first_keeps_old(self):
        assert self.make_overlap(OverlapPolicy.FIRST) == b"abnewOLDxx"

    def test_last_takes_new(self):
        assert self.make_overlap(OverlapPolicy.LAST) == b"abnewNEWxx"

    def test_bsd_new_starting_earlier_wins(self):
        assert self.make_overlap(OverlapPolicy.BSD) == b"abnewNEWxx"

    def test_linux_keeps_old(self):
        assert self.make_overlap(OverlapPolicy.LINUX) == b"abnewOLDxx"

    def test_overlap_event_reported(self):
        r = reasm()
        r.add(1005, b"OLDxx")
        result = r.add(1002, b"newNEW")
        assert StreamEvent.INCONSISTENT_OVERLAP in events_of(result)

    def test_consistent_overlap_reported_as_overlap(self):
        r = reasm()
        r.add(1005, b"WXYZQ")
        result = r.add(1002, b"abcWXY")
        assert StreamEvent.OVERLAP in events_of(result)
        assert StreamEvent.INCONSISTENT_OVERLAP not in events_of(result)

    def test_engulfing_segment(self):
        r = reasm(policy=OverlapPolicy.WINDOWS)
        r.add(1005, b"OLD")
        r.add(1000, b"NEWNEWNEWNEW")  # engulfs [5,8) entirely
        result = r.add(1000, b"")  # no-op; stream already delivered
        assert r.delivered_total == 12

    def test_delivered_bytes_never_retracted(self):
        # Once bytes reach the application they are final, whatever the policy.
        r = reasm(policy=OverlapPolicy.LAST)
        r.add(1000, b"abcdef")
        r.add(1000, b"XXXXXX")
        assert r.delivered_total == 6
        result = r.add(1006, b"tail")
        assert result.delivered == b"tail"


class TestTinySegments:
    def test_threshold_flags_small_data(self):
        r = reasm(tiny_threshold=8)
        result = r.add(1000, b"abc")
        assert StreamEvent.TINY_SEGMENT in events_of(result)

    def test_fin_segment_exempt(self):
        r = reasm(tiny_threshold=8)
        result = r.add(1000, b"abc", fin=True)
        assert StreamEvent.TINY_SEGMENT not in events_of(result)

    def test_threshold_zero_disables(self):
        r = reasm()
        result = r.add(1000, b"a")
        assert StreamEvent.TINY_SEGMENT not in events_of(result)


@st.composite
def segmentation(draw):
    """A stream plus a partition of it into contiguous segments."""
    data = draw(st.binary(min_size=1, max_size=300))
    cuts = draw(
        st.lists(st.integers(min_value=1, max_value=len(data)), max_size=10).map(sorted)
    )
    bounds = [0] + sorted(set(c for c in cuts if c < len(data))) + [len(data)]
    pieces = [
        (bounds[i], data[bounds[i] : bounds[i + 1]]) for i in range(len(bounds) - 1)
    ]
    return data, pieces


@given(segmentation())
def test_in_order_segmentation_reassembles_exactly(case):
    data, pieces = case
    r = reasm()
    stream, events = feed_all(r, pieces)
    assert stream == data
    assert events == []


@given(segmentation(), st.randoms(use_true_random=False))
def test_any_permutation_reassembles_exactly(case, rng):
    data, pieces = case
    shuffled = list(pieces)
    rng.shuffle(shuffled)
    r = reasm()
    stream, events = feed_all(r, shuffled)
    assert stream == data
    # Disjoint pieces can never produce overlap events, only reordering.
    assert set(events) <= {StreamEvent.OUT_OF_ORDER}


@given(
    segmentation(),
    st.randoms(use_true_random=False),
    st.sampled_from(list(OverlapPolicy)),
)
@settings(max_examples=50)
def test_consistent_duplicates_never_corrupt_stream(case, rng, policy):
    # Send every piece twice in random order with *identical* content: the
    # application must still see exactly the original stream under every
    # policy, because consistent overlaps are resolution-invariant.
    data, pieces = case
    doubled = list(pieces) + list(pieces)
    rng.shuffle(doubled)
    r = reasm(policy=policy)
    stream, events = feed_all(r, doubled)
    assert stream == data
    assert StreamEvent.INCONSISTENT_OVERLAP not in events


@given(segmentation(), st.randoms(use_true_random=False))
@settings(max_examples=50)
def test_buffered_bytes_drain_to_zero(case, rng):
    data, pieces = case
    shuffled = list(pieces)
    rng.shuffle(shuffled)
    r = reasm()
    feed_all(r, shuffled)
    assert r.buffered_bytes == 0
    assert r.pending_holes() == []
    assert r.delivered_total == len(data)
