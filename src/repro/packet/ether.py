"""Minimal Ethernet II framing, enough to write/read valid pcap files."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .errors import MalformedPacketError, TruncatedPacketError

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

_ETH_FMT = struct.Struct("!6s6sH")


def mac_to_bytes(mac: str) -> bytes:
    """Convert ``aa:bb:cc:dd:ee:ff`` notation to 6 raw bytes."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise MalformedPacketError(f"not a MAC address: {mac!r}")
    try:
        return bytes(int(p, 16) for p in parts)
    except ValueError as exc:
        raise MalformedPacketError(f"not a MAC address: {mac!r}") from exc


def bytes_to_mac(raw: bytes) -> str:
    """Convert 6 raw bytes to colon-separated hex notation."""
    if len(raw) != 6:
        raise MalformedPacketError(f"MAC address must be 6 bytes, got {len(raw)}")
    return ":".join(f"{b:02x}" for b in raw)


@dataclass
class EthernetFrame:
    """An Ethernet II frame; ``payload`` is the layer-3 packet bytes."""

    dst: str = "ff:ff:ff:ff:ff:ff"
    src: str = "02:00:00:00:00:01"
    ethertype: int = ETHERTYPE_IPV4
    payload: bytes = b""

    def serialize(self) -> bytes:
        """Render the frame to wire bytes (no FCS; pcap omits it too)."""
        return _ETH_FMT.pack(mac_to_bytes(self.dst), mac_to_bytes(self.src), self.ethertype) + self.payload

    @classmethod
    def parse(cls, raw: bytes) -> "EthernetFrame":
        """Parse wire bytes into an ``EthernetFrame``."""
        if len(raw) < 14:
            raise TruncatedPacketError("Ethernet header", 14, len(raw))
        dst_raw, src_raw, ethertype = _ETH_FMT.unpack_from(raw)
        return cls(
            dst=bytes_to_mac(dst_raw),
            src=bytes_to_mac(src_raw),
            ethertype=ethertype,
            payload=bytes(raw[14:]),
        )
