"""Baselines: the conventional IPS and the naive per-packet matcher.

``ConventionalIPS`` is the paradigm the paper breaks with: defragment,
reassemble, and normalize *every* flow, then stream-match every signature
over the canonical byte stream.  It detects all the evasions Split-Detect
does; the point of the comparison is its state and processing bill.

``NaivePacketIPS`` is the strawman Ptacek-Newsham attacks were aimed at:
per-packet matching with no reassembly at all.  It exists so the evasion
matrix (Table 3) can show exactly which attack classes defeat it.
"""

from __future__ import annotations

from ..match import DualStreamMatcher
from ..packet import (
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    FlowKey,
    TimedPacket,
    decode_tcp,
    decode_udp,
    flow_key_of,
)
from ..signatures import RuleSet
from ..streams import OverlapPolicy, StreamEvent, StreamNormalizer
from .alerts import Alert, AlertKind
from .matching import SignatureMatcher, StreamMatchState

_AMBIGUITY_EVENTS = frozenset(
    {
        StreamEvent.INCONSISTENT_OVERLAP,
        StreamEvent.INCONSISTENT_FRAGMENT_OVERLAP,
        StreamEvent.TTL_ANOMALY,
    }
)


class ConventionalIPS:
    """Reassemble-and-normalize-everything signature detection."""

    def __init__(
        self, rules: RuleSet, *, policy: OverlapPolicy = OverlapPolicy.BSD
    ) -> None:
        self.normalizer = StreamNormalizer(policy=policy)
        self._matcher = SignatureMatcher(sorted(rules, key=lambda s: s.sid))
        self._streams: dict[FlowKey, StreamMatchState] = {}
        self.packets_processed = 0
        self.bytes_normalized = 0

    # -- accounting ------------------------------------------------------

    def state_bytes(self) -> int:
        """Reassembly buffers + flow table + per-direction matcher state."""
        return (
            self.normalizer.state_bytes()
            + len(self._streams) * DualStreamMatcher.STATE_BYTES
        )

    @property
    def active_flows(self) -> int:
        """Flows currently holding reassembly state."""
        return self.normalizer.active_flows

    # -- packet intake ------------------------------------------------------

    def process(self, packet: TimedPacket) -> list[Alert]:
        """Normalize one packet and match signatures over new stream bytes."""
        self.packets_processed += 1
        output = self.normalizer.process(packet)
        alerts: list[Alert] = []
        flow = output.flow
        if flow is None:
            return alerts
        for record in output.events:
            if record.event in _AMBIGUITY_EVENTS:
                alerts.append(
                    Alert(
                        kind=AlertKind.AMBIGUITY,
                        flow=flow,
                        msg=str(record),
                        stream_offset=record.offset,
                        timestamp=packet.timestamp,
                    )
                )
        if not self._matcher.empty:
            for chunk in output.chunks:
                self.bytes_normalized += len(chunk)
                state = self._streams.get(flow)
                if state is None:
                    state = self._matcher.new_stream_state()
                    self._streams[flow] = state
                alerts.extend(
                    self._signature_alert(hit, flow, packet.timestamp)
                    for hit in self._matcher.match_chunk(state, chunk, flow)
                )
            if (
                output.datagram is not None
                and output.datagram.protocol == IP_PROTO_UDP
            ):
                try:
                    payload = decode_udp(output.datagram).payload
                except Exception:
                    payload = b""
                if payload:
                    self.bytes_normalized += len(payload)
                    alerts.extend(
                        self._signature_alert(hit, flow, packet.timestamp)
                        for hit in self._matcher.match_buffer(payload, flow)
                    )
        if output.flow_closed:
            self._streams.pop(flow, None)
            self._streams.pop(flow.reversed(), None)
        return alerts

    @staticmethod
    def _signature_alert(hit, flow: FlowKey, timestamp: float) -> Alert:
        return Alert(
            kind=AlertKind.SIGNATURE,
            flow=flow,
            sid=hit.signature.sid,
            msg=hit.signature.msg,
            stream_offset=hit.end_offset,
            timestamp=timestamp,
        )

    def process_batch(self, packets: list[TimedPacket]) -> list[Alert]:
        """Batch driver for the conventional pipeline.

        Reassembly is order-dependent per flow, so this is a plain
        sequential sweep -- it exists so every engine exposes the same
        batched intake surface as :class:`SplitDetectIPS.process_batch`.
        """
        alerts: list[Alert] = []
        for packet in packets:
            alerts.extend(self.process(packet))
        return alerts

    def evict_idle(self, now: float) -> int:
        """Expire idle flows and their matcher state."""
        evicted = self.normalizer.evict_idle(now)
        if evicted:
            live = self.normalizer.live_flows()
            for key in list(self._streams):
                if key.canonical() not in live:
                    del self._streams[key]
        return evicted


class NaivePacketIPS:
    """Per-packet matching with no reassembly: the evadable strawman."""

    def __init__(self, rules: RuleSet) -> None:
        self._matcher = SignatureMatcher(sorted(rules, key=lambda s: s.sid))
        self.packets_processed = 0
        self.bytes_scanned = 0

    def state_bytes(self) -> int:
        """The whole point: nothing per flow."""
        return 0

    def process(self, packet: TimedPacket) -> list[Alert]:
        """Scan one packet's transport payload in isolation."""
        self.packets_processed += 1
        alerts: list[Alert] = []
        ip = packet.ip
        if ip.is_fragment or self._matcher.empty:
            return alerts
        try:
            if ip.protocol == IP_PROTO_TCP:
                payload = decode_tcp(ip).payload
            elif ip.protocol == IP_PROTO_UDP:
                payload = decode_udp(ip).payload
            else:
                return alerts
        except Exception:
            return alerts
        if not payload:
            return alerts
        flow = flow_key_of(ip)
        self.bytes_scanned += len(payload)
        for hit in self._matcher.match_buffer(payload, flow):
            alerts.append(
                Alert(
                    kind=AlertKind.SIGNATURE,
                    flow=flow,
                    sid=hit.signature.sid,
                    msg=hit.signature.msg,
                    stream_offset=hit.end_offset,
                    timestamp=packet.timestamp,
                    path="fast",
                )
            )
        return alerts

    def process_batch(self, packets: list[TimedPacket]) -> list[Alert]:
        """Batched per-packet matching: one automaton sweep for the whole
        batch (each payload is stateless, so the sweep is exact)."""
        scannable: list[tuple[TimedPacket, FlowKey, bytes]] = []
        for packet in packets:
            self.packets_processed += 1
            ip = packet.ip
            if ip.is_fragment or self._matcher.empty:
                continue
            try:
                if ip.protocol == IP_PROTO_TCP:
                    payload = decode_tcp(ip).payload
                elif ip.protocol == IP_PROTO_UDP:
                    payload = decode_udp(ip).payload
                else:
                    continue
            except Exception:
                continue
            if not payload:
                continue
            self.bytes_scanned += len(payload)
            scannable.append((packet, flow_key_of(ip), payload))
        alerts: list[Alert] = []
        hit_lists = self._matcher.match_buffer_many(
            [payload for _, _, payload in scannable],
            [flow for _, flow, _ in scannable],
        )
        for (packet, flow, _), hits in zip(scannable, hit_lists):
            alerts.extend(
                Alert(
                    kind=AlertKind.SIGNATURE,
                    flow=flow,
                    sid=hit.signature.sid,
                    msg=hit.signature.msg,
                    stream_offset=hit.end_offset,
                    timestamp=packet.timestamp,
                    path="fast",
                )
                for hit in hits
            )
        return alerts
