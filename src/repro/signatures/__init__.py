"""Signatures: model, rule parsing, bundled corpus, and the splitter."""

from .corpus import load_bundled_rules, regenerate_bundled_file, synthesize_corpus
from .lint import LintFinding, LintLevel, lint_ruleset
from .model import Piece, RuleSet, Signature, SplitSignature
from .ngram import ByteFrequencyModel, uniform_model
from .rules import (
    RuleParseError,
    decode_content,
    dump_rules,
    encode_content,
    format_rule,
    load_rules,
    parse_rule,
    parse_rules,
)
from .splitter import (
    ABSOLUTE_MIN_PIECE,
    SplitPolicy,
    SplitRuleSet,
    UnsplittableSignatureError,
    effective_piece_length,
    split_ruleset,
    split_signature,
)

__all__ = [
    "ABSOLUTE_MIN_PIECE",
    "ByteFrequencyModel",
    "Piece",
    "RuleParseError",
    "RuleSet",
    "Signature",
    "SplitPolicy",
    "SplitRuleSet",
    "SplitSignature",
    "UnsplittableSignatureError",
    "LintFinding",
    "LintLevel",
    "decode_content",
    "dump_rules",
    "lint_ruleset",
    "effective_piece_length",
    "encode_content",
    "format_rule",
    "load_bundled_rules",
    "load_rules",
    "parse_rule",
    "parse_rules",
    "regenerate_bundled_file",
    "split_ruleset",
    "split_signature",
    "synthesize_corpus",
    "uniform_model",
]
