"""Per-shard results and their deterministic merge into one report.

Shards are shared-nothing, so each produces an independent
:class:`ShardReport`; :func:`merge_shard_reports` folds N of them into a
:class:`RuntimeReport` whose contract is:

- **alerts** are re-sorted into a deterministic global order -- packet
  time first, then shard index, then the shard's emission sequence -- so
  serial and parallel runs of the same trace print identically;
- **counters** (packets, bytes, diversions, alerts, evictions) are
  summed, making them directly comparable with an unsharded engine's
  :class:`~repro.core.EngineStats` on the same trace;
- **peaks** (state bytes, flows) are summed too: each shard provisions
  its own tables, so the system-wide footprint is the sum of per-shard
  provisioning (an upper bound on any instantaneous global peak);
- **telemetry** registries merge under the per-metric rules the registry
  declares (sum counters, bucket-wise sum histograms, max/sum/last
  gauges -- see :meth:`repro.telemetry.TelemetryRegistry.merge`).

:func:`equivalence_digest` condenses the alert list and summed counters
into one hash so benchmarks and CI can assert serial == parallel ==
unsharded without hauling alert lists around.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..core import Alert, CountMinSketch, EngineStats
from ..telemetry import TelemetryRegistry, merge_trace_snapshots, stage_profile

__all__ = [
    "DegradedInterval",
    "RuntimeReport",
    "ShardDelta",
    "ShardReport",
    "alert_sort_key",
    "equivalence_digest",
    "merge_shard_reports",
]


def alert_sort_key(alert: Alert) -> tuple:
    """A total, content-based order on alerts, stable across processes.

    Used for equivalence comparison (and the digest): two runs that
    produced the same alert *set* compare equal after sorting with this
    key, regardless of how routing interleaved emission.
    """
    return (
        alert.timestamp,
        str(alert.flow),
        alert.kind.value,
        -1 if alert.sid is None else alert.sid,
        alert.stream_offset,
        alert.path,
        alert.msg,
    )


def equivalence_digest(alerts: list[Alert], stats: EngineStats) -> str:
    """SHA-256 over the canonicalized alert list + summed counters.

    The same trace must yield the same digest from the unsharded engine,
    the serial runner, and the parallel runner at any worker count --
    this is the bit benchmarks and CI compare.
    """
    canonical = {
        "alerts": [list(map(str, alert_sort_key(a))) for a in sorted(alerts, key=alert_sort_key)],
        "packets": stats.packets_total,
        "fast_packets": stats.fast_packets,
        "slow_packets": stats.slow_packets,
        "fast_bytes": stats.fast_bytes_scanned,
        "slow_bytes": stats.slow_bytes_normalized,
        "diversions": stats.diversions,
        "alert_count": stats.alerts,
    }
    payload = json.dumps(canonical, separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()


@dataclass
class ShardReport:
    """Everything one shard produced (crosses the process boundary)."""

    shard: int
    generation: int = 0
    """Which engine incarnation produced this report: 0 for the original
    worker, +1 per supervisor restart.  A supervised run can therefore
    hold several reports for one shard index (a salvaged partial from a
    crashed generation plus its replacement's final), and the alert
    merge orders them by generation so replay order is deterministic."""

    alerts: list[Alert] = field(default_factory=list)
    stats: EngineStats = field(default_factory=EngineStats)
    divert_reasons: dict[str, int] = field(default_factory=dict)
    diverted_flows: int = 0
    reinstated_flows: int = 0
    overload_refusals: int = 0
    peak_state_bytes: int = 0
    peak_flows: int = 0
    evictions: int = 0
    batches: int = 0
    busy_ns: int = 0
    """CPU nanoseconds this shard's engine spent processing (queue wait
    and scheduler preemption excluded) -- the per-shard denominator of
    aggregate throughput."""

    quarantined: dict[str, int] = field(default_factory=dict)
    """Packets dropped by this shard's malformed-input quarantine, by
    exception class name."""

    telemetry: TelemetryRegistry | None = None

    sketch: CountMinSketch | None = None
    """This shard's anomaly count-min sketch snapshot (sketch state
    backend only).  Attached by ``finish()``, never by a delta flush --
    like the telemetry registry, it is too heavy to ship per flush."""

    trace: dict | None = None
    """This shard tracer's span-ring snapshot (None when tracing is
    off).  Unlike telemetry and the sketch, the ring is bounded, so it
    *is* shipped with every delta flush -- which is what lets a crashed
    generation's spans be salvaged from its last delta."""

    @property
    def busy_seconds(self) -> float:
        return self.busy_ns / 1e9

    @property
    def accounted_packets(self) -> int:
        """Packets this shard has definitively disposed of: examined by
        the engine plus quarantined.  The supervisor's loss accounting
        is ``routed - accounted`` at the moment of death."""
        return self.stats.packets_total + sum(self.quarantined.values())


@dataclass
class ShardDelta:
    """A supervised worker's periodic result flush.

    Everything except ``report.alerts`` is *cumulative* for the worker's
    current generation; the alerts list carries only those raised since
    the previous flush (the parent reassembles the full list by
    concatenating chunks).  A crash loses at most one flush interval of
    alerts -- the supervisor salvages the rest from the last delta.
    """

    seq: int
    """Monotonic flush counter within one generation (sanity check)."""

    report: ShardReport
    """Cumulative counters + the alerts-since-last-flush chunk.  Never
    carries a telemetry registry (too heavy to ship per flush); a
    crashed generation's telemetry is part of its reported loss."""

    last_ts: float | None = None
    """Packet-time timestamp of the last packet this shard disposed of;
    becomes the start of the degraded interval if the worker dies now."""

    tracked_flows: int = 0
    """Live flow records (fast-path monitor + slow-path streams) at
    flush time -- the ``flows_reset`` figure a restart would report."""


@dataclass
class DegradedInterval:
    """One supervision gap: what a worker failure cost, made explicit.

    The paper's contract is that anomalous traffic is *diverted*, never
    silently dropped; the runtime extends that to its own failures.  A
    worker crash/hang/error never loses coverage silently -- it produces
    one of these in the merged report, bounding exactly which packets
    and flows the replacement engine cannot vouch for.
    """

    shard: int
    generation: int
    """The engine incarnation that failed (its replacement, if any, is
    ``generation + 1``)."""

    reason: str
    """``crash`` (process died), ``hang`` (heartbeat silence), ``error``
    (engine raised and the worker reported before exiting), or
    ``drain_loss`` (died after the drain sentinel, results gone)."""

    start_ts: float | None = None
    """Packet time of the last packet whose results were confirmed by a
    delta flush -- alerts at or before this time are intact.  None when
    the generation never confirmed anything."""

    end_ts: float | None = None
    """Packet time of the first packet handed to the replacement
    generation; None when the shard stayed dead to end of run."""

    packets_lost: int = 0
    """Packets routed to the failed generation but never confirmed:
    in-queue at death, in-flight, or processed-but-unflushed (whose
    alerts are gone either way)."""

    batches_lost: int = 0
    flows_reset: int = 0
    """Flow records the replacement engine starts without (its fresh
    tables treat mid-stream packets as new flows)."""

    alerts_salvaged: int = 0
    """Alerts recovered from the failed generation's delta flushes."""

    detail: str = ""
    """Worker traceback for ``error``; exit code for ``crash``."""

    @property
    def open(self) -> bool:
        """True while the shard has no replacement processing traffic."""
        return self.end_ts is None


@dataclass
class RuntimeReport:
    """The merged view of one sharded run."""

    mode: str
    """``"serial"`` or ``"parallel"``."""

    workers: int
    alerts: list[Alert] = field(default_factory=list)
    shards: list[ShardReport] = field(default_factory=list)
    stats: EngineStats = field(default_factory=EngineStats)
    divert_reasons: dict[str, int] = field(default_factory=dict)
    diverted_flows: int = 0
    reinstated_flows: int = 0
    overload_refusals: int = 0
    peak_state_bytes: int = 0
    peak_flows: int = 0
    evictions: int = 0
    batches_routed: int = 0
    shed_packets: int = 0
    shed_batches: int = 0
    degraded: list[DegradedInterval] = field(default_factory=list)
    """Supervision gaps, in failure order; empty for a clean run."""

    worker_restarts: int = 0
    """Workers the supervisor replaced with a fresh engine."""

    interrupted: bool = False
    """The feed loop was stopped early (SIGINT/stop request) and the run
    drained into this *partial* report instead of tracebacking.  Counters
    and loss accounting still close over what was actually fed."""

    quarantined: dict[str, int] = field(default_factory=dict)
    """Malformed frames dropped at decode boundaries, by exception
    class (feeder-side parse failures plus shard-side engine escapes)."""

    wall_seconds: float = 0.0
    telemetry: dict | None = None
    """Merged registry snapshot (None when telemetry was off)."""

    sketch: CountMinSketch | None = None
    """Bucket-wise merge of every shard's anomaly sketch (sketch state
    backend only).  Deliberately outside :meth:`digest`: count-min
    merging is exact cell addition, but keeping the equivalence hash
    over alerts + counters means a sketch-shape config change can never
    masquerade as a detection difference."""

    registry: TelemetryRegistry | None = None
    """The live merged registry behind :attr:`telemetry`, for exporters
    (:func:`repro.telemetry.write_telemetry`) and further merging."""

    trace: dict | None = None
    """Merged flight-recorder snapshot: every shard's (and salvaged
    generation's) spans re-sorted by (ts, shard, gen, seq).  Outside
    :meth:`digest`, like telemetry and the sketch -- tracing must never
    change what a run *detects*."""

    profile: dict | None = None
    """Stage self-profile (p50/p90/p99/max per stage + slowest flows),
    computed from the merged registry; None when telemetry was off."""

    @property
    def packets(self) -> int:
        """Packets actually examined (shed packets are not in here)."""
        return self.stats.packets_total

    @property
    def degraded_packets(self) -> int:
        """Packets lost to worker failures across every degraded interval."""
        return sum(interval.packets_lost for interval in self.degraded)

    @property
    def quarantined_packets(self) -> int:
        """Malformed frames dropped at decode boundaries (all causes)."""
        return sum(self.quarantined.values())

    @property
    def is_degraded(self) -> bool:
        """True when any coverage was lost: worker gaps, shed batches,
        or quarantined frames.  The inverse of "this report is
        bit-for-bit comparable with a serial run"."""
        return bool(self.degraded or self.shed_packets or self.quarantined)

    @property
    def diversion_byte_fraction(self) -> float:
        total = self.stats.fast_bytes_scanned + self.stats.slow_bytes_normalized
        return self.stats.slow_bytes_normalized / total if total else 0.0

    @property
    def wall_throughput_pps(self) -> float:
        """End-to-end packets per second (routing + queues + engines)."""
        return self.packets / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def aggregate_shard_pps(self) -> float:
        """Sum of per-shard engine rates (packets over engine-busy time).

        This is capacity the shards provide when each has its own core;
        on a host with fewer cores than workers the wall number cannot
        reach it, but the per-shard rates still show whether sharding
        itself added overhead.
        """
        return sum(
            shard.stats.packets_total / shard.busy_seconds
            for shard in self.shards
            if shard.busy_ns > 0
        )

    def digest(self) -> str:
        """The serial-vs-parallel-vs-unsharded equivalence hash."""
        return equivalence_digest(self.alerts, self.stats)


def merge_shard_reports(
    shard_reports: list[ShardReport],
    *,
    mode: str,
    workers: int,
    wall_seconds: float,
    batches_routed: int = 0,
    shed_packets: int = 0,
    shed_batches: int = 0,
    degraded: list[DegradedInterval] | None = None,
    worker_restarts: int = 0,
    quarantined: dict[str, int] | None = None,
    interrupted: bool = False,
) -> RuntimeReport:
    """Fold per-shard results into the combined report (see module doc).

    ``quarantined`` carries the *feeder-side* decode quarantine; each
    shard's own quarantine ledger is folded in on top, so the merged map
    covers every decode boundary in the run.
    """
    report = RuntimeReport(mode=mode, workers=workers, wall_seconds=wall_seconds)
    report.shards = sorted(shard_reports, key=lambda r: (r.shard, r.generation))
    report.batches_routed = batches_routed
    report.shed_packets = shed_packets
    report.shed_batches = shed_batches
    report.degraded = list(degraded or [])
    report.worker_restarts = worker_restarts
    report.interrupted = interrupted
    for cause in sorted(quarantined or {}):
        report.quarantined[cause] = (quarantined or {})[cause]

    ordered: list[tuple[float, int, int, int, Alert]] = []
    for shard in report.shards:
        for seq, alert in enumerate(shard.alerts):
            ordered.append(
                (alert.timestamp, shard.shard, shard.generation, seq, alert)
            )
        stats = shard.stats
        report.stats.packets_total += stats.packets_total
        report.stats.fast_packets += stats.fast_packets
        report.stats.slow_packets += stats.slow_packets
        report.stats.fast_bytes_scanned += stats.fast_bytes_scanned
        report.stats.slow_bytes_normalized += stats.slow_bytes_normalized
        report.stats.diversions += stats.diversions
        report.stats.alerts += stats.alerts
        report.stats.decode_errors += stats.decode_errors
        for reason, count in shard.divert_reasons.items():
            report.divert_reasons[reason] = report.divert_reasons.get(reason, 0) + count
        for cause in sorted(shard.quarantined):
            report.quarantined[cause] = (
                report.quarantined.get(cause, 0) + shard.quarantined[cause]
            )
        report.diverted_flows += shard.diverted_flows
        report.reinstated_flows += shard.reinstated_flows
        report.overload_refusals += shard.overload_refusals
        report.peak_state_bytes += shard.peak_state_bytes
        report.peak_flows += shard.peak_flows
        report.evictions += shard.evictions
        if shard.sketch is not None:
            # Bucket-wise fold: cell-by-cell saturating addition keeps
            # the merged estimates overestimate-only (see
            # CountMinSketch.merge), so one merged sketch stands in for
            # N per-shard sketches.
            if report.sketch is None:
                report.sketch = shard.sketch.copy()
            else:
                report.sketch.merge(shard.sketch)
    ordered.sort(key=lambda entry: entry[:4])
    report.alerts = [entry[4] for entry in ordered]

    registries = [s.telemetry for s in report.shards if s.telemetry is not None]
    if registries:
        merged = TelemetryRegistry()
        for registry in registries:
            merged.merge(registry)
        runtime_shed = merged.counter(
            "repro_runtime_shed_packets_total",
            "Packets dropped unexamined because a shard queue was full "
            "under the shed backpressure policy (the coverage hole)",
        )
        if shed_packets:
            runtime_shed.inc(shed_packets)
        runtime_batches = merged.counter(
            "repro_runtime_batches_routed_total",
            "Per-shard sub-batches the router enqueued",
        )
        if batches_routed:
            runtime_batches.inc(batches_routed)
        restarts_counter = merged.counter(
            "repro_runtime_worker_restarts_total",
            "Workers the supervisor replaced after a crash, hang, or "
            "reported engine error",
        )
        if worker_restarts:
            restarts_counter.inc(worker_restarts)
        degraded_counter = merged.counter(
            "repro_runtime_degraded_packets_total",
            "Packets lost in supervision gaps (routed to a worker that "
            "died before confirming them) -- the explicit coverage hole "
            "of degraded mode",
        )
        lost = sum(interval.packets_lost for interval in report.degraded)
        if lost:
            degraded_counter.inc(lost)
        quarantine_counter = merged.counter(
            "repro_runtime_quarantined_packets_total",
            "Malformed frames dropped at a decode boundary instead of "
            "killing the pipeline, by exception class",
            ("cause",),
        )
        for cause in sorted(report.quarantined):
            quarantine_counter.labels(cause=cause).inc(report.quarantined[cause])
        merged.gauge(
            "repro_runtime_workers", "Shards this run was partitioned across",
            merge="sum",
        ).set(workers)
        report.registry = merged
        report.telemetry = merged.snapshot()
        report.profile = stage_profile(merged)

    traces = [s.trace for s in report.shards if s.trace]
    if traces:
        report.trace = merge_trace_snapshots(*traces)
    return report
