"""The ``splitdetect check`` / ``python -m repro.devtools.splitcheck`` CLI.

Exit codes: 0 = clean (every finding baselined or warning-only),
1 = new error-level findings, 2 = usage or configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import load_baseline, partition, write_baseline
from .cache import CACHE_FILENAME
from .config import Config, load_config
from .engine import all_rules, build_graph, check_paths
from .findings import Finding, Severity

__all__ = ["configure_parser", "main", "run_check"]


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the check options (shared with the ``splitdetect check`` subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro under the "
        "config root)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="config root holding pyproject.toml (default: walk up from the "
        "first path, falling back to the cwd)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all enabled)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file of grandfathered findings (default: "
        "[tool.splitcheck] baseline in pyproject.toml)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any configured baseline (report everything)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather every current finding",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="emit findings as JSON on stdout (shorthand for "
        "--output-format json)",
    )
    parser.add_argument(
        "--output-format",
        choices=("text", "json", "github"),
        default=None,
        help="finding output format; 'github' emits GitHub Actions "
        "::error/::warning annotations that land on the PR diff",
    )
    parser.add_argument(
        "--strict-warnings",
        action="store_true",
        help="exit non-zero on new warning-level findings too",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the incremental facts cache",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        help=f"incremental cache file (default: {CACHE_FILENAME} at the "
        "config root)",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="dump the project import/def-use graph as JSON and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and its default scope, then exit",
    )
    return parser


def _list_rules() -> int:
    for rule_id, cls in all_rules().items():
        print(f"{rule_id}  {cls.title}")
        for pattern in cls.default_paths:
            print(f"       scope: {pattern}")
    return 0


def _emit_json(
    new: list[Finding],
    known: list[Finding],
    checked_files: int,
    baseline_path: Path | None,
) -> None:
    json.dump(
        {
            "version": 1,
            "checked_files": checked_files,
            "baseline": str(baseline_path) if baseline_path else None,
            "new": [finding.to_dict() for finding in new],
            "baselined": [finding.to_dict() for finding in known],
        },
        sys.stdout,
        indent=2,
    )
    sys.stdout.write("\n")


def _github_escape(text: str) -> str:
    """Escape per the workflow-command data rules."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _emit_github(new: list[Finding], checked_files: int) -> None:
    for finding in new:
        level = "error" if finding.severity is Severity.ERROR else "warning"
        print(
            f"::{level} file={finding.path},line={finding.line},"
            f"col={finding.col},title={finding.rule}::"
            f"{_github_escape(finding.message)}"
        )
    print(f"splitcheck: {checked_files} file(s), {len(new)} new finding(s)")


def run_check(args: argparse.Namespace) -> int:
    """Execute a configured check run (the engine behind both CLIs)."""
    if args.list_rules:
        return _list_rules()

    try:
        if args.root:
            config: Config = load_config(Path(args.root))
        else:
            start = Path(args.paths[0]) if args.paths else Path.cwd()
            config = load_config(start=start)
    except (ValueError, OSError) as exc:
        print(f"splitcheck: configuration error: {exc}", file=sys.stderr)
        return 2

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        default = config.root / "src" / "repro"
        paths = [default if default.is_dir() else config.root]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"splitcheck: no such path: {path}", file=sys.stderr)
        return 2

    select: frozenset[str] | None = None
    if args.select:
        select = frozenset(s.strip().upper() for s in args.select.split(",") if s.strip())
        unknown = select - set(all_rules())
        if unknown:
            print(
                f"splitcheck: unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    if args.graph:
        try:
            graph = build_graph(paths, config)
        except OSError as exc:
            print(f"splitcheck: {exc}", file=sys.stderr)
            return 2
        json.dump(graph.to_json(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0

    if args.no_cache:
        cache_path = None
    elif args.cache:
        cache_path = Path(args.cache)
    else:
        cache_path = config.root / CACHE_FILENAME

    try:
        findings, checked_files = check_paths(
            paths, config, select=select, cache_path=cache_path
        )
    except OSError as exc:
        print(f"splitcheck: {exc}", file=sys.stderr)
        return 2

    if args.no_baseline:
        baseline_path = None
    elif args.baseline:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = config.baseline_path

    if args.update_baseline:
        if baseline_path is None:
            print(
                "splitcheck: --update-baseline needs --baseline or a "
                "[tool.splitcheck] baseline setting",
                file=sys.stderr,
            )
            return 2
        count = write_baseline(baseline_path, findings)
        print(f"baseline updated: {count} finding(s) grandfathered -> {baseline_path}")
        return 0

    try:
        baseline = load_baseline(baseline_path)
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"splitcheck: bad baseline: {exc}", file=sys.stderr)
        return 2
    new, known = partition(findings, baseline)

    output_format = args.output_format or ("json" if args.json_output else "text")
    if output_format == "json":
        _emit_json(new, known, checked_files, baseline_path)
    elif output_format == "github":
        _emit_github(new, checked_files)
    else:
        for finding in new:
            print(finding.render())
        summary = (
            f"splitcheck: {checked_files} file(s), {len(new)} new finding(s)"
        )
        if known:
            summary += f", {len(known)} baselined"
        stale = len(baseline) - len(known)
        if stale > 0:
            summary += f", {stale} stale baseline entr(y/ies) -- shrink the baseline"
        print(summary)

    errors = [f for f in new if f.severity is Severity.ERROR]
    warnings = [f for f in new if f.severity is Severity.WARNING]
    if errors or (args.strict_warnings and warnings):
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = configure_parser(
        argparse.ArgumentParser(
            prog="splitcheck",
            description="Static invariant analyzer for the Split-Detect repo "
            "(hot-path telemetry guards, merge determinism, shard safety, "
            "timing discipline, packet-layer byte hygiene).",
        )
    )
    return run_check(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
