"""FragRoute-style evasion toolkit: plans, strategies, victim emulation."""

from .plan import Seg, even_segments, plan_coverage, plan_to_packets
from .strategies import (
    GARBAGE_BYTE,
    STRATEGIES,
    AttackSpec,
    EvasionStrategy,
    build_attack,
)
from .victim import Victim

__all__ = [
    "AttackSpec",
    "EvasionStrategy",
    "GARBAGE_BYTE",
    "STRATEGIES",
    "Seg",
    "Victim",
    "build_attack",
    "even_segments",
    "plan_coverage",
    "plan_to_packets",
]
