"""Aho-Corasick multi-pattern matcher with resumable (streaming) state.

This is the matching engine both IPS variants use: the conventional IPS
runs it over reassembled streams (state carried across segments), and the
Split-Detect fast path runs it over raw packet payloads (state reset per
packet, since pieces must appear wholly inside one packet).

The automaton is built once from a list of byte patterns and is immutable
afterwards; scanning never allocates per byte.  ``scan`` returns match
tuples ``(pattern_id, end_offset)`` where ``end_offset`` is the offset
just past the last matched byte within the scanned buffer.

Two execution engines share one construction:

- The **reference** engine walks the per-state goto dicts with explicit
  failure links (``scan_reference``).  It is kept as the correctness
  oracle and as the sparse fallback for very large pattern sets.
- The **compiled** engine (built automatically when the state count is at
  most ``dense_state_limit``) flattens goto+fail into a dense
  ``num_states x 256`` next-state table (``array('i')``), then lifts that
  table into linked row objects so the hot loop is two list subscripts
  per byte with no integer boxing.  A first-byte prefilter (a one-char
  regex class over the root's out-edges, i.e. every pattern's first byte)
  lets payloads containing no pattern-start byte skip the state machine
  entirely at C speed; when the start-byte set is small the scanner stays
  in that C-speed search between root visits (anchored mode).

Both engines visit the same state ids and report identical match tuples,
so streaming state can be carried across either.
"""

from __future__ import annotations

import re
from array import array
from collections import deque
from collections.abc import Sequence

ROOT_STATE = 0

#: Default ceiling on dense compilation.  The compiled form costs
#: ~1 KiB (table) + ~2 KiB (linked rows, 64-bit pointers) per state, so
#: the default caps the footprint around 50 MB; above it the automaton
#: transparently falls back to the sparse dict representation.
DENSE_STATE_LIMIT = 16384

#: Use the anchored (skip-to-next-start-byte) scan loop only when the
#: pattern set has at most this many distinct first bytes.  Larger start
#: sets are dense in real payloads, where repeated regex re-anchoring
#: costs more than stepping the table byte by byte.
ANCHORED_MAX_START_BYTES = 8

#: Build the whole-pattern prefilter (one literal-alternation regex over
#: all patterns) only up to this many patterns.  Every alternative is
#: tried at each inspected position, so a huge pattern set would make
#: the C-speed pre-pass cost more than the table walk it short-circuits.
PIECE_PREFILTER_MAX_PATTERNS = 64


class AhoCorasick:
    """Immutable Aho-Corasick automaton over byte patterns.

    Parameters
    ----------
    patterns:
        The byte strings to search for.  Pattern ids are their indices.
        Empty patterns are rejected; duplicate patterns share matches
        (each id is reported).
    dense_state_limit:
        Compile to the dense table form when the automaton has at most
        this many states (0 or None disables compilation, leaving the
        sparse reference engine -- the correctness oracle benchmarks and
        differential tests compare against).
    """

    def __init__(
        self,
        patterns: Sequence[bytes],
        *,
        dense_state_limit: int | None = DENSE_STATE_LIMIT,
    ) -> None:
        self.patterns: tuple[bytes, ...] = tuple(bytes(p) for p in patterns)
        for i, pattern in enumerate(self.patterns):
            if not pattern:
                raise ValueError(f"pattern {i} is empty")
        # Trie construction: transitions as per-state dicts.
        self._goto: list[dict[int, int]] = [{}]
        self._fail: list[int] = [ROOT_STATE]
        self._output: list[tuple[int, ...]] = [()]
        for pattern_id, pattern in enumerate(self.patterns):
            state = ROOT_STATE
            for byte in pattern:
                nxt = self._goto[state].get(byte)
                if nxt is None:
                    nxt = len(self._goto)
                    self._goto[state][byte] = nxt
                    self._goto.append({})
                    self._fail.append(ROOT_STATE)
                    self._output.append(())
                state = nxt
            self._output[state] = self._output[state] + (pattern_id,)
        self._build_failure_links()
        self._depth = self._compute_depths()
        # Compiled (dense) form; absent above the state-count threshold.
        self._table: array | None = None
        self._rows: list[list] | None = None
        self._root_row: list | None = None
        self._start_bytes: bytes = bytes(sorted(self._goto[ROOT_STATE]))
        self._start_re: re.Pattern[bytes] | None = None
        self._piece_re: re.Pattern[bytes] | None = None
        self._piece_patterns: tuple[bytes, ...] = ()
        self._anchored = False
        if dense_state_limit and len(self._goto) <= dense_state_limit:
            self._compile()
        # Scan accounting (plain ints: a few adds per *buffer*, not per
        # byte, so they stay on even when telemetry is disabled).  A
        # "prefilter skip" is a root-anchored scan the first-byte regex
        # proved match-free without stepping the state machine.
        self.scans = 0
        self.scanned_bytes = 0
        self.matches_emitted = 0
        self.prefilter_skips = 0

    def _build_failure_links(self) -> None:
        queue: deque[int] = deque()
        for state in self._goto[ROOT_STATE].values():
            self._fail[state] = ROOT_STATE
            queue.append(state)
        while queue:
            state = queue.popleft()
            for byte, nxt in self._goto[state].items():
                queue.append(nxt)
                fallback = self._fail[state]
                while fallback != ROOT_STATE and byte not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[nxt] = self._goto[fallback].get(byte, ROOT_STATE)
                if self._fail[nxt] == nxt:  # root self-loop guard
                    self._fail[nxt] = ROOT_STATE
                self._output[nxt] = self._output[nxt] + self._output[self._fail[nxt]]

    def _compute_depths(self) -> list[int]:
        depth = [0] * len(self._goto)
        queue: deque[int] = deque([ROOT_STATE])
        while queue:
            state = queue.popleft()
            for nxt in self._goto[state].values():
                depth[nxt] = depth[state] + 1
                queue.append(nxt)
        return depth

    def _compile(self) -> None:
        """Flatten goto+fail into the dense DFA table and linked rows.

        ``table[state << 8 | byte]`` is the resolved next state -- the
        exact state the reference engine's failure walk would land on, so
        the two engines are interchangeable mid-stream.
        """
        goto = self._goto
        fail = self._fail
        n = len(goto)
        table = array("i", [0]) * (n << 8)
        for byte, nxt in goto[ROOT_STATE].items():
            table[byte] = nxt
        # BFS so a state's failure row is always resolved before its own.
        order: list[int] = []
        queue: deque[int] = deque(goto[ROOT_STATE].values())
        while queue:
            state = queue.popleft()
            order.append(state)
            queue.extend(goto[state].values())
        for state in order:
            base = state << 8
            fail_base = fail[state] << 8
            edges = goto[state]
            for byte in range(256):
                nxt = edges.get(byte)
                table[base + byte] = nxt if nxt is not None else table[fail_base + byte]
        # Linked rows: row[byte] is the *next row object*, so the scan
        # loop never touches an integer state id (no boxing, no shifts).
        # row[256] is the output tuple, row[257] the state id.
        rows: list[list] = [[None] * 258 for _ in range(n)]
        for state in range(n):
            row = rows[state]
            base = state << 8
            for byte in range(256):
                row[byte] = rows[table[base + byte]]
            row[256] = self._output[state]
            row[257] = state
        self._table = table
        self._rows = rows
        self._root_row = rows[ROOT_STATE]
        if self._start_bytes:
            self._start_re = re.compile(b"[" + re.escape(self._start_bytes) + b"]")
            if len(self.patterns) <= PIECE_PREFILTER_MAX_PATTERNS:
                # Second-stage prefilter: a root-anchored buffer can only
                # match where a whole pattern occurs verbatim, so one
                # C-speed search over the literal alternation proves most
                # real payloads match-free without stepping the table.
                # (The start-byte class is too weak on text payloads --
                # letters anchor constantly; full pieces almost never.)
                unique = sorted(set(self.patterns))
                self._piece_re = re.compile(b"|".join(map(re.escape, unique)))
                self._piece_patterns = tuple(unique)
        self._anchored = 0 < len(self._start_bytes) <= ANCHORED_MAX_START_BYTES

    # -- public API ---------------------------------------------------------

    @property
    def state_count(self) -> int:
        """Number of automaton states (trie nodes)."""
        return len(self._goto)

    @property
    def compiled(self) -> bool:
        """True when the dense table engine is active."""
        return self._rows is not None

    @property
    def start_bytes(self) -> bytes:
        """Sorted distinct first bytes across all patterns (prefilter set)."""
        return self._start_bytes

    def compiled_table_bytes(self) -> int:
        """Approximate memory the compiled form spends beyond the trie:
        the dense next-state array plus the linked-row pointer lattice."""
        if self._table is None or self._rows is None:
            return 0
        return self._table.itemsize * len(self._table) + len(self._rows) * 258 * 8

    def state_depth(self, state: int) -> int:
        """Longest pattern prefix the state represents (streaming carryover)."""
        return self._depth[state]

    def scan_stats(self) -> dict[str, int | float | bool]:
        """Cumulative scan accounting (``scan``/``find_all``/``scan_many``)."""
        return {
            "engine": "compiled" if self.compiled else "reference",
            "scans": self.scans,
            "scanned_bytes": self.scanned_bytes,
            "matches_emitted": self.matches_emitted,
            "prefilter_skips": self.prefilter_skips,
            "prefilter_skip_rate": self.prefilter_skips / self.scans
            if self.scans
            else 0.0,
        }

    def scan(
        self, data: bytes, state: int = ROOT_STATE
    ) -> tuple[int, list[tuple[int, int]]]:
        """Scan ``data`` starting from ``state``.

        Returns ``(final_state, matches)``; feed the final state back in to
        continue matching across buffer boundaries (streaming mode), or
        discard it for per-packet matching.
        """
        rows = self._rows
        if rows is None:
            return self.scan_reference(data, state)
        self.scans += 1
        self.scanned_bytes += len(data)
        matches: list[tuple[int, int]] = []
        base = 0
        if state == ROOT_STATE:
            # Prefilter: bytes outside the start set cannot leave the
            # root, so a payload with none of them needs no scan at all.
            if self._start_re is None:
                self.prefilter_skips += 1
                return ROOT_STATE, matches
            anchor = self._start_re.search(data)
            if anchor is None:
                self.prefilter_skips += 1
                return ROOT_STATE, matches
            if self._anchored:
                final, matches = self._scan_anchored(
                    data, anchor.start(), self._root_row, matches
                )
                self.matches_emitted += len(matches)
                return final, matches
            base = anchor.start()
            if base:
                data = data[base:]
        elif self._anchored:
            final, matches = self._scan_anchored(data, 0, rows[state], matches)
            self.matches_emitted += len(matches)
            return final, matches
        row = rows[state]
        for offset, byte in enumerate(data, base):
            row = row[byte]
            out = row[256]
            if out:
                end = offset + 1
                matches.extend((pid, end) for pid in out)
        self.matches_emitted += len(matches)
        return row[257], matches

    def _scan_anchored(
        self,
        data: bytes,
        index: int,
        row: list,
        matches: list[tuple[int, int]],
    ) -> tuple[int, list[tuple[int, int]]]:
        """Skip-scan: between root visits, jump straight to the next
        start byte with one C-speed regex search instead of stepping the
        table through match-free filler."""
        root = self._root_row
        search = self._start_re.search  # type: ignore[union-attr]
        length = len(data)
        while index < length:
            if row is root:
                anchor = search(data, index)
                if anchor is None:
                    return ROOT_STATE, matches
                index = anchor.start()
            row = row[data[index]]
            index += 1
            out = row[256]
            if out:
                matches.extend((pid, index) for pid in out)
        return row[257], matches

    def scan_reference(
        self, data: bytes, state: int = ROOT_STATE
    ) -> tuple[int, list[tuple[int, int]]]:
        """The sparse dict-walking scan -- the correctness oracle.

        Byte-identical output to :meth:`scan`, including the final state
        id, but without the dense table (used above ``dense_state_limit``
        and by the differential tests and benchmarks).
        """
        self.scans += 1
        self.scanned_bytes += len(data)
        goto = self._goto
        fail = self._fail
        output = self._output
        matches: list[tuple[int, int]] = []
        for offset, byte in enumerate(data):
            nxt = goto[state].get(byte)
            while nxt is None and state != ROOT_STATE:
                state = fail[state]
                nxt = goto[state].get(byte)
            state = nxt if nxt is not None else ROOT_STATE
            if output[state]:
                end = offset + 1
                matches.extend((pid, end) for pid in output[state])
        self.matches_emitted += len(matches)
        return state, matches

    def contains_match(self, data: bytes) -> bool:
        """True when any pattern occurs in ``data`` (early exit)."""
        rows = self._rows
        if rows is None:
            goto = self._goto
            fail = self._fail
            output = self._output
            state = ROOT_STATE
            for byte in data:
                nxt = goto[state].get(byte)
                while nxt is None and state != ROOT_STATE:
                    state = fail[state]
                    nxt = goto[state].get(byte)
                state = nxt if nxt is not None else ROOT_STATE
                if output[state]:
                    return True
            return False
        if self._start_re is None:
            return False
        if self._piece_re is not None:
            # Whole patterns are plain literals, so the alternation
            # regex *is* the containment predicate.
            return self._piece_re.search(data) is not None
        anchor = self._start_re.search(data)
        if anchor is None:
            return False
        if self._anchored:
            root = self._root_row
            search = self._start_re.search
            index = anchor.start()
            length = len(data)
            row = root
            while index < length:
                if row is root:
                    found = search(data, index)
                    if found is None:
                        return False
                    index = found.start()
                row = row[data[index]]
                index += 1
                if row[256]:
                    return True
            return False
        row = self._root_row
        start = anchor.start()
        for byte in data[start:] if start else data:
            row = row[byte]
            if row[256]:
                return True
        return False

    def find_all(self, data: bytes) -> list[tuple[int, int]]:
        """All matches in a self-contained buffer as (pattern_id, end_offset)."""
        if self._piece_re is not None and self._piece_re.search(data) is None:
            # Self-contained buffer: the final state is discarded, so the
            # whole-pattern prefilter may skip the walk outright.  (scan()
            # itself cannot -- a match-free chunk can still end mid-prefix,
            # and streaming callers need that state.)
            self.scans += 1
            self.scanned_bytes += len(data)
            self.prefilter_skips += 1
            return []
        _, matches = self.scan(data)
        return matches

    def range_clear(self, buffer: bytes, lo: int, hi: int) -> bool:
        """True when no whole pattern occurs in ``buffer[lo:hi]``.

        One ``bytes.find`` (C fastsearch) per distinct pattern over the
        range -- far cheaper than per-payload searches when the range
        holds many payloads.  Exact for existence: any occurrence inside
        a sub-slice of the range is an occurrence in the range.  Returns
        False (meaning "cannot prove clear, scan normally") when the
        piece prefilter is not built, so callers never lose soundness.
        """
        if self._piece_re is None:
            return False
        find = buffer.find
        for pattern in self._piece_patterns:
            if find(pattern, lo, hi) != -1:
                return False
        return True

    def account_prefilter_skips(self, count: int, nbytes: int) -> None:
        """Record *count* payloads (*nbytes* total) proven match-free
        externally (:meth:`range_clear` over their containing buffer).

        Byte-for-byte the accounting :meth:`scan_many` performs when the
        prefilter skips every payload, so batch sweeps keep the scan
        counters identical to having scanned each payload individually.
        """
        self.scans += count
        self.scanned_bytes += nbytes
        self.prefilter_skips += count

    def scan_many(
        self, payloads: Sequence[bytes]
    ) -> list[list[tuple[int, int]]]:
        """Batched :meth:`find_all`: one independent root-anchored scan
        per payload (state resets between payloads).

        The batched form hoists the prefilter and table locals out of the
        per-payload dispatch, so payloads that contain no pattern-start
        byte cost one C-speed regex search and nothing else.  This is the
        entry point the fast path uses to scan a whole batch of packets.
        """
        rows = self._rows
        if rows is None:
            scan_reference = self.scan_reference
            return [scan_reference(payload)[1] for payload in payloads]
        results: list[list[tuple[int, int]]] = []
        self.scans += len(payloads)
        start_re = self._start_re
        if start_re is None:
            self.scanned_bytes += sum(len(payload) for payload in payloads)
            self.prefilter_skips += len(payloads)
            return [[] for _ in payloads]
        # The whole-pattern alternation subsumes the start-byte class: no
        # occurrence can begin before its leftmost match, so it serves as
        # both the prefilter and the scan anchor in one C-speed search.
        search = (self._piece_re or start_re).search
        anchored = self._anchored
        scan_anchored = self._scan_anchored
        root = self._root_row
        bytes_seen = 0
        skips = 0
        emitted = 0
        for data in payloads:
            bytes_seen += len(data)
            matches: list[tuple[int, int]] = []
            results.append(matches)
            anchor = search(data)
            if anchor is None:
                skips += 1
                continue
            if anchored:
                scan_anchored(data, anchor.start(), root, matches)
                emitted += len(matches)
                continue
            base = anchor.start()
            row = root
            for offset, byte in enumerate(data[base:] if base else data, base):
                row = row[byte]
                out = row[256]
                if out:
                    end = offset + 1
                    matches.extend((pid, end) for pid in out)
            emitted += len(matches)
        self.scanned_bytes += bytes_seen
        self.prefilter_skips += skips
        self.matches_emitted += emitted
        return results
