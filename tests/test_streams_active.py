"""Tests for the active normalizer, including its defining invariant:
behind it, victims of every overlap policy read identical streams."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_end_to_end_detection import SIGNATURE, adversarial_delivery
from repro.evasion import Seg, Victim, build_attack, plan_to_packets
from repro.packet import decode_tcp, flow_key_of
from repro.streams import ActiveNormalizer, OverlapPolicy, ShadowStream


class TestShadowStream:
    def test_first_copy_wins(self):
        shadow = ShadowStream()
        assert shadow.pin(0, b"REAL") == b"REAL"
        assert shadow.pin(0, b"FAKE") == b"REAL"

    def test_partial_overlap(self):
        shadow = ShadowStream()
        shadow.pin(4, b"WXYZ")
        assert shadow.pin(2, b"abcd") == b"abWX"
        assert shadow.pin(6, b"qqqq") == b"YZqq"

    def test_disjoint_regions(self):
        shadow = ShadowStream()
        assert shadow.pin(10, b"bb") == b"bb"
        assert shadow.pin(0, b"aa") == b"aa"
        assert shadow.stored_bytes == 4

    def test_negative_offsets(self):
        shadow = ShadowStream()
        assert shadow.pin(-5, b"head") == b"head"
        assert shadow.pin(-5, b"HEAD") == b"head"

    def test_coalescing(self):
        shadow = ShadowStream()
        shadow.pin(0, b"ab")
        shadow.pin(2, b"cd")
        shadow.pin(4, b"ef")
        assert shadow.stored_bytes == 6
        assert shadow.pin(0, b"xxxxxx") == b"abcdef"

    def test_empty_pin(self):
        assert ShadowStream().pin(0, b"") == b""


class TestActiveNormalizer:
    def run(self, packets, **kw):
        normalizer = ActiveNormalizer(**kw)
        out = []
        for packet in packets:
            out.extend(normalizer.process(packet))
        return normalizer, out

    def test_clean_traffic_passes_unmodified(self):
        packets = build_attack("mss_segments", b"plain web content " * 50)
        normalizer, out = self.run(packets)
        assert [p.ip for p in out] == [p.ip for p in packets]
        assert normalizer.bytes_rewritten == 0

    def test_inconsistent_retransmission_rewritten(self):
        segs = [
            Seg(offset=0, data=b"REAL-DATA-HERE!!"),
            Seg(offset=0, data=b"fake-data-here??"),
            Seg(offset=16, data=b"tail", fin=True),
        ]
        normalizer, out = self.run(plan_to_packets(segs))
        payloads = [decode_tcp(p.ip).payload for p in out if not p.ip.is_fragment]
        data = [p for p in payloads if p]
        assert data[0] == data[1] == b"REAL-DATA-HERE!!"
        assert normalizer.bytes_rewritten > 0

    def test_low_ttl_chaff_dropped(self):
        segs = [
            Seg(offset=0, data=b"." * 20, ttl=2),
            Seg(offset=0, data=b"real-data-real-data!"),
        ]
        normalizer, out = self.run(plan_to_packets(segs))
        payloads = [decode_tcp(p.ip).payload for p in out if decode_tcp(p.ip).payload]
        assert payloads == [b"real-data-real-data!"]
        assert normalizer.packets_dropped == 1

    def test_fragments_reassembled_before_forwarding(self):
        packets = build_attack("ip_frag_8", b"x" * 40 + SIGNATURE + b"y" * 40)
        _, out = self.run(packets)
        assert all(not p.ip.is_fragment for p in out)
        victim = Victim(policy=OverlapPolicy.LAST)
        victim.deliver_all(out)
        assert victim.received(SIGNATURE)

    def test_state_grows_with_stream(self):
        normalizer, _ = self.run(build_attack("mss_segments", b"z" * 5000))
        # The classic defense holds a full shadow copy of the stream.
        assert normalizer.state_bytes() >= 5000

    def test_forwarded_packets_are_wire_valid(self):
        from repro.packet import IPv4Packet

        segs = [
            Seg(offset=0, data=b"REAL-DATA-HERE!!"),
            Seg(offset=0, data=b"fake-data-here??"),
        ]
        _, out = self.run(plan_to_packets(segs))
        for packet in out:
            reparsed = IPv4Packet.parse(packet.ip.serialize())
            assert reparsed == packet.ip


@given(case=adversarial_delivery())
@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_all_policies_agree_behind_the_normalizer(case):
    """The normalizer's defining invariant, adversarially tested."""
    packets, _hops = case
    normalizer = ActiveNormalizer()
    forwarded = []
    for packet in packets:
        forwarded.extend(normalizer.process(packet))
    streams = set()
    for policy in OverlapPolicy:
        victim = Victim(policy=policy)
        victim.deliver_all(forwarded)
        flow_streams = tuple(sorted(victim.streams().values()))
        streams.add(flow_streams)
    assert len(streams) == 1, "policies disagreed behind the normalizer"
