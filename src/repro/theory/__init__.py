"""The detection theorem as executable predicates; see detection.py."""

from .detection import (
    PieceInterval,
    boundaries_of_sizes,
    detection_holds,
    find_evading_boundaries,
    intact_pieces,
    max_boundaries_inside,
    piece_intervals,
    segmentation_respects_threshold,
)

__all__ = [
    "PieceInterval",
    "boundaries_of_sizes",
    "detection_holds",
    "find_evading_boundaries",
    "intact_pieces",
    "max_boundaries_inside",
    "piece_intervals",
    "segmentation_respects_threshold",
]
