"""Wire-format packet models: IPv4, TCP, Ethernet, checksums, fragmentation.

This package is the lowest substrate of the reproduction: byte-exact
parsing and serialization so that traces are real pcap artifacts and the
evasion toolkit manipulates genuine wire images.
"""

from .batch import PacketBatch, ip_u32_to_str
from .checksum import internet_checksum, pseudo_header, verify_checksum
from .errors import (
    ChecksumError,
    MalformedPacketError,
    PacketError,
    TruncatedPacketError,
)
from .ether import ETHERTYPE_IPV4, EthernetFrame, bytes_to_mac, mac_to_bytes
from .flows import FlowKey, TimedPacket, build_tcp_packet, decode_tcp, flow_key_of
from .ip import (
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    IPv4Packet,
    bytes_to_ip,
    fragment,
    ip_to_bytes,
)
from .udp import UdpDatagram, build_udp_packet, decode_udp
from .tcp import (
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    TCP_URG,
    TcpSegment,
    flags_to_str,
    mss_option_bytes,
    seq_add,
    seq_diff,
)

__all__ = [
    "ChecksumError",
    "ETHERTYPE_IPV4",
    "EthernetFrame",
    "FlowKey",
    "IP_PROTO_ICMP",
    "IP_PROTO_TCP",
    "IP_PROTO_UDP",
    "IPv4Packet",
    "MalformedPacketError",
    "PacketBatch",
    "PacketError",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_PSH",
    "TCP_RST",
    "TCP_SYN",
    "TCP_URG",
    "TcpSegment",
    "TimedPacket",
    "TruncatedPacketError",
    "UdpDatagram",
    "build_udp_packet",
    "decode_udp",
    "build_tcp_packet",
    "bytes_to_ip",
    "bytes_to_mac",
    "decode_tcp",
    "flags_to_str",
    "flow_key_of",
    "fragment",
    "internet_checksum",
    "ip_to_bytes",
    "ip_u32_to_str",
    "mac_to_bytes",
    "mss_option_bytes",
    "pseudo_header",
    "seq_add",
    "seq_diff",
    "verify_checksum",
]
