"""Adaptive load shedding: drop benign-profile flows first, visibly.

The paper's overload story (Section 6 discipline, extended in PR 4's
overload manager) is that an attacker must never be able to *silence*
the detector: under pressure the engine refuses new diversions before
it drops diverted work.  The service's ingest layer needs the same
shape one level up.  When producers outrun the pipeline -- queue
backlog rising, fast-path p99 blowing its budget -- the shedder starts
dropping packets *before* the ingest buffer overflows randomly, and it
chooses what to drop by the inverse of suspicion:

- a flow the engine has **diverted** is never shed (it is, by
  definition, the traffic the system exists to inspect);
- a flow the flight recorder has **force-pinned** is never shed (the
  operator was promised a complete timeline);
- everything else -- the benign-profile bulk -- is shed by a
  deterministic hash of the port-less canonical flow key, a *fraction*
  of the flow space per level, so one flow is either wholly shed or
  wholly examined while overloaded (per-packet coin flips would feed
  every flow's reassembly half a stream).

Level changes are hysteretic (raise immediately, lower only after
``calm_updates`` consecutive calm signals) so the shed fraction does
not flap with every queue-depth ripple.  Every decision lands in
telemetry (``repro_service_shed_*``) and the flight recorder, and the
shed count is a term of the service's loss accounting identity:
``examined + shed + quarantined + lost == input``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..hashing import fnv1a_64
from ..packet import FlowKey

__all__ = ["LoadShedder", "ShedPolicy"]

#: Hash-space resolution of the shed fraction (1 part in 10_000).
_SHED_SCALE = 10_000


@dataclass(frozen=True)
class ShedPolicy:
    """Knobs for the shedder's level ladder and its trigger signals."""

    levels: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75)
    """Fraction of the (unprotected) flow space shed at each level;
    level 0 must be 0.0 (no shedding when healthy)."""

    backlog_high: float = 0.75
    """Ingest-buffer fill fraction at which the level steps up."""

    backlog_low: float = 0.25
    """Fill fraction below which an update counts as calm."""

    p99_budget_ns: float = 0.0
    """Fast-path stage p99 latency budget in nanoseconds; 0 disables
    the latency signal (backlog-only shedding)."""

    calm_updates: int = 5
    """Consecutive calm updates required before the level steps down
    (the hysteresis that stops level flapping)."""

    def __post_init__(self) -> None:
        if not self.levels or self.levels[0] != 0.0:
            raise ValueError(f"levels must start at 0.0, got {self.levels}")
        if any(not 0.0 <= level <= 1.0 for level in self.levels):
            raise ValueError(f"levels must be fractions in [0, 1]: {self.levels}")
        if not 0.0 <= self.backlog_low <= self.backlog_high <= 1.0:
            raise ValueError(
                f"need 0 <= backlog_low <= backlog_high <= 1, got "
                f"{self.backlog_low}/{self.backlog_high}"
            )
        if self.calm_updates < 1:
            raise ValueError(f"calm_updates must be >= 1, got {self.calm_updates}")


def _shed_slot(flow: FlowKey) -> int:
    """Deterministic position of a flow in the shed hash space.

    Port-less canonical key, same serialization discipline as the trace
    id and the fragment-safe shard policy: both directions and every IP
    fragment of a flow land on one slot, so a shed flow is shed wholly.
    """
    canonical = flow.canonical()
    return (
        fnv1a_64(
            f"{canonical.src}|{canonical.dst}|{canonical.protocol}".encode()
        )
        % _SHED_SCALE
    )


class LoadShedder:
    """The level state machine plus the per-packet shed decision."""

    def __init__(self, policy: ShedPolicy | None = None) -> None:
        self.policy = policy or ShedPolicy()
        self.level = 0
        self.enabled = True
        self._calm_streak = 0
        self.shed_packets = 0
        self.protected_packets = 0
        """Packets that matched the shed hash while protected (diverted
        or force-traced) -- the never-shed invariant, made countable."""

        self.level_changes = 0
        self.last_backlog = 0.0
        self.last_p99_ratio = 0.0

    @property
    def max_level(self) -> int:
        return len(self.policy.levels) - 1

    @property
    def shed_fraction(self) -> float:
        return self.policy.levels[self.level]

    def update(self, *, backlog: float, p99_ns: float = 0.0) -> int:
        """Feed the live signals; returns the (possibly new) level.

        ``backlog`` is the ingest buffer's fill fraction; ``p99_ns`` the
        fast-path stage p99 from the profiler (0 when unknown).  Raise
        is immediate, lower waits out the calm streak.
        """
        policy = self.policy
        self.last_backlog = backlog
        ratio = p99_ns / policy.p99_budget_ns if policy.p99_budget_ns > 0 else 0.0
        self.last_p99_ratio = ratio
        overloaded = backlog >= policy.backlog_high or ratio > 1.0
        calm = backlog <= policy.backlog_low and ratio <= 1.0
        if overloaded and self.level < self.max_level:
            self.level += 1
            self.level_changes += 1
            self._calm_streak = 0
        elif overloaded:
            self._calm_streak = 0
        elif calm and self.level > 0:
            self._calm_streak += 1
            if self._calm_streak >= policy.calm_updates:
                self.level -= 1
                self.level_changes += 1
                self._calm_streak = 0
        elif not calm:
            self._calm_streak = 0
        return self.level

    def should_shed(self, flow: FlowKey, *, engine: Any, tracer: Any = None) -> bool:
        """The per-packet decision, with the never-shed invariants.

        Order matters: the protection checks run *before* the hash, so
        a currently-diverted or force-traced flow is never shed at any
        level -- the invariant the shedding test asserts under injected
        overload.
        """
        if not self.enabled or self.level == 0:
            return False
        fraction = self.policy.levels[self.level]
        if fraction <= 0.0:
            return False
        if _shed_slot(flow) >= fraction * _SHED_SCALE:
            return False
        if engine.is_diverted(flow):
            self.protected_packets += 1
            return False
        if tracer is not None and tracer.is_forced(flow):
            self.protected_packets += 1
            return False
        self.shed_packets += 1
        return True

    def state(self) -> dict[str, Any]:
        """The /shed body: level, fractions, and the decision counters."""
        return {
            "enabled": self.enabled,
            "level": self.level,
            "max_level": self.max_level,
            "shed_fraction": self.shed_fraction,
            "levels": list(self.policy.levels),
            "shed_packets": self.shed_packets,
            "protected_packets": self.protected_packets,
            "level_changes": self.level_changes,
            "backlog": round(self.last_backlog, 4),
            "p99_ratio": round(self.last_p99_ratio, 4),
        }
