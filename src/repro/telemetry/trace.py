"""Flow-level decision tracing: a bounded, sampled flight recorder.

The aggregate counters in :mod:`repro.telemetry.registry` answer "how
much was diverted"; this module answers "why was flow X diverted (or
missed)".  A :class:`FlowTracer` records one small *span* dict per
decision event -- decode routing, fast-path anomaly, divert, AC prescan
hit, slow-path reassembly, alert/confirm, reinstate, evict sweeps,
quarantine -- into a bounded ring, keyed by a flow-consistent trace id.

Design constraints, mirroring the registry's (PR 2 discipline):

1. **Zero cost when disabled.**  Engines default to the shared
   :data:`NULL_TRACER`; every hot-path emission site additionally sits
   behind a single ``_trace_enabled`` check (enforced statically by
   splitcheck rule SD107), so an untraced run pays one boolean test per
   site and nothing else.
2. **Deterministic.**  Trace ids are 64-bit FNV-1a over the *port-less*
   canonical flow key -- the same serialization the shard router's
   default ``flow`` policy hashes -- so both directions of a connection
   AND every IP fragment of its datagrams share one trace id, and ids
   are identical across platforms and runs.  Span timestamps are packet
   time (never a wall clock), and the sampling decision is a pure
   function of the trace id, so serial and parallel runs of the same
   trace record byte-identical span lists.
3. **Bounded.**  The ring holds ``capacity`` spans; overflow drops the
   oldest and counts it (``len + dropped == recorded``, the journal's
   arithmetic).  Snapshots are therefore cheap enough to ship with
   every supervised delta flush, which is what lets a crashed worker
   generation's traces be salvaged.

Sampling semantics: a flow is traced when ``trace_id % sample == 0``.
Diverted flows are *always* traced -- emission sites on the diversion
path pass ``force=True``, which also pins the flow's trace id so every
subsequent slow-path span of that flow is recorded regardless of the
sampling knob.  The divert→confirm timeline is therefore always
complete even at 1/N sampling; only the benign prefix of the flow may
be thinned.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..hashing import fnv1a_64
from ..packet import FlowKey

__all__ = [
    "NULL_TRACER",
    "TRACE_CAPACITY",
    "FlowTracer",
    "NullTracer",
    "merge_trace_snapshots",
    "span_sort_key",
    "trace_id_of",
]

#: Default bound on the span ring (per tracer, i.e. per shard).
TRACE_CAPACITY = 4096

#: Spans the trace-id cache may hold before being reset (a plain bound,
#: not an LRU: recomputing an id is one FNV pass, correctness is
#: unaffected, and a deterministic clear keeps serial == parallel).
_ID_CACHE_LIMIT = 1 << 16


def trace_id_of(flow: FlowKey) -> int:
    """The flow-consistent 64-bit trace id.

    Hashes the canonical *port-less* address pair + protocol -- the same
    key :func:`repro.runtime.sharding.shard_key_bytes` serializes for
    the fragment-safe ``flow`` shard policy (re-implemented here so the
    telemetry layer never imports the runtime) -- so IP fragments share
    their connection's trace and both directions agree on one id.
    """
    canonical = flow.canonical()
    return fnv1a_64(
        f"{canonical.src}|{canonical.dst}|{canonical.protocol}".encode()
    )


def span_sort_key(span: dict[str, Any]) -> tuple:
    """The deterministic global span order: (ts, shard, generation, seq).

    The same key the alert merge uses, so a merged trace timeline and
    the merged alert list agree on event order.
    """
    return (span["ts"], span["shard"], span["gen"], span["seq"])


class FlowTracer:
    """Bounded, sampled span recorder for one engine (one shard)."""

    enabled = True

    def __init__(
        self,
        *,
        capacity: int = TRACE_CAPACITY,
        sample: int = 1,
        shard: int = 0,
        generation: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        if sample < 1:
            raise ValueError(f"trace sample must be >= 1, got {sample}")
        self.capacity = capacity
        self.sample = sample
        self.shard = shard
        self.generation = generation
        self._spans: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.recorded = 0
        self.dropped = 0
        self._seq = 0
        self._forced: set[int] = set()
        # Keyed by the *directional* flow (both directions land on the
        # same id), so a cache hit skips canonicalization, the FNV pass,
        # and the hex/str formatting -- the per-span hot costs.
        self._ids: dict[FlowKey, tuple[int, str, str]] = {}

    def __len__(self) -> int:
        return len(self._spans)

    def _entry(self, flow: FlowKey) -> tuple[int, str, str]:
        """Cached ``(trace_id, hex_id, str(flow))`` for one direction."""
        entry = self._ids.get(flow)
        if entry is None:
            if len(self._ids) >= _ID_CACHE_LIMIT:
                self._ids.clear()
            tid = trace_id_of(flow)
            entry = (tid, f"{tid:016x}", str(flow))
            self._ids[flow] = entry
        return entry

    def trace_id(self, flow: FlowKey) -> int:
        """Cached :func:`trace_id_of` (one FNV pass per new flow)."""
        return self._entry(flow)[0]

    def wants(self, flow: FlowKey) -> bool:
        """Would a span for this flow be recorded right now?"""
        tid = self._entry(flow)[0]
        return tid % self.sample == 0 or tid in self._forced

    def is_forced(self, flow: FlowKey) -> bool:
        """True when this flow's trace id was pinned by a ``force=True``
        emission (i.e. the flow was diverted or otherwise marked
        must-trace).  The service load shedder consults this: a flow the
        operator is guaranteed a complete timeline for is never shed."""
        return self._entry(flow)[0] in self._forced

    def record(
        self,
        flow: FlowKey,
        stage: str,
        event: str,
        ts: float,
        *,
        force: bool = False,
        **fields: Any,
    ) -> None:
        """Record one span for ``flow`` if it is sampled (or forced).

        ``force=True`` records unconditionally *and* pins the flow's
        trace id, so every later span of the same flow is kept too --
        the "diverted flows are always traced" contract.
        """
        tid, hex_id, flow_str = self._entry(flow)
        if force:
            self._forced.add(tid)
        elif tid % self.sample != 0 and tid not in self._forced:
            return
        self._append(
            {
                "trace": hex_id,
                "ts": ts,
                "shard": self.shard,
                "gen": self.generation,
                "seq": self._seq,
                "stage": stage,
                "event": event,
                "flow": flow_str,
                **fields,
            }
        )

    def record_system(
        self, stage: str, event: str, ts: float = 0.0, **fields: Any
    ) -> None:
        """Record a flow-less span (evict sweeps, quarantine): trace id 0.

        System events are rare (per sweep / per malformed frame, never
        per packet) and always recorded -- sampling applies to flows.
        """
        self._append(
            {
                "trace": f"{0:016x}",
                "ts": ts,
                "shard": self.shard,
                "gen": self.generation,
                "seq": self._seq,
                "stage": stage,
                "event": event,
                "flow": "",
                **fields,
            }
        )

    def _append(self, span: dict[str, Any]) -> None:
        self._seq += 1
        self.recorded += 1
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)

    def spans(self) -> list[dict[str, Any]]:
        return list(self._spans)

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dump (ships across the worker process boundary)."""
        return {
            "capacity": self.capacity,
            "sample": self.sample,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "forced_flows": len(self._forced),
            "spans": [dict(span) for span in self._spans],
        }


def merge_trace_snapshots(*snapshots: dict[str, Any] | None) -> dict[str, Any]:
    """Fold per-shard (and per-generation) trace snapshots into one.

    Spans are re-sorted by :func:`span_sort_key` -- packet time, then
    shard, then generation, then the tracer's emission sequence -- the
    same deterministic order the alert merge uses, so the merged
    timeline of a parallel run equals the serial run's.  ``recorded`` /
    ``dropped`` / ``forced_flows`` sum; ``capacity`` keeps the largest
    declared ring and ``sample`` the largest (coarsest) knob seen.
    Empty/None snapshots (untraced shards) are skipped.  Lives outside
    the equivalence digest, like the telemetry registry and the sketch.
    """
    merged: dict[str, Any] = {
        "capacity": 0,
        "sample": 1,
        "recorded": 0,
        "dropped": 0,
        "forced_flows": 0,
        "spans": [],
    }
    for snapshot in snapshots:
        if not snapshot:
            continue
        merged["capacity"] = max(merged["capacity"], snapshot.get("capacity", 0))
        merged["sample"] = max(merged["sample"], snapshot.get("sample", 1))
        merged["recorded"] += snapshot.get("recorded", 0)
        merged["dropped"] += snapshot.get("dropped", 0)
        merged["forced_flows"] += snapshot.get("forced_flows", 0)
        merged["spans"].extend(dict(span) for span in snapshot.get("spans", []))
    merged["spans"].sort(key=span_sort_key)
    return merged


class NullTracer:
    """The disabled tracer: every method is a no-op (API parity)."""

    enabled = False
    capacity = 0
    sample = 1
    shard = 0
    generation = 0
    recorded = 0
    dropped = 0

    def __len__(self) -> int:
        return 0

    def trace_id(self, flow: FlowKey) -> int:
        return trace_id_of(flow)

    def wants(self, flow: FlowKey) -> bool:
        return False

    def is_forced(self, flow: FlowKey) -> bool:
        return False

    def record(
        self,
        flow: FlowKey,
        stage: str,
        event: str,
        ts: float,
        *,
        force: bool = False,
        **fields: Any,
    ) -> None:
        pass

    def record_system(
        self, stage: str, event: str, ts: float = 0.0, **fields: Any
    ) -> None:
        pass

    def spans(self) -> list[dict[str, Any]]:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {}


#: The shared disabled tracer every engine defaults to.
NULL_TRACER = NullTracer()
