"""The in-process reference runner: router + N shards, one thread.

Same API and same results as :class:`ParallelRunner` -- the router, the
per-shard batch boundaries, and the merge are byte-for-byte the same
code -- without any processes or queues.  Tests and small traces use
this; the parallel runner's correctness argument is "equal to
SerialRunner", and SerialRunner's is "equal to the unsharded engine"
(which the test suite asserts on the evasion gauntlet).
"""

from __future__ import annotations

from collections.abc import Iterable
from time import perf_counter

from ..packet import TimedPacket
from ..packet.batch import PacketBatch
from .batching import iter_batches_with_controls, rebatch_columns
from .config import RunnerConfig
from .quarantine import PacketSource, Quarantine, decode_packets
from .report import RuntimeReport, merge_shard_reports
from .sharding import ShardRouter
from .spec import EngineSpec
from .worker import ShardProcessor

__all__ = ["SerialRunner"]


class SerialRunner:
    """N shared-nothing shards driven synchronously in one process."""

    def __init__(
        self,
        spec: EngineSpec,
        *,
        shards: int = 1,
        config: RunnerConfig | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.spec = spec
        self.shards = shards
        self.config = config or RunnerConfig()
        self.router = ShardRouter(shards, self.config.shard_policy)

    def run(self, packets: PacketSource) -> RuntimeReport:
        """Route, process, and merge one packet stream.

        Accepts parsed packets or raw ``(timestamp, bytes)`` records;
        malformed frames are quarantined, never raised (see
        :mod:`repro.runtime.quarantine`).  Fault injection runs with
        process-scoped kinds (crash/hang) disabled: an in-process shard
        taking the interpreter down would kill the caller, not the
        shard.
        """
        start = perf_counter()
        processors = [
            ShardProcessor(index, self.spec, self.config, allow_process_faults=False)
            for index in range(self.shards)
        ]
        quarantine = Quarantine()
        shard_of = self.router.shard_of
        batches_routed = 0
        stream = decode_packets(packets, quarantine)
        for kind, item in iter_batches_with_controls(stream, self.config.batch_size):
            if kind == "ctl":
                # Broadcast: every shard applies the command at this
                # stream position (same contract as the parallel path).
                for processor in processors:
                    processor.control(item)
                continue
            buckets: list[list[TimedPacket]] = [[] for _ in range(self.shards)]
            for packet in item:
                buckets[shard_of(packet)].append(packet)
            for index, bucket in enumerate(buckets):
                if bucket:
                    processors[index].feed(bucket)
                    batches_routed += 1
        reports = [processor.finish() for processor in processors]
        return merge_shard_reports(
            reports,
            mode="serial",
            workers=self.shards,
            wall_seconds=perf_counter() - start,
            batches_routed=batches_routed,
            quarantined=dict(quarantine.counts),
        )

    def run_columnar(self, batches: Iterable[PacketBatch]) -> RuntimeReport:
        """Route, process, and merge a columnar batch stream.

        Same shards, same merge, same report as :meth:`run` -- the
        stream is :class:`~repro.packet.batch.PacketBatch` columns (see
        :func:`repro.pcap.read_column_batches`) instead of packet
        objects.  Reader-side quarantined exceptions are absorbed into
        the feeder ledger here; row selections share the source buffer
        (no copies -- everything stays in this process).
        """
        if self.config.faults is not None:
            raise ValueError("fault injection is incompatible with columnar ingest")
        start = perf_counter()
        processors = [
            ShardProcessor(index, self.spec, self.config, allow_process_faults=False)
            for index in range(self.shards)
        ]
        quarantine = Quarantine()
        batches_routed = 0
        for batch in rebatch_columns(batches, self.config.batch_size):
            for exc in batch.quarantined:
                quarantine.add(exc)
            if not batch:
                continue
            if self.shards == 1:
                processors[0].feed(batch)
                batches_routed += 1
                continue
            for index, rows in enumerate(batch.shard_rows(self.router)):
                if rows:
                    processors[index].feed(batch.select(rows))
                    batches_routed += 1
        reports = [processor.finish() for processor in processors]
        return merge_shard_reports(
            reports,
            mode="serial",
            workers=self.shards,
            wall_seconds=perf_counter() - start,
            batches_routed=batches_routed,
            quarantined=dict(quarantine.counts),
        )
