"""A picklable recipe for building identical engines in every worker.

Worker processes cannot share a live :class:`SplitDetectIPS` (and must
not -- shards are shared-nothing by design), so the runner ships them
this spec and each worker builds its own engine from it.  Everything in
the spec is plain data (rulesets, policies, dataclass configs), so it
crosses process boundaries under both fork and spawn start methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import FastPathConfig, SplitDetectIPS
from ..signatures import ByteFrequencyModel, RuleSet, SplitPolicy
from ..streams import OverlapPolicy

__all__ = ["EngineSpec"]


@dataclass(frozen=True)
class EngineSpec:
    """Constructor arguments for one :class:`SplitDetectIPS`, as data.

    Mirrors the engine's keyword surface.  Note that per-engine capacity
    knobs (``slow_capacity_flows``, a fixed fast-path flow table) are
    *per shard* once sharded: N shards built from one spec provision N
    times the capacity, which is the point of scaling out -- but it also
    means capacity-limited configurations are not bit-for-bit comparable
    with a single unsharded engine under overload.
    """

    rules: RuleSet
    split_policy: SplitPolicy | None = None
    fast_config: FastPathConfig | None = None
    overlap_policy: OverlapPolicy = OverlapPolicy.BSD
    model: ByteFrequencyModel | None = None
    probation_packets: int = 8
    slow_capacity_flows: int | None = None
    ensemble_policies: tuple[OverlapPolicy, ...] = field(default_factory=tuple)

    def build(
        self,
        telemetry: object | None = None,
        tracer: object | None = None,
    ) -> SplitDetectIPS:
        """Construct a fresh engine (one per shard, never shared)."""
        return SplitDetectIPS(
            self.rules,
            split_policy=self.split_policy,
            fast_config=self.fast_config,
            overlap_policy=self.overlap_policy,
            model=self.model,
            probation_packets=self.probation_packets,
            slow_capacity_flows=self.slow_capacity_flows,
            ensemble_policies=self.ensemble_policies,
            telemetry=telemetry,
            tracer=tracer,
        )
