"""Flow-table normalizer: defragment, reassemble, and canonicalize traffic.

This is the substrate a conventional IPS is built on (Handley-Paxson
style): every packet is defragmented at the IP layer, every TCP flow is
reassembled per direction, and downstream consumers (the signature
matcher) see only the canonical in-order byte stream -- exactly one
interpretation of every ambiguity, resolved by the configured policy.

The normalizer also owns flow lifecycle: flows are created on first
packet, torn down on RST or on FIN in both directions, and evicted after
an idle timeout, so its state footprint is measurable and realistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..packet import FlowKey, IPv4Packet, TimedPacket, decode_tcp, flow_key_of
from ..packet.ip import IP_PROTO_TCP
from .defrag import IpDefragmenter
from .events import StreamEvent, StreamEventRecord
from .policies import OverlapPolicy
from .reassembly import TcpReassembler

DEFAULT_IDLE_TIMEOUT = 300.0

#: Fixed bookkeeping bytes a real implementation spends per flow entry
#: (hash-table entry, two reassembler control blocks, timers).  Used by the
#: state accounting; the paper's comparison counts control state as well as
#: buffered payload.
FLOW_OVERHEAD_BYTES = 240


@dataclass
class NormalizedOutput:
    """Everything the normalizer derived from one input packet."""

    flow: FlowKey | None = None
    chunks: list[bytes] = field(default_factory=list)
    """Newly in-order payload bytes for this packet's direction."""

    events: list[StreamEventRecord] = field(default_factory=list)
    flow_closed: bool = False
    datagram: IPv4Packet | None = None
    """A complete (defragmented) non-TCP packet, passed through for the
    caller to inspect -- UDP signature matching happens downstream."""


@dataclass
class _FlowState:
    """Both directions of one TCP conversation."""

    directions: dict[FlowKey, TcpReassembler] = field(default_factory=dict)
    last_seen: float = 0.0
    finished: set[FlowKey] = field(default_factory=set)
    ttl_seen: int | None = None


class StreamNormalizer:
    """Defragments and reassembles a packet stream into canonical bytes."""

    def __init__(
        self,
        *,
        policy: OverlapPolicy = OverlapPolicy.BSD,
        tiny_segment_threshold: int = 0,
        tiny_fragment_threshold: int = 0,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        ttl_check: bool = True,
        reassembler_kwargs: dict | None = None,
    ) -> None:
        self.policy = policy
        self.tiny_segment_threshold = tiny_segment_threshold
        self.idle_timeout = idle_timeout
        self.ttl_check = ttl_check
        self._reassembler_kwargs = dict(reassembler_kwargs or {})
        self.defragmenter = IpDefragmenter(
            policy=policy, tiny_threshold=tiny_fragment_threshold
        )
        self._flows: dict[FlowKey, _FlowState] = {}
        self._start_hints: dict[FlowKey, int] = {}
        self.flows_created = 0
        self.flows_closed = 0

    def hint_stream_start(self, direction: FlowKey, first_byte_seq: int) -> None:
        """Pin where ``direction``'s stream begins, for midstream pickup.

        Split-Detect uses this at diversion time: the fast path knows how
        far in-order delivery progressed (its expected sequence number),
        and the slow path must anchor its reassembled stream there so
        out-of-order data below the diverting packet is not mistaken for
        retransmission.  Must be called before the direction's first
        segment is processed; later hints are ignored.
        """
        self._start_hints.setdefault(direction, first_byte_seq)

    # -- accounting ------------------------------------------------------

    @property
    def active_flows(self) -> int:
        """Flows currently tracked (both directions count as one)."""
        return len(self._flows)

    @property
    def buffered_bytes(self) -> int:
        """Payload bytes currently parked in reassembly buffers."""
        total = self.defragmenter.buffered_bytes
        for state in self._flows.values():
            total += sum(r.buffered_bytes for r in state.directions.values())
        return total

    def state_bytes(self) -> int:
        """Total state footprint: fixed per-flow overhead plus buffers."""
        return len(self._flows) * FLOW_OVERHEAD_BYTES + self.buffered_bytes

    # -- packet intake ------------------------------------------------------

    def process(self, packet: TimedPacket) -> NormalizedOutput:
        """Feed one packet; returns canonical bytes and anomaly events."""
        output = NormalizedOutput()
        defrag = self.defragmenter.add(packet.ip, packet.timestamp)
        output.events.extend(defrag.events)
        ip = defrag.packet
        if ip is None:
            return output
        if ip.protocol != IP_PROTO_TCP:
            output.datagram = ip
            try:
                output.flow = flow_key_of(ip)
            except ValueError:
                pass
            return output
        try:
            segment = decode_tcp(ip)
        except Exception:
            # Undecodable transport headers are not this layer's problem;
            # the IPS treats them as anomalies elsewhere.
            return output
        direction = flow_key_of(ip)
        output.flow = direction
        key = direction.canonical()
        state = self._flows.get(key)
        if state is None:
            state = _FlowState(last_seen=packet.timestamp)
            self._flows[key] = state
            self.flows_created += 1
        state.last_seen = packet.timestamp
        if self.ttl_check:
            if state.ttl_seen is None:
                state.ttl_seen = ip.ttl
            elif abs(ip.ttl - state.ttl_seen) > 5:
                output.events.append(
                    StreamEventRecord(
                        StreamEvent.TTL_ANOMALY, 0, detail=f"{state.ttl_seen}->{ip.ttl}"
                    )
                )
        if segment.rst:
            self._close(key)
            output.flow_closed = True
            return output
        reassembler = state.directions.get(direction)
        if reassembler is None:
            reassembler = TcpReassembler(
                policy=self.policy,
                tiny_threshold=self.tiny_segment_threshold,
                first_byte_seq=self._start_hints.pop(direction, None),
                **self._reassembler_kwargs,
            )
            state.directions[direction] = reassembler
        result = reassembler.add(
            segment.seq, segment.payload, syn=segment.syn, fin=segment.fin
        )
        output.events.extend(result.events)
        if result.delivered:
            output.chunks.append(result.delivered)
        if result.finished:
            state.finished.add(direction)
            if len(state.finished) == 2:
                self._close(key)
                output.flow_closed = True
        return output

    def live_flows(self) -> set[FlowKey]:
        """Canonical keys of every currently tracked flow."""
        return set(self._flows)

    def buffered_bytes_for(self, key: FlowKey) -> int:
        """Out-of-order bytes currently parked for one flow (canonical key)."""
        state = self._flows.get(key.canonical())
        if state is None:
            return 0
        return sum(r.buffered_bytes for r in state.directions.values())

    def stream_positions(self, key: FlowKey) -> dict[FlowKey, int]:
        """Next expected absolute sequence number per direction of a flow."""
        state = self._flows.get(key.canonical())
        if state is None:
            return {}
        out: dict[FlowKey, int] = {}
        for direction, reassembler in state.directions.items():
            expected = reassembler.expected_seq
            if expected is not None:
                out[direction] = expected
        return out

    def release(self, key: FlowKey) -> None:
        """Drop all state for one flow (canonical key) without closing it."""
        self._close(key.canonical())

    def evict_idle(self, now: float) -> int:
        """Drop flows idle past the timeout; returns how many were evicted."""
        stale = [
            key
            for key, state in self._flows.items()
            if now - state.last_seen > self.idle_timeout
        ]
        for key in stale:
            self._close(key)
        return len(stale)

    def _close(self, key: FlowKey) -> None:
        if key in self._flows:
            del self._flows[key]
            self.flows_closed += 1
