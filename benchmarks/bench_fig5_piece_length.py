"""Figure 5 -- the piece-length trade-off.

Short pieces make more signatures splittable and keep B small, but they
fire on benign bytes (false piece matches -> needless diversion) and
inflate the automaton.  Long pieces are rarer but push B up (more tiny-
segment diversion) and shed short signatures.  The sweep shows both
sides, measured on benign traffic and predicted by the n-gram model.
"""

import sys

from exp_common import benign_trace, bundled_rules, emit
from repro.core import DivertReason, SplitDetectIPS
from repro.metrics import run_split_detect
from repro.signatures import ByteFrequencyModel, SplitPolicy, split_ruleset
from repro.traffic import benign_payload

PIECE_LENGTHS = (4, 6, 8, 10, 12, 16)


def trained_model() -> ByteFrequencyModel:
    import random

    model = ByteFrequencyModel()
    rng = random.Random(99)
    for _ in range(50):
        model.train(benign_payload(rng, 4000))
    return model


def series_rows() -> list[str]:
    rules = bundled_rules()
    trace = benign_trace(flows=250, seed=41)
    model = trained_model()
    lines = [
        f"{'p':>4} {'B':>4} {'pieces':>7} {'unsplit':>8} "
        f"{'piece-div%':>10} {'tiny-div%':>10} {'pred FP/MB':>11} {'skip-div%':>10}"
    ]
    for p in PIECE_LENGTHS:
        policy = SplitPolicy(piece_length=p)
        split = split_ruleset(rules, policy)
        ips = SplitDetectIPS(rules, split_policy=policy)
        report = run_split_detect(ips, trace, sample_every=500)
        piece_div = report.divert_reasons.get(DivertReason.PIECE_MATCH.value, 0)
        tiny_div = report.divert_reasons.get(DivertReason.TINY_SEGMENT.value, 0)
        predicted = sum(
            model.expected_matches(piece.data, 2**20) for piece in split.all_pieces()
        )
        # The rarity-aware variant: skip benign-looking pattern prefixes.
        skip_policy = SplitPolicy(piece_length=p, skip_common_prefix=True)
        skip_ips = SplitDetectIPS(rules, split_policy=skip_policy, model=model)
        skip_report = run_split_detect(skip_ips, trace, sample_every=500)
        skip_div = skip_report.divert_reasons.get(DivertReason.PIECE_MATCH.value, 0)
        lines.append(
            f"{p:>4} {split.small_packet_threshold:>4} {split.piece_count:>7} "
            f"{len(split.unsplittable):>8} {piece_div / 250:>10.1%} "
            f"{tiny_div / 250:>10.1%} {predicted:>11.2f} {skip_div / 250:>10.1%}"
        )
    return lines


def test_fig5_piece_length_tradeoff(benchmark, capfd):
    rules = bundled_rules()
    trace = benign_trace(flows=250, seed=41)

    def one_point():
        ips = SplitDetectIPS(rules, split_policy=SplitPolicy(piece_length=8))
        return run_split_detect(ips, trace, sample_every=500)

    benchmark.pedantic(one_point, rounds=2, iterations=1)
    rows = series_rows()
    emit("fig5_piece_length", rows, capfd)


def test_fig5_model_prefers_longer_pieces():
    """Longer pieces must be predicted (and measured) rarer."""
    rules = bundled_rules()
    model = trained_model()
    predictions = []
    for p in (4, 8, 16):
        split = split_ruleset(rules, SplitPolicy(piece_length=p))
        predictions.append(
            sum(model.expected_matches(piece.data, 2**20) for piece in split.all_pieces())
        )
    assert predictions[0] > predictions[1] > predictions[2]


if __name__ == "__main__":
    print("\n".join(series_rows()), file=sys.stderr)
