"""Deterministic, seed-driven fault injection for the sharded runtime.

An IPS that dies on the traffic it is supposed to inspect is itself an
evasion vector, so the runtime's failure handling must be *testable*:
every failure mode the supervisor claims to survive has an injection
point here, triggered at an exact shard-local packet index so a failing
run is reproducible from its :class:`FaultPlan` alone (CI stores the
plan, never a core dump).

A plan is plain frozen data (it rides inside
:class:`~repro.runtime.config.RunnerConfig` across the process boundary,
so SD103's pickling rules apply); the mutable part is the per-worker
:class:`FaultInjector`, which each :class:`~repro.runtime.worker
.ShardProcessor` builds for its own shard and consults once per batch.

Fault kinds:

- ``crash``     -- the worker process dies instantly (``os._exit``), the
  way a segfaulting matcher or an OOM kill looks from the parent: no
  traceback, no status message, queue abandoned mid-stream.
- ``hang``      -- the worker stops consuming but stays alive (lock-up /
  livelock); only heartbeat staleness can detect this.
- ``stall``     -- one long sleep, then normal operation (GC pause, page
  fault storm); must *not* trigger a restart when shorter than the
  heartbeat timeout.
- ``slowdown``  -- every batch from the trigger on sleeps, modelling a
  shard that fell behind (drives queue backpressure).
- ``decode``    -- raises :class:`~repro.packet.errors
  .MalformedPacketError` at the feed boundary, exercising the
  malformed-input quarantine.
- ``skew``      -- offsets the shard's housekeeping clock, exercising
  eviction robustness against bad capture timestamps.

``crash`` and ``hang`` are process-scoped: inside :class:`~repro.runtime
.serial.SerialRunner` (or any in-process harness) they are ignored
rather than taking the caller down with the shard.
"""

from __future__ import annotations

import enum
import os
import random
import sys
import time
from dataclasses import dataclass

from ..packet import TimedPacket
from ..packet.errors import MalformedPacketError

__all__ = [
    "CRASH_EXIT_CODE",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
]

#: Exit status of an injected crash -- distinctive in worker exit codes.
CRASH_EXIT_CODE = 73

#: How long an injected hang sleeps; far beyond any heartbeat timeout,
#: short enough that a supervisor bug cannot wedge CI forever.
HANG_SECONDS = 600.0


class FaultKind(enum.Enum):
    """What an injection point does when its packet index is reached."""

    CRASH = "crash"
    HANG = "hang"
    STALL = "stall"
    SLOWDOWN = "slowdown"
    DECODE_ERROR = "decode"
    CLOCK_SKEW = "skew"


#: Kinds that take the worker process itself down / out of service and
#: are therefore ignored when the shard runs in the caller's process.
PROCESS_FAULTS = frozenset({FaultKind.CRASH, FaultKind.HANG})

#: Kinds whose ``seconds`` field is meaningful.
TIMED_FAULTS = frozenset(
    {FaultKind.STALL, FaultKind.SLOWDOWN, FaultKind.CLOCK_SKEW}
)


@dataclass(frozen=True)
class FaultSpec:
    """One injection point: *kind* fires on *shard* at packet *at*."""

    kind: FaultKind
    shard: int
    at: int
    """Shard-local packet index (0-based, counted over every packet the
    shard is fed, quarantined ones included) at which the fault fires."""

    seconds: float = 0.0
    """Duration (stall/slowdown) or offset (skew); unused otherwise."""

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ValueError(f"fault shard must be >= 0, got {self.shard}")
        if self.at < 0:
            raise ValueError(f"fault packet index must be >= 0, got {self.at}")
        if self.kind in TIMED_FAULTS and self.seconds == 0.0:
            raise ValueError(f"{self.kind.value} fault needs seconds=<non-zero>")

    def describe(self) -> str:
        base = f"{self.kind.value}:shard={self.shard},at={self.at}"
        if self.kind in TIMED_FAULTS:
            base += f",seconds={self.seconds:g}"
        return base


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of injection points (picklable plain data)."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int | None = None
    """The seed this plan was generated from, when it came from
    :meth:`random` -- carried along so a failing chaos run's artifact
    names the one integer needed to reproduce it."""

    @classmethod
    def parse(cls, texts: list[str] | tuple[str, ...]) -> "FaultPlan":
        """Build a plan from ``--inject`` strings.

        Grammar: ``kind:key=value[,key=value...]`` with keys ``shard``
        (default 0), ``at`` (default 0) and ``seconds`` (timed kinds).
        Example: ``crash:shard=1,at=500``.
        """
        specs = []
        kinds = {kind.value: kind for kind in FaultKind}
        for text in texts:
            head, _, tail = text.partition(":")
            head = head.strip().lower()
            if head not in kinds:
                raise ValueError(
                    f"unknown fault kind {head!r}; choose from {sorted(kinds)}"
                )
            fields: dict[str, str] = {}
            if tail.strip():
                for part in tail.split(","):
                    key, eq, value = part.partition("=")
                    if not eq:
                        raise ValueError(f"malformed fault field {part!r} in {text!r}")
                    fields[key.strip()] = value.strip()
            unknown = set(fields) - {"shard", "at", "seconds"}
            if unknown:
                raise ValueError(f"unknown fault fields {sorted(unknown)} in {text!r}")
            try:
                specs.append(
                    FaultSpec(
                        kind=kinds[head],
                        shard=int(fields.get("shard", "0")),
                        at=int(fields.get("at", "0")),
                        seconds=float(fields.get("seconds", "0")),
                    )
                )
            except ValueError as exc:
                raise ValueError(f"bad fault spec {text!r}: {exc}") from None
        return cls(specs=tuple(specs))

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        shards: int,
        max_packet: int = 2000,
        max_faults: int = 3,
    ) -> "FaultPlan":
        """A reproducible chaos plan: 1..max_faults faults from *seed*.

        Durations are kept short (well under any sane heartbeat timeout
        for stalls, a few hundred ms for slowdowns) so chaos runs finish
        in CI time; crashes and hangs dominate the draw because they are
        the modes the supervisor exists for.
        """
        rng = random.Random(seed)
        weighted = [
            FaultKind.CRASH,
            FaultKind.CRASH,
            FaultKind.HANG,
            FaultKind.STALL,
            FaultKind.SLOWDOWN,
            FaultKind.DECODE_ERROR,
            FaultKind.CLOCK_SKEW,
        ]
        specs = []
        for _ in range(rng.randint(1, max_faults)):
            kind = rng.choice(weighted)
            seconds = 0.0
            if kind is FaultKind.STALL:
                seconds = rng.uniform(0.05, 0.4)
            elif kind is FaultKind.SLOWDOWN:
                seconds = rng.uniform(0.005, 0.05)
            elif kind is FaultKind.CLOCK_SKEW:
                seconds = rng.uniform(-3600.0, 3600.0) or 1.0
            specs.append(
                FaultSpec(
                    kind=kind,
                    shard=rng.randrange(shards),
                    at=rng.randrange(max_packet),
                    seconds=seconds,
                )
            )
        return cls(specs=tuple(specs), seed=seed)

    def for_shard(self, shard: int) -> tuple[FaultSpec, ...]:
        """This shard's injection points, ordered by packet index."""
        return tuple(
            sorted(
                (spec for spec in self.specs if spec.shard == shard),
                key=lambda spec: spec.at,
            )
        )

    def describe(self) -> str:
        inner = " ".join(spec.describe() for spec in self.specs) or "<empty>"
        if self.seed is not None:
            return f"seed={self.seed} [{inner}]"
        return inner


class FaultInjector:
    """The mutable per-shard trigger: consulted once per fed batch.

    ``allow_process_faults`` distinguishes a real worker process (where a
    ``crash`` genuinely exits) from an in-process shard, where taking the
    interpreter down would kill the caller, not the shard.
    """

    def __init__(
        self, plan: FaultPlan, shard: int, *, allow_process_faults: bool
    ) -> None:
        self.shard = shard
        self.allow_process_faults = allow_process_faults
        self._pending = list(plan.for_shard(shard))
        self._slowdown = 0.0
        self.clock_skew = 0.0
        """Seconds currently added to the shard's housekeeping clock."""

    @property
    def pending(self) -> int:
        return len(self._pending)

    def before_batch(self, packets_seen: int, batch: list[TimedPacket]) -> None:
        """Fire every fault whose index falls inside this batch.

        Called with the shard-local index of the batch's first packet.
        May sleep, raise :class:`MalformedPacketError` (quarantined by
        the caller), or -- in a worker process -- never return.
        """
        end = packets_seen + len(batch)
        while self._pending and self._pending[0].at < end:
            self._fire(self._pending.pop(0))
        if self._slowdown:
            time.sleep(self._slowdown)

    def _fire(self, spec: FaultSpec) -> None:
        kind = spec.kind
        if kind in PROCESS_FAULTS and not self.allow_process_faults:
            return
        if kind is FaultKind.CRASH:
            # Simulated hard death: no cleanup, no status message -- the
            # one exit path SD106 cannot see, which is the point.  The
            # stderr line is for humans reading CI logs, not the parent.
            sys.stderr.write(
                f"[fault-injection] shard {self.shard}: crash at packet {spec.at}\n"
            )
            sys.stderr.flush()
            os._exit(CRASH_EXIT_CODE)
        if kind is FaultKind.HANG:
            time.sleep(HANG_SECONDS)
            return
        if kind is FaultKind.STALL:
            time.sleep(spec.seconds)
            return
        if kind is FaultKind.SLOWDOWN:
            self._slowdown = spec.seconds
            return
        if kind is FaultKind.CLOCK_SKEW:
            self.clock_skew += spec.seconds
            return
        if kind is FaultKind.DECODE_ERROR:
            raise MalformedPacketError(
                f"injected decode fault (shard {self.shard}, packet {spec.at})"
            )
        raise AssertionError(f"unhandled fault kind {kind!r}")
