"""Trace characterization: the numbers a paper's 'trace table' reports.

Given any packet sequence (synthetic or read from pcap), compute the
statistics that determine Split-Detect's behaviour on it: packet size
distribution, flow sizes, fragmentation fraction, and per-flow ordering
pathology rates.  The benchmark ``bench_table0_trace_stats.py`` prints
this for the evaluation traces, and operators can run it over their own
captures via ``splitdetect stats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..packet import (
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    FlowKey,
    TimedPacket,
    decode_tcp,
    flow_key_of,
    seq_diff,
)


@dataclass
class TraceStats:
    """Aggregate statistics of one packet trace."""

    packets: int = 0
    ip_bytes: int = 0
    payload_bytes: int = 0
    tcp_packets: int = 0
    udp_packets: int = 0
    other_packets: int = 0
    fragments: int = 0
    tiny_payloads: int = 0
    """Data packets with fewer than 16 payload bytes."""

    flows: int = 0
    reordered_packets: int = 0
    retransmitted_packets: int = 0
    duration: float = 0.0
    payload_size_histogram: dict[str, int] = field(default_factory=dict)
    flow_bytes: list[int] = field(default_factory=list)

    @property
    def fragment_fraction(self) -> float:
        return self.fragments / self.packets if self.packets else 0.0

    @property
    def reorder_rate(self) -> float:
        return self.reordered_packets / self.tcp_packets if self.tcp_packets else 0.0

    @property
    def retransmit_rate(self) -> float:
        return (
            self.retransmitted_packets / self.tcp_packets if self.tcp_packets else 0.0
        )

    @property
    def mean_mbps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.ip_bytes * 8 / self.duration / 1e6

    def flow_size_percentile(self, q: float) -> int:
        if not self.flow_bytes:
            return 0
        ordered = sorted(self.flow_bytes)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


_SIZE_BUCKETS = [
    (0, "0"),
    (16, "1-16"),
    (64, "17-64"),
    (256, "65-256"),
    (576, "257-576"),
    (1024, "577-1024"),
    (1460, "1025-1460"),
    (10**9, ">1460"),
]


def _bucket(size: int) -> str:
    for limit, label in _SIZE_BUCKETS:
        if size <= limit:
            return label
    return ">1460"


def characterize(trace: list[TimedPacket]) -> TraceStats:
    """Single-pass trace characterization."""
    stats = TraceStats()
    expected: dict[FlowKey, int] = {}
    flow_bytes: dict[FlowKey, int] = {}
    first_ts: float | None = None
    last_ts = 0.0
    for packet in trace:
        ip = packet.ip
        stats.packets += 1
        stats.ip_bytes += ip.total_length
        if first_ts is None:
            first_ts = packet.timestamp
        last_ts = packet.timestamp
        if ip.is_fragment:
            stats.fragments += 1
            continue
        if ip.protocol == IP_PROTO_TCP:
            stats.tcp_packets += 1
            try:
                segment = decode_tcp(ip)
            except Exception:
                continue
            payload = segment.payload
            stats.payload_bytes += len(payload)
            label = _bucket(len(payload))
            stats.payload_size_histogram[label] = (
                stats.payload_size_histogram.get(label, 0) + 1
            )
            if 0 < len(payload) < 16:
                stats.tiny_payloads += 1
            flow = flow_key_of(ip)
            flow_bytes[flow.canonical()] = (
                flow_bytes.get(flow.canonical(), 0) + len(payload)
            )
            if payload:
                seen = expected.get(flow)
                if seen is not None:
                    delta = seq_diff(segment.seq, seen)
                    if delta > 0:
                        stats.reordered_packets += 1
                    elif delta < 0:
                        stats.retransmitted_packets += 1
                if seen is None or seq_diff(segment.end_seq, seen) > 0:
                    expected[flow] = segment.end_seq
            elif segment.syn:
                expected[flow] = segment.end_seq
        elif ip.protocol == IP_PROTO_UDP:
            stats.udp_packets += 1
            payload_len = max(0, len(ip.payload) - 8)
            stats.payload_bytes += payload_len
            label = _bucket(payload_len)
            stats.payload_size_histogram[label] = (
                stats.payload_size_histogram.get(label, 0) + 1
            )
        else:
            stats.other_packets += 1
    stats.flows = len(flow_bytes)
    stats.flow_bytes = list(flow_bytes.values())
    stats.duration = (last_ts - first_ts) if first_ts is not None else 0.0
    return stats


def format_stats(stats: TraceStats) -> list[str]:
    """Render the characterization as the table a paper would print."""
    lines = [
        f"packets: {stats.packets:,}   IP bytes: {stats.ip_bytes:,}   "
        f"duration: {stats.duration:.2f}s   mean rate: {stats.mean_mbps:.2f} Mb/s",
        f"tcp/udp/other/fragments: {stats.tcp_packets:,} / {stats.udp_packets:,} / "
        f"{stats.other_packets:,} / {stats.fragments:,} "
        f"({stats.fragment_fraction:.2%} fragmented)",
        f"flows: {stats.flows:,}   flow bytes p50/p90/p99: "
        f"{stats.flow_size_percentile(0.5):,} / {stats.flow_size_percentile(0.9):,} / "
        f"{stats.flow_size_percentile(0.99):,}",
        f"reordered: {stats.reorder_rate:.2%}   retransmitted: {stats.retransmit_rate:.2%}   "
        f"tiny (<16B) data packets: {stats.tiny_payloads:,}",
        "payload size histogram:",
    ]
    for _, label in _SIZE_BUCKETS:
        count = stats.payload_size_histogram.get(label, 0)
        if count:
            lines.append(f"  {label:>9}: {count:,}")
    return lines
