"""Content-fingerprint incremental cache for the analyzer.

``.splitcheck-cache.json`` (at the config root, gitignored) stores, per
scanned file, a sha256 content fingerprint plus the extracted
:class:`~repro.devtools.splitcheck.facts.FileFacts` and the per-file
findings.  A warm run re-reads every file's bytes (the fingerprint *is*
the staleness check -- no mtime races) but skips ``ast.parse`` and the
per-file rule walks for unchanged files; the project pass is then
rebuilt from cached facts, so only changed files pay full price.

The whole cache is keyed on a *signature*: the analyzer's own source
(every module in this package), the facts schema version, and the
effective configuration (selected rules, per-rule scopes, severities,
excludes).  Any of those changing invalidates everything -- correctness
over cleverness; a stale finding that survives an analyzer upgrade is
worse than a cold run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from .config import Config
from .facts import FACTS_VERSION, FileFacts
from .findings import Finding, Severity

__all__ = ["CACHE_FILENAME", "FactsCache", "cache_signature", "fingerprint"]

CACHE_FILENAME = ".splitcheck-cache.json"
_CACHE_VERSION = 1


def fingerprint(source: bytes) -> str:
    return hashlib.sha256(source).hexdigest()


def _analyzer_digest() -> str:
    """sha256 over this package's own sources, in a fixed order."""
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(package_dir).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def cache_signature(
    config: Config, select: frozenset[str] | None, rule_ids: tuple[str, ...]
) -> str:
    payload = {
        "cache_version": _CACHE_VERSION,
        "facts_version": FACTS_VERSION,
        "analyzer": _analyzer_digest(),
        "rules": sorted(rule_ids),
        "select": sorted(select) if select is not None else None,
        "disable": sorted(config.disable),
        "exclude": list(config.exclude),
        "rule_configs": {
            rule_id: {
                "paths": list(cfg.paths) if cfg.paths is not None else None,
                "exclude": list(cfg.exclude) if cfg.exclude is not None else None,
                "severity": cfg.severity,
            }
            for rule_id, cfg in sorted(config.rules.items())
        },
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


class FactsCache:
    """Load-mutate-write wrapper around the cache file."""

    def __init__(self, path: Path, signature: str) -> None:
        self.path = path
        self.signature = signature
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("signature") != self.signature:
            self._dirty = True  # rewrite with the new signature
            return
        entries = raw.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def get(
        self, rel_path: str, file_fingerprint: str
    ) -> tuple[FileFacts, list[Finding]] | None:
        """Cached (facts, findings) when the content is unchanged."""
        entry = self._entries.get(rel_path)
        if entry is None or entry.get("fingerprint") != file_fingerprint:
            self.misses += 1
            return None
        try:
            facts = FileFacts.from_dict(entry["facts"])
            findings = [
                Finding(
                    rule=item["rule"],
                    path=item["path"],
                    line=item["line"],
                    col=item["col"],
                    message=item["message"],
                    severity=Severity(item["severity"]),
                    source=item.get("source", ""),
                )
                for item in entry["findings"]
            ]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return facts, findings

    def put(
        self,
        rel_path: str,
        file_fingerprint: str,
        facts: FileFacts,
        findings: list[Finding],
    ) -> None:
        self._entries[rel_path] = {
            "fingerprint": file_fingerprint,
            "facts": facts.to_dict(),
            "findings": [finding.to_dict() for finding in findings],
        }
        self._dirty = True

    def prune(self, keep: set[str]) -> None:
        """Drop entries for files no longer in the scan set."""
        stale = [rel for rel in self._entries if rel not in keep]
        for rel in stale:
            del self._entries[rel]
            self._dirty = True

    def write(self) -> None:
        if not self._dirty:
            return
        payload = {"signature": self.signature, "files": self._entries}
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # a read-only checkout just stays cold
        self._dirty = False
