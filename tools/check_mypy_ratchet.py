#!/usr/bin/env python3
"""Fail if the mypy non-strict override list grew (the typing ratchet).

The ``[[tool.mypy.overrides]]`` block in pyproject.toml enumerates
legacy modules not yet held to ``--strict``.  The ratchet contract:
entries may be *removed* (a module graduated to strict) but never
*added* -- new code is strict from birth, and a graduated module must
never regress.

This script compares the current list against the one at a git
reference (default: merge base with ``origin/main``, falling back to
``main``, then ``HEAD~1``).  If no reference resolves -- shallow CI
clone, fresh repo -- the check passes with a notice rather than
blocking, because the working tree alone carries no evidence of growth.

Exit codes: 0 = list shrank or held, 1 = list grew, 2 = usage error.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

try:  # pragma: no cover - 3.10 fallback, mirrors splitcheck.config
    import tomllib
except ModuleNotFoundError:  # pragma: no cover
    import tomli as tomllib  # type: ignore[no-redef]

REPO_ROOT = Path(__file__).resolve().parent.parent
PYPROJECT = "pyproject.toml"
CANDIDATE_REFS = ("origin/main...HEAD", "main", "HEAD~1")


def override_modules(text: str) -> list[str] | None:
    """The non-strict module list from pyproject text, or None if absent."""
    data = tomllib.loads(text)
    for block in data.get("tool", {}).get("mypy", {}).get("overrides", []):
        module = block.get("module")
        if isinstance(module, str):
            module = [module]
        if isinstance(module, list) and not block.get("disallow_untyped_defs", True):
            return [str(m) for m in module]
    return None


def _git_show(ref: str) -> str | None:
    spec = ref
    if "..." in ref:  # merge-base form: resolve to a single commit first
        base = subprocess.run(
            ["git", "merge-base", *ref.split("...")],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        if base.returncode != 0:
            return None
        spec = base.stdout.strip()
    result = subprocess.run(
        ["git", "show", f"{spec}:{PYPROJECT}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    return result.stdout if result.returncode == 0 else None


def main() -> int:
    current_text = (REPO_ROOT / PYPROJECT).read_text(encoding="utf-8")
    current = override_modules(current_text)
    if current is None:
        print("mypy ratchet: no non-strict override block -- fully strict, done")
        return 0

    baseline_text = None
    used_ref = None
    for ref in CANDIDATE_REFS:
        baseline_text = _git_show(ref)
        if baseline_text is not None:
            used_ref = ref
            break
    if baseline_text is None:
        print("mypy ratchet: no comparable git reference; skipping (nothing to ratchet against)")
        return 0

    baseline = override_modules(baseline_text) or []
    added = sorted(set(current) - set(baseline))
    removed = sorted(set(baseline) - set(current))
    if added:
        print(f"mypy ratchet VIOLATION vs {used_ref}: override list grew")
        for module in added:
            print(f"  + {module}  (new code must be strict from birth)")
        return 1
    if removed:
        graduated = ", ".join(removed)
        print(f"mypy ratchet: {graduated} graduated to strict vs {used_ref}")
    print(f"mypy ratchet OK: {len(current)} non-strict module(s) (was {len(baseline)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
