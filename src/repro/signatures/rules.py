"""Parser and writer for a Snort-style exact-content rule dialect.

Supported grammar (one rule per line)::

    alert tcp any any -> any 80 (msg:"WEB-IIS cmd.exe access"; \
        content:"cmd.exe"; sid:1002;)

- Only ``alert tcp`` rules are modelled; the destination port is either a
  number or ``any``.
- ``content`` uses Snort escaping: ``|41 42|`` embeds hex bytes, ``\\|``,
  ``\\"`` and ``\\\\`` escape the specials.
- Rules may carry several ``content`` options: the longest becomes the
  primary pattern (the one Split-Detect splits); the rest must also
  appear in the same stream/datagram for the rule to fire.
- ``nocase`` applies to the whole rule (Snort scopes it per content; the
  simplification is conservative -- it only widens matching).
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from .model import RuleSet, Signature

_RULE_RE = re.compile(
    r"^alert\s+(?P<proto>tcp|udp)\s+\S+\s+\S+\s+->\s+\S+\s+(?P<port>\S+)\s*"
    r"\((?P<opts>.*)\)\s*$"
)


class RuleParseError(ValueError):
    """Raised when a rule line cannot be parsed."""

    def __init__(self, line_no: int, line: str, why: str) -> None:
        super().__init__(f"line {line_no}: {why}: {line.strip()!r}")
        self.line_no = line_no


def decode_content(text: str) -> bytes:
    """Decode a Snort content string (between its quotes) to raw bytes.

    >>> decode_content('abc')
    b'abc'
    >>> decode_content('|41 42|C')
    b'ABC'
    """
    out = bytearray()
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "|":
            end = text.find("|", i + 1)
            if end == -1:
                raise ValueError(f"unterminated hex block in content: {text!r}")
            hex_body = text[i + 1 : end].replace(" ", "")
            if len(hex_body) % 2:
                raise ValueError(f"odd-length hex block in content: {text!r}")
            out += bytes.fromhex(hex_body)
            i = end + 1
        elif ch == "\\":
            if i + 1 >= len(text):
                raise ValueError(f"dangling escape in content: {text!r}")
            out.append(ord(text[i + 1]))
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)


def encode_content(pattern: bytes) -> str:
    """Render raw bytes as a Snort content string (inverse of decode)."""
    out: list[str] = []
    hex_run: list[int] = []

    def flush() -> None:
        if hex_run:
            out.append("|" + " ".join(f"{b:02X}" for b in hex_run) + "|")
            hex_run.clear()

    for byte in pattern:
        if 0x20 <= byte <= 0x7E and chr(byte) not in '|"\\;':
            flush()
            out.append(chr(byte))
        else:
            hex_run.append(byte)
    flush()
    return "".join(out)


def _split_options(opts: str) -> list[tuple[str, str]]:
    """Split the option body on unquoted semicolons into (key, value)."""
    parts: list[str] = []
    current: list[str] = []
    in_quote = False
    i = 0
    while i < len(opts):
        ch = opts[i]
        if ch == "\\" and in_quote and i + 1 < len(opts):
            current.append(ch)
            current.append(opts[i + 1])
            i += 2
            continue
        if ch == '"':
            in_quote = not in_quote
        if ch == ";" and not in_quote:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    if "".join(current).strip():
        parts.append("".join(current))
    pairs: list[tuple[str, str]] = []
    for part in parts:
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition(":")
        pairs.append((key.strip(), value.strip()))
    return pairs


def parse_rule(line: str, line_no: int = 0) -> Signature:
    """Parse one rule line into a :class:`Signature`."""
    match = _RULE_RE.match(line.strip())
    if not match:
        raise RuleParseError(line_no, line, "not an 'alert tcp/udp' rule")
    port_text = match.group("port")
    if port_text.lower() == "any":
        dst_port: int | None = None
    else:
        try:
            dst_port = int(port_text)
        except ValueError as exc:
            raise RuleParseError(line_no, line, f"bad port {port_text!r}") from exc
    msg = ""
    sid: int | None = None
    nocase = False
    contents: list[bytes] = []
    for key, value in _split_options(match.group("opts")):
        if key == "msg":
            msg = value.strip('"')
        elif key == "sid":
            try:
                sid = int(value)
            except ValueError as exc:
                raise RuleParseError(line_no, line, f"bad sid {value!r}") from exc
        elif key == "nocase":
            nocase = True
        elif key == "content":
            body = value.strip()
            if not (body.startswith('"') and body.endswith('"') and len(body) >= 2):
                raise RuleParseError(line_no, line, "content not quoted")
            contents.append(decode_content(body[1:-1]))
    if sid is None:
        raise RuleParseError(line_no, line, "missing sid")
    if not contents:
        raise RuleParseError(line_no, line, "missing content")
    pattern = max(contents, key=len)
    extras = tuple(c for c in contents if c is not pattern)
    return Signature(
        sid=sid,
        pattern=pattern,
        msg=msg,
        dst_port=dst_port,
        protocol=match.group("proto"),
        nocase=nocase,
        extra_contents=extras,
    )


def parse_rules(text: str) -> RuleSet:
    """Parse a rules file body; blank lines and ``#`` comments are skipped."""
    rules = RuleSet()
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.add(parse_rule(stripped, line_no))
    return rules


def load_rules(path) -> RuleSet:
    """Parse a rules file from disk."""
    with open(path, encoding="utf-8") as handle:
        return parse_rules(handle.read())


def format_rule(signature: Signature) -> str:
    """Render a :class:`Signature` back to rule syntax."""
    port = "any" if signature.dst_port is None else str(signature.dst_port)
    msg = signature.msg.replace('"', "'")
    options = [f'msg:"{msg}"', f'content:"{encode_content(signature.pattern)}"']
    options.extend(
        f'content:"{encode_content(extra)}"' for extra in signature.extra_contents
    )
    if signature.nocase:
        options.append("nocase")
    options.append(f"sid:{signature.sid}")
    return (
        f"alert {signature.protocol} any any -> any {port} "
        f"({'; '.join(options)};)"
    )


def dump_rules(rules: Iterable[Signature]) -> str:
    """Render many signatures as a rules file body."""
    return "\n".join(format_rule(signature) for signature in rules) + "\n"
