"""Telemetry overhead gate -- instrumentation must stay near-free.

The whole design contract of ``repro.telemetry`` is "one guarded check
per hot-path site when disabled, cheap bound-instrument updates when
enabled".  This benchmark enforces it: the mixed trace is driven through
``SplitDetectIPS.process_batch`` twice per round -- once with the no-op
registry (the library default) and once fully instrumented -- and the
best-of-N instrumented time must be within ``MAX_OVERHEAD`` of the
best-of-N no-op time.

CI runs this test in the perf smoke job; the measured ratio lands in
``BENCH_telemetry.json`` at the repo root.
"""

import json
import sys
import time
from pathlib import Path

from exp_common import bundled_rules, emit, mixed_trace
from repro.core import SplitDetectIPS
from repro.telemetry import NULL_REGISTRY, TelemetryRegistry

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Instrumented wall-clock must stay within this factor of the no-op run.
MAX_OVERHEAD = 1.15

BATCH_SIZE = 256
ROUNDS = 5


def drive_once(rules, trace, telemetry) -> float:
    """One full trace pass through process_batch; returns elapsed seconds."""
    ips = SplitDetectIPS(rules, telemetry=telemetry)
    start = time.perf_counter()
    for index in range(0, len(trace), BATCH_SIZE):
        ips.process_batch(trace[index : index + BATCH_SIZE])
    return time.perf_counter() - start


def test_telemetry_overhead_gate(capfd):
    rules = bundled_rules()
    trace = mixed_trace()
    # Warm-up pass (automaton compilation, allocator, branch caches) so
    # neither arm pays first-run costs.
    drive_once(rules, trace, NULL_REGISTRY)
    baseline = float("inf")
    instrumented = float("inf")
    # Interleave the arms so clock drift and background noise hit both.
    for _ in range(ROUNDS):
        baseline = min(baseline, drive_once(rules, trace, NULL_REGISTRY))
        instrumented = min(
            instrumented, drive_once(rules, trace, TelemetryRegistry())
        )
    ratio = instrumented / baseline

    # The instrumented run must also have recorded real data -- a gate
    # that passes because telemetry silently no-opped is no gate.
    tel = TelemetryRegistry()
    ips = SplitDetectIPS(rules, telemetry=tel)
    for index in range(0, len(trace), BATCH_SIZE):
        ips.process_batch(trace[index : index + BATCH_SIZE])
    ips.refresh_telemetry()
    packets = tel.get("repro_engine_packets_total")
    assert packets.value_for(path="fast") > 0
    stage = tel.get("repro_engine_stage_latency_ns")
    observed = {labels["stage"] for labels, child in stage.samples() if child.count}
    assert {"decode", "fast_path", "ac_prescan"} <= observed

    result = {
        "benchmark": "telemetry_overhead",
        "packets": len(trace),
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "noop_best_s": round(baseline, 6),
        "instrumented_best_s": round(instrumented, 6),
        "overhead_ratio": round(ratio, 4),
        "max_overhead": MAX_OVERHEAD,
    }
    (REPO_ROOT / "BENCH_telemetry.json").write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    emit(
        "telemetry_overhead",
        [
            f"no-op registry   best of {ROUNDS}: {baseline * 1e3:8.2f} ms",
            f"instrumented     best of {ROUNDS}: {instrumented * 1e3:8.2f} ms",
            f"overhead ratio: {ratio:.3f}x (gate: <= {MAX_OVERHEAD}x)",
        ],
        capfd,
    )
    assert ratio <= MAX_OVERHEAD, (
        f"telemetry overhead {ratio:.3f}x exceeds the {MAX_OVERHEAD}x budget"
    )


if __name__ == "__main__":
    import pytest

    sys.exit(pytest.main([__file__, "-x", "-q", "-p", "no:cacheprovider"]))
