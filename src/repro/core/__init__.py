"""Split-Detect core: fast path, slow path, engine, and baselines."""

from .alerts import Alert, AlertKind, Diversion, DivertReason
from .conventional import (
    PROVISIONED_BUFFER_PER_FLOW,
    ConventionalIPS,
    NaivePacketIPS,
)
from .engine import PROBATION_REASONS, EngineStats, SplitDetectIPS
from .fastpath import FAST_FLOW_STATE_BYTES, FastPath, FastPathConfig, FastPathResult
from .flowtable import FlowTable, fnv1a_64
from .sketch import CountMinSketch, SketchBackend
from .slowpath import SlowPath
from .state import DictBackend, FlowState, StateBackend, TableBackend

__all__ = [
    "Alert",
    "AlertKind",
    "ConventionalIPS",
    "CountMinSketch",
    "DictBackend",
    "Diversion",
    "DivertReason",
    "EngineStats",
    "FAST_FLOW_STATE_BYTES",
    "FastPath",
    "FastPathConfig",
    "FastPathResult",
    "FlowState",
    "FlowTable",
    "NaivePacketIPS",
    "PROBATION_REASONS",
    "PROVISIONED_BUFFER_PER_FLOW",
    "SketchBackend",
    "SlowPath",
    "SplitDetectIPS",
    "StateBackend",
    "TableBackend",
    "fnv1a_64",
]
