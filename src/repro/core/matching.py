"""Shared signature-matching machinery: case folding + multi-content rules.

Every engine ultimately answers the same question -- "which signatures'
contents have all appeared?" -- over either a byte stream (TCP) or a
self-contained buffer (UDP datagram, naive per-packet).  This module owns
that logic once:

- the :class:`DualAutomaton` indexes each signature's primary pattern and
  every extra content (case-folded for ``nocase`` rules);
- :class:`StreamMatchState` tracks, per flow direction, which extras have
  been seen and how many primary occurrences are awaiting them;
- a rule fires when its primary pattern has occurred and every extra
  content has been seen (order-free, Snort-style), once per primary
  occurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..match import DualAutomaton, DualStreamMatcher
from ..packet import FlowKey
from ..signatures import Signature


@dataclass(frozen=True)
class SignatureHit:
    """One completed rule match."""

    signature: Signature
    end_offset: int
    """Stream/buffer offset just past the primary pattern occurrence (for
    completions triggered by a late extra content, the extra's offset)."""


@dataclass
class StreamMatchState:
    """Per-flow-direction matching state."""

    matcher: DualStreamMatcher
    extras_seen: dict[int, set[int]] = field(default_factory=dict)
    pending_primaries: dict[int, int] = field(default_factory=dict)

    @property
    def open_prefix_len(self) -> int:
        return self.matcher.open_prefix_len

    @property
    def stream_offset(self) -> int:
        return self.matcher.stream_offset


class SignatureMatcher:
    """Index of signatures' contents, shared by the matching engines."""

    def __init__(self, signatures: list[Signature]) -> None:
        self.signatures = list(signatures)
        patterns: list[tuple[bytes, bool]] = []
        # entry -> (signature index, None for primary | extra index)
        self._entry_info: list[tuple[int, int | None]] = []
        for sig_index, signature in enumerate(self.signatures):
            patterns.append((signature.pattern, signature.nocase))
            self._entry_info.append((sig_index, None))
            for extra_index, extra in enumerate(signature.extra_contents):
                patterns.append((extra, signature.nocase))
                self._entry_info.append((sig_index, extra_index))
        self.automaton = DualAutomaton(patterns) if patterns else None

    @property
    def empty(self) -> bool:
        return self.automaton is None

    def new_stream_state(self) -> StreamMatchState:
        assert self.automaton is not None
        return StreamMatchState(matcher=DualStreamMatcher(self.automaton))

    # -- core completion logic ---------------------------------------------

    def _complete(
        self,
        hits: list[tuple[int, int]],
        flow: FlowKey | None,
        extras_seen: dict[int, set[int]],
        pending: dict[int, int],
    ) -> list[SignatureHit]:
        out: list[SignatureHit] = []
        for entry_id, end in hits:
            sig_index, extra_index = self._entry_info[entry_id]
            signature = self.signatures[sig_index]
            if flow is not None and not signature.applies_to_flow(flow):
                continue
            needed = len(signature.extra_contents)
            if extra_index is not None:
                seen = extras_seen.setdefault(sig_index, set())
                if extra_index in seen:
                    continue
                seen.add(extra_index)
                if len(seen) == needed and pending.get(sig_index):
                    for _ in range(pending.pop(sig_index)):
                        out.append(SignatureHit(signature, end))
                continue
            # Primary occurrence.
            if needed == 0 or len(extras_seen.get(sig_index, ())) == needed:
                out.append(SignatureHit(signature, end))
            else:
                pending[sig_index] = pending.get(sig_index, 0) + 1
        return out

    def match_chunk(
        self, state: StreamMatchState, chunk: bytes, flow: FlowKey | None
    ) -> list[SignatureHit]:
        """Feed the next stream chunk; returns newly completed rules."""
        hits = [(m.pattern_id, m.end_offset) for m in state.matcher.feed(chunk)]
        return self._complete(hits, flow, state.extras_seen, state.pending_primaries)

    def match_buffer(
        self, payload: bytes, flow: FlowKey | None
    ) -> list[SignatureHit]:
        """Match a self-contained buffer (datagram / single packet)."""
        if self.automaton is None:
            return []
        hits = sorted(self.automaton.find_all(payload), key=lambda h: h[1])
        return self._complete(hits, flow, {}, {})

    def match_buffer_many(
        self,
        payloads: list[bytes],
        flows: list[FlowKey | None],
    ) -> list[list[SignatureHit]]:
        """Batched :meth:`match_buffer`: one automaton sweep over all
        payloads, then per-buffer completion; one result list each."""
        if self.automaton is None:
            return [[] for _ in payloads]
        results: list[list[SignatureHit]] = []
        for raw_hits, flow in zip(self.automaton.scan_many(payloads), flows):
            hits = sorted(raw_hits, key=lambda h: h[1])
            results.append(self._complete(hits, flow, {}, {}))
        return results
