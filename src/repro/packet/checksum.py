"""RFC 1071 Internet checksum.

The ones'-complement sum over 16-bit words is used by IPv4 headers and by
the TCP pseudo-header checksum.  The implementation folds the buffer with
``int.from_bytes`` in one pass, which is the fastest pure-Python variant
for the short buffers (20-1500 bytes) this library handles.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Return the RFC 1071 checksum of ``data`` as a 16-bit integer.

    The buffer is zero-padded to an even length, summed as big-endian
    16-bit words with end-around carry, and complemented.

    >>> internet_checksum(b"\\x45\\x00\\x00\\x14" + b"\\x00" * 16) != 0
    True
    >>> internet_checksum(b"")
    65535
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    # Summing 16-bit words; slicing with a memoryview avoids copies.
    view = memoryview(data)
    for i in range(0, len(view), 2):
        total += (view[i] << 8) | view[i + 1]
    # Fold carries back in until the value fits 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src: bytes, dst: bytes, protocol: int, length: int) -> bytes:
    """Build the IPv4 pseudo-header used in the TCP/UDP checksum.

    ``src`` and ``dst`` are 4-byte network-order addresses; ``length`` is
    the full TCP segment length (header plus payload).
    """
    if len(src) != 4 or len(dst) != 4:
        raise ValueError("pseudo-header addresses must be 4 bytes each")
    return src + dst + bytes((0, protocol)) + length.to_bytes(2, "big")


def verify_checksum(data: bytes) -> bool:
    """Return True when ``data`` (which embeds its checksum field) verifies.

    A buffer whose embedded checksum is correct sums to zero under the
    ones'-complement addition, i.e. ``internet_checksum`` returns 0.
    """
    return internet_checksum(data) == 0
