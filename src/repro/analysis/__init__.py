"""Trace characterization and reporting utilities."""

from .trace_stats import TraceStats, characterize, format_stats

__all__ = ["TraceStats", "characterize", "format_stats"]
