"""Run harness: drive an IPS over a trace and collect evaluation numbers.

This is the shared machinery under every benchmark: it feeds packets,
samples state periodically (state comparisons use the *peak*, since that
is what a box must provision), and assembles the per-run summary the
tables and figures report.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from ..core import Alert, ConventionalIPS, SplitDetectIPS
from ..core.conventional import PROVISIONED_BUFFER_PER_FLOW
from ..core.fastpath import FAST_FLOW_STATE_BYTES
from ..packet import TimedPacket
from ..packet.batch import PacketBatch
from ..runtime.batching import iter_batches
from ..streams import FLOW_OVERHEAD_BYTES
from ..telemetry import stage_profile
from .cost import CostReport, HardwareModel, conventional_cost, split_detect_cost

__all__ = [
    "PROVISIONED_BUFFER_PER_FLOW",  # re-exported; defined in core.conventional
    "RunReport",
    "extrapolate_state",
    "provisioned_conventional_state",
    "provisioned_fastpath_state",
    "run_conventional",
    "run_split_detect",
    "run_split_detect_columnar",
    "state_bytes_ratio",
    "state_per_flow",
    "throughput_comparison",
]


@dataclass
class RunReport:
    """Everything one trace run produced."""

    label: str
    packets: int = 0
    payload_bytes: int = 0
    alerts: list[Alert] = field(default_factory=list)
    peak_state_bytes: int = 0
    peak_flows: int = 0
    # Split-Detect specific:
    diverted_flows: int = 0
    divert_reasons: dict[str, int] = field(default_factory=dict)
    fast_bytes: int = 0
    slow_bytes: int = 0
    fast_packets: int = 0
    slow_packets: int = 0
    evictions: int = 0
    """Idle per-flow entries reclaimed by automatic ``evict_idle`` sweeps
    (0 unless the run was driven with an ``evict_interval``)."""

    telemetry: dict | None = None
    """Registry snapshot taken at the end of the run (None when the
    engine ran with the no-op registry)."""

    profile: dict | None = None
    """Stage self-profile (p50/p90/p99/max per stage + top-N slowest
    flows), derived from the stage latency histogram; None when the
    engine ran with the no-op registry."""

    trace: dict | None = None
    """Flight-recorder snapshot (spans + ring accounting); None when the
    engine ran with the no-op tracer."""

    @property
    def diversion_byte_fraction(self) -> float:
        total = self.fast_bytes + self.slow_bytes
        return self.slow_bytes / total if total else 0.0


def run_split_detect(
    ips: SplitDetectIPS,
    trace: Iterable[TimedPacket],
    *,
    label: str = "split-detect",
    sample_every: int = 200,
    batch_size: int | None = None,
    evict_interval: float | None = None,
) -> RunReport:
    """Feed a trace through a Split-Detect engine, sampling peak state.

    ``trace`` may be any iterable -- in particular a lazy
    :func:`repro.pcap.read_trace` iterator, which keeps the resident
    footprint at one batch no matter the pcap size.  Packets are driven
    through :meth:`SplitDetectIPS.process_batch` in batches of
    ``batch_size`` (default: ``sample_every``, so state is sampled
    between batches exactly as the per-packet loop used to).

    ``evict_interval`` (seconds of *packet time*) arms automatic
    :meth:`SplitDetectIPS.evict_idle` sweeps -- the same housekeeping
    the sharded runtime's workers run -- so long traces shed dead flows
    without the caller remembering to.  ``None`` (default) preserves
    the no-eviction behaviour."""
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    report = RunReport(label=label)
    step = batch_size or sample_every
    evict_anchor: float | None = None
    for batch in iter_batches(trace, step):
        report.alerts.extend(ips.process_batch(batch))
        if evict_interval is not None:
            now = batch[-1].timestamp
            if evict_anchor is None:
                evict_anchor = batch[0].timestamp
            if now - evict_anchor >= evict_interval:
                report.evictions += ips.evict_idle(now)
                evict_anchor = now
        report.peak_state_bytes = max(report.peak_state_bytes, ips.state_bytes())
        flows = ips.fast_path.tracked_flows + ips.slow_path.active_flows
        report.peak_flows = max(report.peak_flows, flows)
        ips.refresh_telemetry()
    return _finish_split_report(ips, report)


def run_split_detect_columnar(
    ips: SplitDetectIPS,
    batches: Iterable[PacketBatch],
    *,
    label: str = "split-detect",
    evict_interval: float | None = None,
) -> RunReport:
    """Columnar twin of :func:`run_split_detect`.

    Drives :meth:`SplitDetectIPS.process_column_batch` over a
    :class:`~repro.packet.batch.PacketBatch` stream (see
    :func:`repro.pcap.read_column_batches`).  State is sampled between
    batches and eviction runs on the same packet-time cadence as the
    object harness, so a run over identically sized batches produces the
    same report fields.  Reader-side quarantined exceptions must already
    have been handled (use ``on_invalid="raise"`` or pre-absorb them);
    this harness asserts none slip through silently.
    """
    report = RunReport(label=label)
    evict_anchor: float | None = None
    for batch in batches:
        if batch.quarantined:
            raise batch.quarantined[0]
        if not batch:
            continue
        report.alerts.extend(ips.process_column_batch(batch))
        if evict_interval is not None:
            now = batch.last_ts
            if evict_anchor is None:
                evict_anchor = batch.first_ts
            if now - evict_anchor >= evict_interval:
                report.evictions += ips.evict_idle(now)
                evict_anchor = now
        report.peak_state_bytes = max(report.peak_state_bytes, ips.state_bytes())
        flows = ips.fast_path.tracked_flows + ips.slow_path.active_flows
        report.peak_flows = max(report.peak_flows, flows)
        ips.refresh_telemetry()
    return _finish_split_report(ips, report)


def _finish_split_report(ips: SplitDetectIPS, report: RunReport) -> RunReport:
    """Shared tail of the split-detect harnesses: stats, gauges, trace."""
    report.peak_state_bytes = max(report.peak_state_bytes, ips.state_bytes())
    report.packets = ips.stats.packets_total
    report.fast_packets = ips.stats.fast_packets
    report.slow_packets = ips.stats.slow_packets
    report.fast_bytes = ips.stats.fast_bytes_scanned
    report.slow_bytes = ips.stats.slow_bytes_normalized
    report.payload_bytes = report.fast_bytes + report.slow_bytes
    report.diverted_flows = len(ips.diversions)
    report.divert_reasons = {
        reason.value: count for reason, count in ips.divert_reasons.items()
    }
    if ips.telemetry.enabled:
        tel = ips.telemetry
        tel.gauge(
            "repro_engine_peak_state_bytes",
            "Peak sampled per-flow state",
            merge="sum",
        ).set(report.peak_state_bytes)
        tel.gauge(
            "repro_engine_peak_flows",
            "Peak sampled concurrent flow count",
            merge="sum",
        ).set(report.peak_flows)
        report.telemetry = ips.telemetry_snapshot()
        report.profile = stage_profile(tel)
    if ips.tracer.enabled:
        report.trace = ips.tracer.snapshot()
    return report


def run_conventional(
    ips: ConventionalIPS,
    trace: Iterable[TimedPacket],
    *,
    label: str = "conventional",
    sample_every: int = 200,
) -> RunReport:
    """Feed a trace through the conventional baseline, sampling peak state.

    Accepts any iterable (the packet loop is already streaming)."""
    report = RunReport(label=label)
    for index, packet in enumerate(trace):
        report.alerts.extend(ips.process(packet))
        if index % sample_every == 0:
            report.peak_state_bytes = max(report.peak_state_bytes, ips.state_bytes())
            report.peak_flows = max(report.peak_flows, ips.active_flows)
            ips.refresh_telemetry()
    report.peak_state_bytes = max(report.peak_state_bytes, ips.state_bytes())
    report.packets = ips.packets_processed
    report.payload_bytes = ips.bytes_normalized
    if ips.telemetry.enabled:
        report.telemetry = ips.telemetry_snapshot()
    return report


def state_bytes_ratio(report: RunReport) -> float:
    """Measured peak Split-Detect state over the conventional equivalent.

    The denominator is what a conventional IPS must hold for the same
    peak flow population (flow record + provisioned reassembly buffer
    per flow) -- the regime of the abstract's ~10%-state claim.
    """
    if not report.peak_flows:
        return 0.0
    conventional = report.peak_flows * (
        FLOW_OVERHEAD_BYTES + PROVISIONED_BUFFER_PER_FLOW
    )
    return report.peak_state_bytes / conventional


def state_per_flow(report: RunReport) -> float:
    """Average peak state per concurrently tracked flow."""
    return report.peak_state_bytes / report.peak_flows if report.peak_flows else 0.0


def extrapolate_state(per_flow_bytes: float, connections: int = 1_000_000) -> int:
    """Scale a per-flow footprint to the paper's 1M-connection standard."""
    return int(per_flow_bytes * connections)


def provisioned_conventional_state(connections: int = 1_000_000) -> int:
    """What a conventional IPS must *provision* per the 1M-connection
    requirement: flow record plus reassembly buffer per connection."""
    return connections * (FLOW_OVERHEAD_BYTES + PROVISIONED_BUFFER_PER_FLOW)


def provisioned_fastpath_state(connections: int = 1_000_000) -> int:
    """What the Split-Detect fast path provisions: two direction records."""
    return connections * 2 * FAST_FLOW_STATE_BYTES


def throughput_comparison(
    split_report: RunReport,
    conventional_report: RunReport,
    *,
    hardware: HardwareModel | None = None,
    connections: int = 1_000_000,
) -> list[CostReport]:
    """Figure 6's rows: conventional vs fast/slow/blended Split-Detect.

    State footprints use the provisioned 1M-connection figures (that is
    the regime the paper argues about); measured diversion fractions from
    the runs split the byte volume between the two paths.
    """
    hardware = hardware or HardwareModel()
    conv = conventional_cost(
        conventional_report.payload_bytes,
        max(conventional_report.packets, 1),
        provisioned_conventional_state(connections),
        hardware,
    )
    diverted_fraction = split_report.diverted_flows / max(split_report.peak_flows, 1)
    slow_connections = max(1, int(connections * min(1.0, diverted_fraction)))
    fast, slow, blended = split_detect_cost(
        split_report.fast_bytes,
        split_report.fast_packets,
        split_report.slow_bytes,
        split_report.slow_packets,
        provisioned_fastpath_state(connections),
        slow_connections * (FLOW_OVERHEAD_BYTES + PROVISIONED_BUFFER_PER_FLOW),
        hardware,
    )
    return [conv, fast, slow, blended]
