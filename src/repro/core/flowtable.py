"""Fixed-capacity, set-associative flow table for the fast path.

The paper's state argument is about *hardware*: fast-path per-flow state
lives in a fixed SRAM table, not a growable hash map.  This table models
that honestly -- power-of-two buckets, a small number of ways per bucket,
FNV-1a hashing of the five-tuple, LRU replacement within a bucket -- and
counts the evictions, because an evicted flow's monitor restarts in
midstream-pickup mode (its expected sequence number is forgotten).

Detection is *not* broken by eviction: the piece matcher is stateless per
packet, the small-packet rule needs no history, and an out-of-order
segment after re-insertion simply re-arms from the new packet.  What
eviction costs is sensitivity of the order monitor immediately after the
evicted flow returns -- exactly the degradation a hardware designer sizes
the table to bound, which `bench_fig10_flowtable.py` measures.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterator
from typing import Generic, TypeVar

# Historical home of fnv1a_64; the shared implementation now lives in
# repro.hashing (one hash feeds the flow table, the sketch backend, and
# the shard router) and is re-exported here for compatibility.
from ..hashing import fnv1a_64

__all__ = ["FlowTable", "fnv1a_64"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class FlowTable(Generic[K, V]):
    """A set-associative table with per-bucket LRU replacement.

    ``buckets`` must be a power of two; total capacity is
    ``buckets * ways`` entries.  ``key_bytes`` serializes a key for
    hashing (defaults to ``repr(key).encode()``, override for speed).
    """

    def __init__(
        self,
        buckets: int = 1024,
        ways: int = 4,
        *,
        key_bytes: Callable[[K], bytes] | None = None,
    ) -> None:
        if buckets <= 0 or buckets & (buckets - 1):
            raise ValueError(f"buckets must be a power of two, got {buckets}")
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.bucket_count = buckets
        self.ways = ways
        self._key_bytes = key_bytes or (lambda key: repr(key).encode())
        # Each bucket is an LRU-ordered list of (key, value); index 0 is
        # the least recently used entry (the replacement victim).
        self._buckets: list[list[tuple[K, V]]] = [[] for _ in range(buckets)]
        self._size = 0
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        return self.bucket_count * self.ways

    def __len__(self) -> int:
        return self._size

    def _bucket_of(self, key: K) -> list[tuple[K, V]]:
        index = fnv1a_64(self._key_bytes(key)) & (self.bucket_count - 1)
        return self._buckets[index]

    def get(self, key: K) -> V | None:
        """Look up ``key``, refreshing its LRU position on a hit."""
        bucket = self._bucket_of(key)
        for i, (existing, value) in enumerate(bucket):
            if existing == key:
                bucket.append(bucket.pop(i))
                self.hits += 1
                return value
        self.misses += 1
        return None

    def peek(self, key: K) -> V | None:
        """Look up ``key`` WITHOUT refreshing LRU order or counting telemetry.

        For passive probes -- reads that only inspect state and carry no
        evidence the flow is active (e.g. the fast path snapshotting an
        expected sequence number at diversion time).  A :meth:`get` at
        such a site would both promote the entry (protecting it from
        replacement on the strength of a bookkeeping read) and skew the
        hit/miss statistics that size-tuning reads.
        """
        for existing, value in self._bucket_of(key):
            if existing == key:
                return value
        return None

    def put(self, key: K, value: V) -> K | None:
        """Insert or update ``key``; returns the evicted key, if any."""
        bucket = self._bucket_of(key)
        for i, (existing, _) in enumerate(bucket):
            if existing == key:
                bucket.pop(i)
                bucket.append((key, value))
                return None
        evicted: K | None = None
        if len(bucket) >= self.ways:
            evicted, _ = bucket.pop(0)
            self.evictions += 1
            self._size -= 1
        bucket.append((key, value))
        self._size += 1
        return evicted

    def __setitem__(self, key: K, value: V) -> None:
        """dict-style insert; the eviction (if any) is counted internally."""
        self.put(key, value)

    def pop(self, key: K, default: V | None = None) -> V | None:
        """Remove ``key`` and return its value (dict-compatible default)."""
        bucket = self._bucket_of(key)
        for i, (existing, value) in enumerate(bucket):
            if existing == key:
                bucket.pop(i)
                self._size -= 1
                return value
        return default

    def clear(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._size = 0

    def items(self) -> Iterator[tuple[K, V]]:
        for bucket in self._buckets:
            yield from bucket

    @property
    def load_factor(self) -> float:
        return self._size / self.capacity
