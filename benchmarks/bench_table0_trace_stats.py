"""Table 0 -- characterization of the evaluation traces.

Every trace-driven paper opens its evaluation with a table describing the
traces.  Ours are synthetic, so this table doubles as the calibration
record: the statistics here (packet mix, flow tail, pathology rates) are
what the substitution argument in DESIGN.md rests on.
"""

import sys

from exp_common import benign_trace, emit, mixed_trace
from repro.analysis import characterize, format_stats


def table_rows() -> list[str]:
    lines = []
    for label, trace in (
        ("benign-250 (seed 41)", benign_trace(flows=250, seed=41)),
        ("mixed-300 (3 attacks)", mixed_trace()),
    ):
        lines.append(f"--- {label} ---")
        lines.extend(format_stats(characterize(trace)))
        lines.append("")
    return lines


def test_table0_trace_characterization(benchmark, capfd):
    trace = benign_trace(flows=250, seed=41)
    stats = benchmark(characterize, trace)
    # Calibration sanity: the synthetic traces sit in the regimes the
    # substitution argument claims (low pathology rates, heavy flow tail).
    assert stats.reorder_rate < 0.02
    assert stats.retransmit_rate < 0.02
    assert stats.fragment_fraction < 0.02
    assert stats.flow_size_percentile(0.99) > 5 * stats.flow_size_percentile(0.5)
    emit("table0_trace_stats", table_rows(), capfd)


if __name__ == "__main__":
    print("\n".join(table_rows()), file=sys.stderr)
