"""Splitcheck incremental-cache gate -- warm runs must be cheap.

PR 9 added a content-fingerprint facts cache
(``.splitcheck-cache.json``) so the whole-tree SD2xx project pass does
not force every ``splitdetect check`` to re-parse an unchanged repo.
This benchmark enforces the contract: a warm run (every file a cache
hit) must finish within ``MAX_WARM_RATIO`` of a cold run (empty cache)
over the same tree, and the two runs must produce byte-identical
findings.  A regression here means the cache key got too coarse (warm
runs re-parse) or the hit path grew hidden work.

CI runs this in the static-analysis job; the measured ratio lands in
``BENCH_splitcheck.json`` at the repo root.
"""

import json
import time
from pathlib import Path

from repro.devtools.splitcheck import all_rules, check_paths, load_config

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Warm (all-hits) wall-clock must stay within this factor of cold.
MAX_WARM_RATIO = 0.4

ROUNDS = 3


def _run(cache_path: Path):
    config = load_config(REPO_ROOT)
    start = time.perf_counter()
    findings, checked = check_paths(
        [REPO_ROOT / "src" / "repro"], config, cache_path=cache_path
    )
    elapsed = time.perf_counter() - start
    return elapsed, findings, checked


def test_splitcheck_cache_gate(tmp_path, capfd):
    cold_best = float("inf")
    warm_best = float("inf")
    cold_findings = warm_findings = None
    checked = 0
    for round_index in range(ROUNDS):
        cache = tmp_path / f"cache-{round_index}.json"
        elapsed, cold_findings, checked = _run(cache)  # empty cache: cold
        cold_best = min(cold_best, elapsed)
        elapsed, warm_findings, _ = _run(cache)  # populated cache: warm
        warm_best = min(warm_best, elapsed)

    assert checked > 50, f"suspiciously small tree: {checked} files"
    assert [f.to_dict() for f in cold_findings] == [
        f.to_dict() for f in warm_findings
    ], "warm run changed the findings -- cache is not transparent"

    ratio = warm_best / cold_best
    payload = {
        "benchmark": "splitcheck_cache",
        "checked_files": checked,
        "registered_rules": len(all_rules()),
        "findings": len(cold_findings),
        "max_warm_ratio": MAX_WARM_RATIO,
        "cold_best_s": round(cold_best, 4),
        "warm_best_s": round(warm_best, 4),
        "warm_cold_ratio": round(ratio, 4),
    }
    (REPO_ROOT / "BENCH_splitcheck.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    with capfd.disabled():
        print(
            f"\nsplitcheck cache: {checked} files, cold {cold_best * 1e3:.0f} ms, "
            f"warm {warm_best * 1e3:.0f} ms (ratio {ratio:.3f}, "
            f"gate <= {MAX_WARM_RATIO})"
        )
    assert ratio <= MAX_WARM_RATIO, (
        f"warm run too slow: {warm_best:.3f}s vs cold {cold_best:.3f}s "
        f"(ratio {ratio:.3f} > {MAX_WARM_RATIO}) -- the incremental cache "
        "is not skipping parse/rule work"
    )


if __name__ == "__main__":
    import sys

    import pytest

    raise SystemExit(pytest.main([__file__, "-q", *sys.argv[1:]]))
