"""Runtime telemetry: metric registry, event journal, and exporters.

Quick tour::

    from repro.telemetry import TelemetryRegistry, to_json, to_prometheus

    tel = TelemetryRegistry()
    ips = SplitDetectIPS(rules, telemetry=tel)
    ips.process_batch(trace)
    ips.refresh_telemetry()          # sample gauges (occupancy, state bytes)
    print(to_prometheus(tel))        # or to_json(tel)

Every engine defaults to :data:`NULL_REGISTRY`, whose instruments are
no-op singletons -- instrumentation then costs one guarded check per
hot-path site.  See DESIGN.md's "Telemetry" section for the metric
naming scheme and how the exported series map to the paper's claims.
"""

from .export import summarize, to_json, to_prometheus, write_telemetry
from .profile import (
    PROFILE_QUANTILES,
    SLOW_FLOW_GAUGE,
    STAGE_HISTOGRAM,
    StageProfiler,
    histogram_quantile,
    stage_profile,
)
from .registry import (
    GAUGE_MERGE_MODES,
    JOURNAL_CAPACITY,
    LATENCY_NS_BUCKETS,
    NULL_REGISTRY,
    SIZE_BYTES_BUCKETS,
    Counter,
    EventJournal,
    Gauge,
    Histogram,
    NullRegistry,
    TelemetryRegistry,
    merge_snapshots,
)
from .serve import TelemetryPublisher, TelemetryServer, TelemetrySession
from .trace import (
    NULL_TRACER,
    TRACE_CAPACITY,
    FlowTracer,
    NullTracer,
    merge_trace_snapshots,
    span_sort_key,
    trace_id_of,
)

__all__ = [
    "Counter",
    "EventJournal",
    "FlowTracer",
    "GAUGE_MERGE_MODES",
    "Gauge",
    "Histogram",
    "JOURNAL_CAPACITY",
    "LATENCY_NS_BUCKETS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "PROFILE_QUANTILES",
    "SIZE_BYTES_BUCKETS",
    "SLOW_FLOW_GAUGE",
    "STAGE_HISTOGRAM",
    "StageProfiler",
    "TRACE_CAPACITY",
    "TelemetryPublisher",
    "TelemetryRegistry",
    "TelemetryServer",
    "TelemetrySession",
    "histogram_quantile",
    "merge_snapshots",
    "merge_trace_snapshots",
    "span_sort_key",
    "stage_profile",
    "summarize",
    "to_json",
    "to_prometheus",
    "trace_id_of",
    "write_telemetry",
]
