#!/usr/bin/env python3
"""Scaling out: the flow-hashed sharded runtime, serial vs parallel.

Split-Detect keeps every byte of per-flow state keyed by the connection,
so the engine shards perfectly behind an RSS-style flow hash: N workers,
each owning all state for its slice of the flows, no cross-shard
communication at all.  This demo builds a mixed trace (benign background
plus two catalog evasions, one of them IP-fragmented), runs it through

- the unsharded engine (the reference),
- SerialRunner with 4 shards in one thread,
- ParallelRunner with 4 worker processes,

and shows they produce the identical alert list and counters -- the
equivalence digest -- while the parallel run reports per-shard
throughput.

Run:  python examples/parallel_pipeline.py
"""

from repro.core import SplitDetectIPS
from repro.evasion import build_attack
from repro.runtime import (
    EngineSpec,
    ParallelRunner,
    RunnerConfig,
    SerialRunner,
    equivalence_digest,
    iter_batches,
)
from repro.signatures import RuleSet, Signature
from repro.traffic import TrafficProfile, generate_trace, inject_attacks

SIGNATURE = b"EVIL-PAYLOAD\x90\x90\x90\x90:exec/bin/sh"
OFFSET = 120

rules = RuleSet()
rules.add(Signature(sid=3001, pattern=SIGNATURE, msg="demo target"))

payload = bytearray(b"Content-Filler: benign web traffic padding / " * 30)
payload[OFFSET : OFFSET + len(SIGNATURE)] = SIGNATURE
payload = bytes(payload)

print("== building a mixed trace (benign flows + 2 evasion attacks) ==")
trace = inject_attacks(
    generate_trace(TrafficProfile(flows=150), seed=42),
    [
        build_attack(name, payload, signature_span=(OFFSET, len(SIGNATURE)),
                     src=f"10.66.0.{i + 1}", seed=i)
        for i, name in enumerate(["tcp_seg_8", "ip_frag_8"])
    ],
)
print(f"   {len(trace)} packets\n")

spec = EngineSpec(rules=rules)
config = RunnerConfig(batch_size=128, telemetry=True)

print("== reference: one unsharded engine ==")
ips = SplitDetectIPS(rules)
ref_alerts = []
for batch in iter_batches(trace, 128):
    ref_alerts.extend(ips.process_batch(batch))
ref_digest = equivalence_digest(ref_alerts, ips.stats)
print(f"   {len(ref_alerts)} alerts, digest {ref_digest[:16]}...\n")

print("== SerialRunner, 4 shards, one thread ==")
serial = SerialRunner(spec, shards=4, config=config).run(trace)
print(f"   {len(serial.alerts)} alerts, digest {serial.digest()[:16]}...")
for shard in serial.shards:
    print(f"   shard[{shard.shard}]: {shard.stats.packets_total} packets, "
          f"{len(shard.alerts)} alerts, {shard.diverted_flows} diverted")
print()

print("== ParallelRunner, 4 worker processes, bounded queues ==")
parallel = ParallelRunner(spec, workers=4, config=config).run(trace)
print(f"   {len(parallel.alerts)} alerts, digest {parallel.digest()[:16]}...")
print(f"   wall: {parallel.wall_seconds:.2f}s "
      f"({parallel.wall_throughput_pps:,.0f} pkt/s end to end)")
print(f"   aggregate shard capacity: {parallel.aggregate_shard_pps:,.0f} pkt/s "
      f"(sum of per-shard CPU rates)")
for shard in parallel.shards:
    print(f"   shard[{shard.shard}]: {shard.stats.packets_total} packets in "
          f"{shard.busy_seconds * 1000:.0f} ms of CPU")
print()

print("== equivalence ==")
assert serial.digest() == ref_digest, "serial diverged from unsharded"
assert parallel.digest() == ref_digest, "parallel diverged from unsharded"
assert serial.alerts == parallel.alerts, "merged alert order differs"
print("   unsharded == serial(4) == parallel(4): identical alert sets and")
print("   summed packet/byte/diversion counters (same equivalence digest).")
print()
print("the flow hash sends both directions of a connection -- and every")
print("fragment of its datagrams -- to the same shard, so sharding never")
print("changes what the engine sees per flow, only who processes it.")
