"""Runtime scaling gate -- sharding must add capacity, not change results.

Drives one mixed trace (benign background + catalog attacks) through the
sharded runtime at 1/2/4/8 workers and checks the two contracts of
``repro.runtime``:

- **equivalence**: every worker count -- serial or parallel -- produces
  the same :func:`repro.runtime.equivalence_digest` (same alert set,
  same summed packet/byte/diversion counters) as the single-shard run;
- **scaling**: aggregate shard throughput (sum of per-shard engine busy
  rates, i.e. the capacity the shards provide when each has its own
  core) at 4 workers is at least ``MIN_SCALING_4X`` times the 1-worker
  figure.  Wall-clock throughput depends on how many cores the host
  actually has, which CI does not guarantee -- on a 1-core host wall
  pps *decreases* as workers are added while the aggregate figure still
  scales.  So the wall-clock speedup assertion is conditional: it only
  fires when ``host.cpu_count`` covers the worker count, and the
  recorded gate (``wall_gate``) says whether it was applied.  The
  aggregate assertion applies everywhere.

The machine-readable results land in ``BENCH_runtime.json`` at the repo
root; CI uploads it as an artifact.  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_runtime_scaling.py
"""

import json
import os
import sys
from pathlib import Path

from exp_common import benign_trace, emit, gauntlet_ruleset, gauntlet_payload, ATTACK_OFFSET, ATTACK_SIGNATURE
from repro.evasion import build_attack
from repro.runtime import (
    EngineSpec,
    ParallelRunner,
    RunnerConfig,
    SerialRunner,
)
from repro.traffic import inject_attacks

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Aggregate shard throughput at 4 workers must be at least this factor
#: of the 1-worker aggregate (perfect scaling would be ~4x).
MIN_SCALING_4X = 2.0

#: When the host really has >= 4 cores, wall-clock throughput at
#: 4 workers must beat the 1-worker wall figure by this factor.  A
#: deliberately loose bound: the gate exists to catch parallelism that
#: stopped helping at all, not to measure the host.
MIN_WALL_SPEEDUP_4X = 1.2

WORKER_COUNTS = (1, 2, 4, 8)
BATCH_SIZE = 256
TRACE_FLOWS = 500


def scaling_trace():
    """A trace big enough to amortize worker startup, with attacks in it."""
    trace = benign_trace(TRACE_FLOWS, seed=2006)
    attacks = [
        build_attack(
            name,
            gauntlet_payload(),
            signature_span=(ATTACK_OFFSET, len(ATTACK_SIGNATURE)),
            src=f"10.66.0.{i + 1}",
            seed=i,
        )
        for i, name in enumerate(["tcp_seg_8", "ip_frag_8", "stealth_segments"])
    ]
    return inject_attacks(trace, attacks)


def run_scaling() -> dict:
    trace = scaling_trace()
    spec = EngineSpec(rules=gauntlet_ruleset())
    config = RunnerConfig(batch_size=BATCH_SIZE)

    reference = SerialRunner(spec, shards=1, config=config).run(trace)
    rows = []
    for workers in WORKER_COUNTS:
        report = ParallelRunner(spec, workers=workers, config=config).run(trace)
        rows.append(
            {
                "workers": workers,
                "packets": report.packets,
                "alerts": len(report.alerts),
                "wall_seconds": round(report.wall_seconds, 4),
                "wall_throughput_pps": round(report.wall_throughput_pps, 1),
                "aggregate_shard_pps": round(report.aggregate_shard_pps, 1),
                "shard_packets": [s.stats.packets_total for s in report.shards],
                "digest": report.digest(),
                "shed_packets": report.shed_packets,
            }
        )
    aggregate_1 = rows[0]["aggregate_shard_pps"]
    row_4 = next(r for r in rows if r["workers"] == 4)
    cpu_count = os.cpu_count() or 1
    return {
        "trace": {
            "flows": TRACE_FLOWS,
            "packets": len(trace),
            "attacks": ["tcp_seg_8", "ip_frag_8", "stealth_segments"],
        },
        "host": {"cpu_count": cpu_count},
        "batch_size": BATCH_SIZE,
        "reference_digest": reference.digest(),
        "reference_alerts": len(reference.alerts),
        "rows": rows,
        "scaling_4x_aggregate": round(row_4["aggregate_shard_pps"] / aggregate_1, 2),
        "min_scaling_required": MIN_SCALING_4X,
        "wall_speedup_4x": round(
            row_4["wall_throughput_pps"] / rows[0]["wall_throughput_pps"], 2
        ),
        # The wall-clock gate only means anything when each of the 4
        # workers can have its own core; otherwise record why we skipped.
        "wall_gate": {
            "applied": cpu_count >= 4,
            "min_wall_speedup": MIN_WALL_SPEEDUP_4X,
        },
    }


def check_and_emit(result: dict, capfd=None) -> None:
    (REPO_ROOT / "BENCH_runtime.json").write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        f"trace: {result['trace']['packets']} packets "
        f"({result['trace']['flows']} flows + {len(result['trace']['attacks'])} attacks), "
        f"host cpus: {result['host']['cpu_count']}",
        f"{'workers':>7}  {'wall s':>8}  {'wall pps':>10}  {'aggregate pps':>13}  digest",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['workers']:>7}  {row['wall_seconds']:>8.3f}  "
            f"{row['wall_throughput_pps']:>10,.0f}  "
            f"{row['aggregate_shard_pps']:>13,.0f}  {row['digest'][:12]}"
        )
    lines.append(
        f"aggregate scaling at 4 workers: {result['scaling_4x_aggregate']}x "
        f"(gate: >= {result['min_scaling_required']}x)"
    )
    wall_gate = result["wall_gate"]
    lines.append(
        f"wall speedup at 4 workers: {result['wall_speedup_4x']}x "
        + (
            f"(gate: >= {wall_gate['min_wall_speedup']}x)"
            if wall_gate["applied"]
            else f"(not gated: host has {result['host']['cpu_count']} cores)"
        )
    )
    emit("runtime_scaling", lines, capfd)

    reference = result["reference_digest"]
    for row in result["rows"]:
        assert row["digest"] == reference, (
            f"{row['workers']}-worker run diverged from the single-shard "
            f"reference: {row['digest']} != {reference}"
        )
        assert row["shed_packets"] == 0, "lossless run shed packets"
        assert row["packets"] == result["trace"]["packets"]
    assert result["reference_alerts"] > 0, "gauntlet produced no alerts"
    assert result["scaling_4x_aggregate"] >= MIN_SCALING_4X, (
        f"aggregate throughput scaled only "
        f"{result['scaling_4x_aggregate']}x at 4 workers "
        f"(need >= {MIN_SCALING_4X}x)"
    )
    if result["wall_gate"]["applied"]:
        assert result["wall_speedup_4x"] >= MIN_WALL_SPEEDUP_4X, (
            f"wall-clock throughput at 4 workers is only "
            f"{result['wall_speedup_4x']}x the 1-worker figure on a "
            f"{result['host']['cpu_count']}-core host "
            f"(need >= {MIN_WALL_SPEEDUP_4X}x when cores >= workers)"
        )


def test_runtime_scaling(capfd):
    """Equivalence at every worker count + the 4-worker scaling gate.

    Emits BENCH_runtime.json."""
    check_and_emit(run_scaling(), capfd)


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent))
    check_and_emit(run_scaling())
    print("runtime scaling gate passed", file=sys.stderr)
