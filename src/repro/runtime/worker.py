"""The per-shard engine loop, shared by the serial and parallel runners.

A :class:`ShardProcessor` owns one engine and turns a stream of routed
batches into a :class:`ShardReport`.  Keeping this logic in one class is
what makes the two runners bit-for-bit comparable: the serial runner
calls :meth:`ShardProcessor.feed` inline, the parallel runner runs the
identical code behind a queue, and both see the same batch boundaries
(the router splits each input batch per shard *before* feeding), so
state sampling and eviction ticks land at the same packet positions.
"""

from __future__ import annotations

import traceback
from time import process_time_ns
from typing import Any

from ..core import Alert
from ..packet import TimedPacket
from ..telemetry import TelemetryRegistry
from .config import RunnerConfig
from .report import ShardReport
from .spec import EngineSpec

__all__ = ["ShardProcessor"]

#: Queue sentinel telling a worker to drain and report.
DRAIN = None


class ShardProcessor:
    """One shard: an engine, its alert log, and its housekeeping clock."""

    def __init__(self, shard: int, spec: EngineSpec, config: RunnerConfig) -> None:
        self.shard = shard
        self.config = config
        self.telemetry = TelemetryRegistry() if config.telemetry else None
        self.engine = spec.build(telemetry=self.telemetry)
        self.alerts: list[Alert] = []
        self.peak_state_bytes = 0
        self.peak_flows = 0
        self.evictions = 0
        self.batches = 0
        self.busy_ns = 0
        self._evict_anchor: float | None = None

    def feed(self, batch: list[TimedPacket]) -> None:
        """Process one routed batch (engine work + periodic housekeeping)."""
        if not batch:
            return
        # CPU time, not wall time: on a host with fewer cores than
        # workers the wall clock counts time spent scheduled out, which
        # would make per-shard rates look like contention instead of
        # capacity.
        t0 = process_time_ns()
        self.alerts.extend(self.engine.process_batch(batch))
        self.batches += 1
        interval = self.config.evict_interval
        if interval is not None:
            # Packet time, not wall time: replayed traces must evict at
            # the same points no matter how fast the box replays them.
            now = batch[-1].timestamp
            if self._evict_anchor is None:
                self._evict_anchor = batch[0].timestamp
            if now - self._evict_anchor >= interval:
                self.evictions += self.engine.evict_idle(now)
                self._evict_anchor = now
        if self.config.sample_state:
            engine = self.engine
            self.peak_state_bytes = max(self.peak_state_bytes, engine.state_bytes())
            flows = engine.fast_path.tracked_flows + engine.slow_path.active_flows
            self.peak_flows = max(self.peak_flows, flows)
            if self.telemetry is not None:
                engine.refresh_telemetry()
        self.busy_ns += process_time_ns() - t0

    def finish(self) -> ShardReport:
        """Final state sample + report assembly (call exactly once)."""
        engine = self.engine
        self.peak_state_bytes = max(self.peak_state_bytes, engine.state_bytes())
        if self.telemetry is not None:
            engine.refresh_telemetry()
        return ShardReport(
            shard=self.shard,
            alerts=self.alerts,
            stats=engine.stats,
            divert_reasons={
                reason.value: count for reason, count in engine.divert_reasons.items()
            },
            diverted_flows=len(engine.diversions),
            reinstated_flows=engine.reinstated_flows,
            overload_refusals=engine.overload_refusals,
            peak_state_bytes=self.peak_state_bytes,
            peak_flows=self.peak_flows,
            evictions=self.evictions,
            batches=self.batches,
            busy_ns=self.busy_ns,
            telemetry=self.telemetry,
        )


def shard_worker_main(
    shard: int,
    spec: EngineSpec,
    config: RunnerConfig,
    in_queue: Any,
    out_queue: Any,
) -> None:
    """Process entry point: drain batches until the sentinel, then report.

    Results (or a formatted traceback on failure) go back on
    ``out_queue`` as ``(status, shard, payload)`` tuples.  The worker
    always consumes up to the sentinel, even after an engine error, so
    the feeder can never deadlock against a full queue whose consumer
    died silently.
    """
    processor: ShardProcessor | None = None
    failure: str | None = None
    try:
        processor = ShardProcessor(shard, spec, config)
    except Exception:
        failure = traceback.format_exc()
    while True:
        batch = in_queue.get()
        if batch is DRAIN:
            break
        if failure is None:
            try:
                processor.feed(batch)
            except Exception:
                failure = traceback.format_exc()
    if failure is not None:
        out_queue.put(("error", shard, failure))
    else:
        assert processor is not None  # failure is None implies construction worked
        out_queue.put(("ok", shard, processor.finish()))
