"""Bench trend gate -- fresh ``BENCH_*.json`` vs the committed copies.

CI regenerates the benchmark JSON files and this script diffs every
numeric leaf against the copy committed at a git ref (``HEAD`` by
default, i.e. the checkout under test).  Two classes of metric:

- **gated**: machine-independent numerics -- packet/alert/state counts,
  table sizes, byte splits, ratios of counted things.  A drift beyond
  the tolerance (default +/-20%) fails the run: it means the *workload
  or algorithm* changed without the committed baseline being updated.
- **info-only**: anything timing-derived (wall seconds, throughput,
  speedups, overhead ratios).  CI machines differ; these are reported
  in the delta table but never gate.

A metric is classified by key name: leaves matching
:data:`TIMING_PATTERN` anywhere in their dotted path are info-only.
The delta table is written as Markdown to ``$GITHUB_STEP_SUMMARY``
when that variable is set (GitHub renders it as the job summary) and
always printed as text.  Files absent from the baseline ref (a brand
new benchmark) are reported as ``new`` and do not gate.

Runnable standalone from the repo root::

    PYTHONPATH=src python benchmarks/bench_trend.py
    PYTHONPATH=src python benchmarks/bench_trend.py --ref origin/main --tolerance 0.3
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Key names (matched anywhere in the dotted path, case-insensitive)
#: whose values depend on the machine the benchmark ran on.
TIMING_PATTERN = re.compile(
    r"(mbps|gbps|pps|seconds|wall|ns_per|_ns\b|_s\b|best_s|speedup"
    r"|overhead|ratio|rate|cpu_count|latency)",
    re.IGNORECASE,
)

DEFAULT_TOLERANCE = 0.20


def numeric_leaves(data, prefix: str = "") -> dict[str, float]:
    """Flatten *data* to ``{dotted.path: value}`` for numeric leaves."""
    out: dict[str, float] = {}
    if isinstance(data, bool):
        return out
    if isinstance(data, (int, float)):
        out[prefix] = float(data)
    elif isinstance(data, dict):
        for key in sorted(data):
            out.update(numeric_leaves(data[key], f"{prefix}.{key}" if prefix else key))
    elif isinstance(data, list):
        for i, item in enumerate(data):
            out.update(numeric_leaves(item, f"{prefix}[{i}]"))
    return out


def committed_copy(name: str, ref: str) -> dict | None:
    """The file's content at *ref*, or None if it does not exist there."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def compare_file(name: str, ref: str, tolerance: float) -> tuple[list[dict], bool]:
    """Rows for one BENCH file; second element is True when it gates clean."""
    fresh_path = REPO_ROOT / name
    fresh = numeric_leaves(json.loads(fresh_path.read_text(encoding="utf-8")))
    baseline_data = committed_copy(name, ref)
    if baseline_data is None:
        return (
            [{"file": name, "metric": "(new file)", "status": "new"}],
            True,
        )
    baseline = numeric_leaves(baseline_data)

    rows = []
    clean = True
    for path in sorted(set(fresh) | set(baseline)):
        timing = bool(TIMING_PATTERN.search(path))
        old = baseline.get(path)
        new = fresh.get(path)
        if old is None or new is None:
            status = "added" if old is None else "removed"
            if not timing:
                clean = False
                status += " (GATE)"
            rows.append(
                {"file": name, "metric": path, "old": old, "new": new, "status": status}
            )
            continue
        if old == new:
            continue
        delta = (new - old) / abs(old) if old else float("inf")
        within = abs(delta) <= tolerance
        if timing:
            status = "info"
        elif within:
            status = "ok"
        else:
            status = "DRIFT"
            clean = False
        rows.append(
            {
                "file": name,
                "metric": path,
                "old": old,
                "new": new,
                "delta": delta,
                "status": status,
            }
        )
    return rows, clean


def render(rows: list[dict], tolerance: float) -> str:
    lines = [
        "| file | metric | committed | fresh | delta | status |",
        "|---|---|---:|---:|---:|---|",
    ]
    for row in rows:
        old = "" if row.get("old") is None else f"{row['old']:g}"
        new = "" if row.get("new") is None else f"{row['new']:g}"
        delta = "" if "delta" not in row else f"{row['delta']:+.1%}"
        lines.append(
            f"| {row['file']} | `{row['metric']}` | {old} | {new} "
            f"| {delta} | {row['status']} |"
        )
    if len(rows) == 0:
        lines.append("| *(all metrics identical)* | | | | | |")
    lines.append("")
    lines.append(
        f"Gate: machine-independent metrics within +/-{tolerance:.0%} of the "
        "committed baseline; timing metrics are info-only."
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ref",
        default="HEAD",
        help="git ref holding the baseline copies (default: HEAD)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed relative drift for gated metrics (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="BENCH_*.json names to compare (default: every BENCH_*.json present)",
    )
    args = parser.parse_args(argv)

    names = args.files or sorted(p.name for p in REPO_ROOT.glob("BENCH_*.json"))
    if not names:
        print("bench-trend: no BENCH_*.json files found", file=sys.stderr)
        return 2

    all_rows: list[dict] = []
    all_clean = True
    for name in names:
        rows, clean = compare_file(name, args.ref, args.tolerance)
        all_rows.extend(rows)
        all_clean = all_clean and clean

    table = render(all_rows, args.tolerance)
    heading = "## Bench trend vs " + args.ref
    print(heading + "\n" + table)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(heading + "\n\n" + table + "\n")

    if not all_clean:
        print(
            "bench-trend: gated metric drifted beyond tolerance -- if the "
            "workload change is intentional, regenerate and commit the "
            "BENCH_*.json baselines",
            file=sys.stderr,
        )
        return 1
    print("bench-trend: gate clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
