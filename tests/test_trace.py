"""Flow-level decision tracing: flight recorder, merge, serve, explain.

The contract under test is the tracer's determinism pact: trace ids are
a pure function of the canonical flow, sampling is a pure function of
the trace id, and the merged parallel timeline is byte-identical to the
serial one -- while the equivalence digest never notices tracing at all.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.core import SplitDetectIPS
from repro.evasion import build_attack
from repro.packet import FlowKey, TimedPacket
from repro.runtime import (
    EngineSpec,
    FaultPlan,
    ParallelRunner,
    RunnerConfig,
    SerialRunner,
)
from repro.signatures import SplitPolicy
from repro.telemetry import (
    NULL_TRACER,
    FlowTracer,
    TelemetryPublisher,
    TelemetryRegistry,
    TelemetryServer,
    histogram_quantile,
    merge_trace_snapshots,
    span_sort_key,
    stage_profile,
    trace_id_of,
)
from repro.traffic import TrafficProfile, generate_trace, inject_attacks

from helpers import ATTACK_SIGNATURE, SIGNATURE_OFFSET, attack_payload, attack_ruleset


def make_spec() -> EngineSpec:
    return EngineSpec(rules=attack_ruleset(), split_policy=SplitPolicy(piece_length=8))


def gauntlet_trace(flows: int = 30) -> list[TimedPacket]:
    trace = generate_trace(TrafficProfile(flows=flows), seed=7)
    span = (SIGNATURE_OFFSET, len(ATTACK_SIGNATURE))
    attacks = [
        build_attack(
            name,
            attack_payload(),
            signature_span=span,
            src=f"10.66.0.{i + 1}",
            dst_port=80,
            seed=i,
        )
        for i, name in enumerate(["tcp_seg_8", "ip_frag_8", "stealth_segments"])
    ]
    return inject_attacks(trace, attacks)


def traced_config(**overrides) -> RunnerConfig:
    defaults = dict(batch_size=32, telemetry=True, trace=True)
    defaults.update(overrides)
    return RunnerConfig(**defaults)


# ---------------------------------------------------------------------------
# Trace ids
# ---------------------------------------------------------------------------


class TestTraceId:
    def test_both_directions_share_an_id(self):
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1025, 80)
        assert trace_id_of(flow) == trace_id_of(flow.reversed())

    def test_ports_do_not_matter(self):
        # IP fragments decode with no ports; they must land on their
        # connection's trace, exactly like the 'flow' shard policy.
        full = FlowKey("10.0.0.1", "10.0.0.2", 1025, 80)
        fragment = FlowKey("10.0.0.1", "10.0.0.2", 0, 0)
        assert trace_id_of(full) == trace_id_of(fragment)

    def test_protocol_does_matter(self):
        tcp = FlowKey("10.0.0.1", "10.0.0.2", 1025, 80, 6)
        udp = FlowKey("10.0.0.1", "10.0.0.2", 1025, 80, 17)
        assert trace_id_of(tcp) != trace_id_of(udp)

    def test_id_is_stable_and_cached(self):
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1025, 80)
        tracer = FlowTracer()
        assert tracer.trace_id(flow) == trace_id_of(flow)
        assert tracer.trace_id(flow.reversed()) == trace_id_of(flow)


# ---------------------------------------------------------------------------
# Recording, sampling, ring accounting
# ---------------------------------------------------------------------------


class TestFlowTracer:
    def test_every_flow_traced_at_sample_one(self):
        tracer = FlowTracer(sample=1)
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1025, 80)
        tracer.record(flow, "decode", "fast_route", 0.5)
        (span,) = tracer.spans()
        assert span["trace"] == f"{trace_id_of(flow):016x}"
        assert span["stage"] == "decode"
        assert span["event"] == "fast_route"
        assert span["ts"] == 0.5

    def test_sampling_thins_unforced_flows(self):
        sample = 10
        tracer = FlowTracer(sample=sample)
        flows = [FlowKey(f"10.1.{i}.1", "10.0.0.2", 1025, 80) for i in range(300)]
        for flow in flows:
            tracer.record(flow, "decode", "fast_route", 0.0)
        expected = sum(1 for f in flows if trace_id_of(f) % sample == 0)
        assert len(tracer) == expected
        assert 0 < expected < len(flows)

    def test_force_pins_the_flow_past_sampling(self):
        tracer = FlowTracer(sample=1_000_000_007)  # samples essentially nothing
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1025, 80)
        tracer.record(flow, "decode", "fast_route", 0.0)
        assert len(tracer) == 0
        tracer.record(flow, "engine", "divert", 1.0, force=True)
        # ...and every later span of the same connection is kept, even
        # unforced and via the reverse direction.
        tracer.record(flow.reversed(), "slow", "reassemble", 2.0)
        assert [s["event"] for s in tracer.spans()] == ["divert", "reassemble"]

    def test_ring_overflow_arithmetic(self):
        tracer = FlowTracer(capacity=8)
        flow = FlowKey("10.0.0.1", "10.0.0.2", 1025, 80)
        for i in range(20):
            tracer.record(flow, "decode", "fast_route", float(i))
        assert len(tracer) == 8
        assert tracer.recorded == 20
        assert tracer.dropped == 12
        assert len(tracer) + tracer.dropped == tracer.recorded
        # The ring keeps the newest spans.
        assert [s["ts"] for s in tracer.spans()] == [float(i) for i in range(12, 20)]

    def test_system_spans_always_recorded(self):
        tracer = FlowTracer(sample=1_000_000_007)
        tracer.record_system("engine", "evict_sweep", ts=9.0, fast_evicted=3)
        (span,) = tracer.spans()
        assert span["trace"] == "0" * 16
        assert span["flow"] == ""
        assert span["fast_evicted"] == 3

    def test_snapshot_is_json_safe(self):
        tracer = FlowTracer()
        tracer.record(FlowKey("a", "b", 1, 2), "decode", "fast_route", 0.0)
        snapshot = tracer.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowTracer(capacity=0)
        with pytest.raises(ValueError):
            FlowTracer(sample=0)

    def test_null_tracer_is_inert(self):
        flow = FlowKey("a", "b", 1, 2)
        NULL_TRACER.record(flow, "decode", "fast_route", 0.0, force=True)
        NULL_TRACER.record_system("engine", "evict_sweep")
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.snapshot() == {}
        assert not NULL_TRACER.wants(flow)


# ---------------------------------------------------------------------------
# Merge
# ---------------------------------------------------------------------------


class TestMerge:
    def test_merge_orders_and_sums(self):
        a = FlowTracer(shard=0)
        b = FlowTracer(shard=1, capacity=16)
        a.record(FlowKey("a", "b", 1, 2), "decode", "fast_route", 2.0)
        b.record(FlowKey("c", "d", 3, 4), "decode", "fast_route", 1.0)
        merged = merge_trace_snapshots(a.snapshot(), None, b.snapshot(), {})
        assert [s["ts"] for s in merged["spans"]] == [1.0, 2.0]
        assert merged["recorded"] == 2
        assert merged["capacity"] == FlowTracer().capacity
        assert merged["spans"] == sorted(merged["spans"], key=span_sort_key)

    def test_merge_breaks_ts_ties_by_shard_then_gen_then_seq(self):
        spans = [
            {"ts": 1.0, "shard": 1, "gen": 0, "seq": 0},
            {"ts": 1.0, "shard": 0, "gen": 1, "seq": 0},
            {"ts": 1.0, "shard": 0, "gen": 0, "seq": 1},
            {"ts": 1.0, "shard": 0, "gen": 0, "seq": 0},
        ]
        ordered = sorted(spans, key=span_sort_key)
        assert ordered == [spans[3], spans[2], spans[1], spans[0]]


# ---------------------------------------------------------------------------
# Engine integration: the divert → confirm timeline
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def run_traced(self, trace):
        tracer = FlowTracer()
        ips = SplitDetectIPS(
            attack_ruleset(),
            split_policy=SplitPolicy(piece_length=8),
            tracer=tracer,
        )
        alerts = ips.process_batch(trace)
        return ips, tracer, alerts

    def test_divert_confirm_timeline_is_causal(self):
        trace = gauntlet_trace()
        ips, tracer, alerts = self.run_traced(trace)
        assert alerts
        spans = tracer.spans()
        events = {(s["stage"], s["event"]) for s in spans}
        assert ("engine", "divert") in events
        assert ("slow", "confirm") in events
        # Every diverted connection's timeline runs anomaly-or-fragment
        # → divert → (reassemble ...) in nondecreasing packet time.
        diverts = [s for s in spans if s["event"] == "divert"]
        for divert in diverts:
            timeline = sorted(
                (s for s in spans if s["trace"] == divert["trace"]),
                key=span_sort_key,
            )
            order = [s["event"] for s in timeline]
            assert "divert" in order
            trigger = min(
                (
                    order.index(e)
                    for e in ("anomaly", "fragment")
                    if e in order
                ),
                default=None,
            )
            assert trigger is not None and trigger < order.index("divert")

    def test_tracing_does_not_change_detection(self):
        trace = gauntlet_trace()
        _, _, traced_alerts = self.run_traced(trace)
        untraced = SplitDetectIPS(
            attack_ruleset(), split_policy=SplitPolicy(piece_length=8)
        )
        assert untraced.tracer is NULL_TRACER
        assert untraced.process_batch(trace) == traced_alerts

    def test_diverted_flow_fully_traced_under_sampling(self):
        trace = gauntlet_trace()
        tracer = FlowTracer(sample=1_000_000_007)
        ips = SplitDetectIPS(
            attack_ruleset(),
            split_policy=SplitPolicy(piece_length=8),
            tracer=tracer,
        )
        ips.process_batch(trace)
        events = [s["event"] for s in tracer.spans()]
        assert "divert" in events and "confirm" in events
        # The benign prefix was thinned: no plain routing spans for
        # never-diverted flows.
        benign = {s["trace"] for s in tracer.spans() if s["event"] == "fast_route"}
        forced = {s["trace"] for s in tracer.spans() if s["event"] == "divert"}
        assert benign <= forced


# ---------------------------------------------------------------------------
# Runtime: serial == parallel, digest unperturbed, restart salvage
# ---------------------------------------------------------------------------


class TestRuntimeTracing:
    def test_serial_equals_parallel_spans_and_digest(self):
        trace = gauntlet_trace()
        config = traced_config()
        serial = SerialRunner(make_spec(), shards=4, config=config).run(trace)
        parallel = ParallelRunner(make_spec(), workers=4, config=config).run(trace)
        assert serial.digest() == parallel.digest()
        assert serial.trace is not None and parallel.trace is not None
        assert serial.trace["spans"] == parallel.trace["spans"]

    def test_tracing_leaves_digest_unchanged(self):
        trace = gauntlet_trace()
        plain = SerialRunner(
            make_spec(), shards=4, config=RunnerConfig(batch_size=32)
        ).run(trace)
        traced = SerialRunner(make_spec(), shards=4, config=traced_config()).run(trace)
        assert plain.digest() == traced.digest()
        assert plain.trace is None
        assert traced.trace["recorded"] > 0

    def test_sampling_knob_reaches_the_workers(self):
        trace = gauntlet_trace()
        coarse = SerialRunner(
            make_spec(), shards=2, config=traced_config(trace_sample=1_000_000_007)
        ).run(trace)
        fine = SerialRunner(make_spec(), shards=2, config=traced_config()).run(trace)
        assert 0 < coarse.trace["recorded"] < fine.trace["recorded"]
        assert {s["event"] for s in coarse.trace["spans"]} >= {"divert", "confirm"}

    def test_restart_salvages_crashed_generation_traces(self):
        trace = gauntlet_trace()
        # The stall forces a heartbeat-interval delta flush (carrying the
        # gen-0 trace ring) before the crash -- salvage works from the
        # last flushed delta, so a crash before any flush has nothing
        # to recover.
        config = traced_config(
            max_restarts=2,
            restart_backoff=0.01,
            heartbeat_interval=0.05,
            heartbeat_timeout=5.0,
            drain_timeout=60.0,
            faults=FaultPlan.parse(
                ["stall:shard=0,at=40,seconds=0.12", "crash:shard=0,at=120"]
            ),
        )
        report = ParallelRunner(make_spec(), workers=2, config=config).run(trace)
        assert report.worker_restarts >= 1
        assert report.trace is not None
        # Both the dead generation's salvaged spans and the replacement
        # generation's spans survive the merge, tagged apart.
        shard0_gens = {
            s["gen"] for s in report.trace["spans"] if s["shard"] == 0
        }
        assert len(shard0_gens) >= 2
        assert report.trace["spans"] == sorted(
            report.trace["spans"], key=span_sort_key
        )
        # Each generation appears exactly once in the shard reports, and
        # the merged registry still carries its telemetry.
        gen_keys = [(s.shard, s.generation) for s in report.shards]
        assert len(gen_keys) == len(set(gen_keys))
        assert isinstance(report.registry, TelemetryRegistry)

    def test_trace_rides_outside_the_digest_under_restart(self):
        trace = gauntlet_trace()

        def run(traced: bool):
            config = traced_config(
                trace=traced,
                max_restarts=2,
                restart_backoff=0.01,
                heartbeat_interval=0.05,
                heartbeat_timeout=1.0,
                drain_timeout=60.0,
                faults=FaultPlan.parse(["crash:shard=1,at=90"]),
            )
            return ParallelRunner(make_spec(), workers=2, config=config).run(trace)

        traced_report = run(True)
        plain = run(False)
        assert traced_report.digest() == plain.digest()
        assert plain.trace is None


# ---------------------------------------------------------------------------
# Stage profiler
# ---------------------------------------------------------------------------


class TestProfile:
    def test_histogram_quantile_interpolates(self):
        edges = (10.0, 100.0)
        # 4 samples <=10, 6 more <=100 (cumulative 4, 10).
        assert histogram_quantile(edges, (4, 10), 0.0) <= 10.0
        assert histogram_quantile(edges, (4, 10), 1.0) == 100.0
        mid = histogram_quantile(edges, (4, 10), 0.5)
        assert 10.0 < mid < 100.0

    def test_run_report_carries_profile_and_slowest_flows(self):
        trace = gauntlet_trace()
        report = SerialRunner(make_spec(), shards=2, config=traced_config()).run(trace)
        assert report.profile is not None
        stages = report.profile["stages"]
        assert {"fast_path", "slow_path"} <= set(stages)
        for stage in stages.values():
            assert stage["count"] > 0
            assert stage["p50_ns"] <= stage["p99_ns"] <= stage["max_le_ns"]
        slowest = report.profile["slowest_flows"]
        assert slowest
        for entries in slowest.values():
            durations = [entry["dur_ns"] for entry in entries]
            assert durations == sorted(durations, reverse=True)

    def test_profile_none_without_telemetry(self):
        registry = TelemetryRegistry()
        assert stage_profile(registry) is None


# ---------------------------------------------------------------------------
# Live telemetry endpoint
# ---------------------------------------------------------------------------


class TestServe:
    def fetch(self, url: str) -> tuple[int, bytes]:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read()

    def test_endpoints_serve_live_state(self):
        trace = gauntlet_trace(flows=10)
        report = SerialRunner(make_spec(), shards=2, config=traced_config()).run(trace)
        publisher = TelemetryPublisher()
        publisher.registry = report.registry
        publisher.trace_snapshot = report.trace
        publisher.health = {"status": "ok", "packets": report.packets}
        with TelemetryServer(publisher, port=0) as server:
            status, metrics = self.fetch(f"{server.url}/metrics")
            assert status == 200
            assert b"repro_telemetry_journal_recorded_total" in metrics
            assert b"repro_profile_stage_latency_ns" in metrics
            status, health = self.fetch(f"{server.url}/healthz")
            assert status == 200
            assert json.loads(health)["status"] == "ok"
            status, traces = self.fetch(f"{server.url}/traces")
            assert status == 200
            spans = json.loads(traces)["spans"]
            assert spans == report.trace["spans"]
            # Filtered by trace id prefix.
            wanted = spans[0]["trace"]
            status, body = self.fetch(f"{server.url}/traces?trace={wanted}")
            filtered = json.loads(body)["spans"]
            assert filtered and all(s["trace"] == wanted for s in filtered)

    def test_unknown_path_is_404(self):
        with TelemetryServer(TelemetryPublisher(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.fetch(f"{server.url}/nope")
            assert excinfo.value.code == 404
