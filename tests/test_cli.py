"""Tests for the splitdetect command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.pcap import read_trace
from repro.signatures import dump_rules, Signature


@pytest.fixture
def demo_pcap(tmp_path):
    path = tmp_path / "demo.pcap"
    assert main(["generate", str(path), "--flows", "8", "--seed", "3"]) == 0
    return path


class TestGenerate:
    def test_writes_readable_pcap(self, demo_pcap):
        packets = list(read_trace(demo_pcap))
        assert packets

    def test_reports_packet_count(self, tmp_path, capsys):
        path = tmp_path / "g.pcap"
        assert main(["generate", str(path), "--flows", "3"]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_attack_injection(self, tmp_path, capsys):
        path = tmp_path / "attack.pcap"
        code = main(["generate", str(path), "--flows", "4", "--attack", "tcp_seg_8"])
        assert code == 0
        assert "1 attack flows" in capsys.readouterr().out

    def test_unknown_strategy_rejected(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path / "x.pcap"), "--attack", "nonsense"])
        assert code == 2
        assert "unknown strategy" in capsys.readouterr().err


class TestRun:
    def test_split_engine(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        main(["generate", str(path), "--flows", "6", "--attack", "tcp_seg_8"])
        capsys.readouterr()
        assert main(["run", str(path), "--engine", "split"]) == 0
        out = capsys.readouterr().out
        assert "diverted flows" in out
        assert "alerts:" in out

    def test_conventional_engine(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        main(["generate", str(path), "--flows", "6", "--attack", "plain"])
        capsys.readouterr()
        assert main(["run", str(path), "--engine", "conventional"]) == 0
        out = capsys.readouterr().out
        assert "peak state" in out

    def test_naive_engine(self, demo_pcap, capsys):
        assert main(["run", str(demo_pcap), "--engine", "naive"]) == 0
        assert "alerts:" in capsys.readouterr().out

    def test_custom_rules_file(self, tmp_path, capsys):
        rules_path = tmp_path / "my.rules"
        rules_path.write_text(
            dump_rules([Signature(sid=1, pattern=b"abcdefghijklmnopqrstuvwx", msg="m")])
        )
        pcap = tmp_path / "t.pcap"
        main(["generate", str(pcap), "--flows", "3"])
        capsys.readouterr()
        assert main(["run", str(pcap), "--rules", str(rules_path)]) == 0


class TestRulesCommand:
    def test_corpus_stats(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "signatures: 351" in out
        assert "small-packet threshold" in out

    def test_histogram(self, capsys):
        assert main(["rules", "--histogram"]) == 0
        assert "pattern-length histogram" in capsys.readouterr().out

    def test_piece_length_option(self, capsys):
        assert main(["rules", "--piece-length", "12"]) == 0
        assert "B: 24" in capsys.readouterr().out


class TestStrategiesCommand:
    def test_lists_catalog(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "tcp_seg_1" in out and "ip_frag_overlap" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "x.pcap", "--engine", "bogus"])
