"""End-host emulation: what the protected machine's application reads.

An evasion is only interesting if the victim actually receives the attack
bytes.  The emulator models the three behaviours Ptacek-Newsham evasions
exploit: TTL decay on the path segment behind the IPS (low-TTL chaff
never arrives), the host's IP fragment overlap policy, and the host's
TCP segment overlap policy.  It is built from the same stream substrate
the IPS uses -- deliberately, so tests compare *policies*, not engines.
"""

from __future__ import annotations

from ..packet import IP_PROTO_TCP, FlowKey, TimedPacket, decode_tcp, flow_key_of
from ..streams import IpDefragmenter, OverlapPolicy, TcpReassembler


class _RecordingReassembler(TcpReassembler):
    """A reassembler that also records the entire delivered stream."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.stream = bytearray()

    def add(self, seq, data, *, syn=False, fin=False):
        result = super().add(seq, data, syn=syn, fin=fin)
        self.stream += result.delivered
        return result


class Victim:
    """Replays a packet sequence as the end host would experience it."""

    def __init__(
        self,
        *,
        policy: OverlapPolicy = OverlapPolicy.FIRST,
        hops_behind_ips: int = 0,
    ) -> None:
        self.policy = policy
        self.hops_behind_ips = hops_behind_ips
        self._defrag = IpDefragmenter(policy=policy)
        self._streams: dict[FlowKey, _RecordingReassembler] = {}
        self.packets_dropped = 0

    def deliver(self, packet: TimedPacket) -> None:
        """Feed one packet as captured *at the IPS*."""
        ip = packet.ip
        if ip.ttl <= self.hops_behind_ips:
            # The packet expires on the path between the IPS and the host.
            self.packets_dropped += 1
            return
        result = self._defrag.add(ip, packet.timestamp)
        ip = result.packet
        if ip is None or ip.protocol != IP_PROTO_TCP:
            return
        try:
            segment = decode_tcp(ip)
        except Exception:
            return
        flow = flow_key_of(ip)
        reassembler = self._streams.get(flow)
        if reassembler is None:
            reassembler = _RecordingReassembler(policy=self.policy)
            self._streams[flow] = reassembler
        reassembler.add(segment.seq, segment.payload, syn=segment.syn, fin=segment.fin)

    def deliver_all(self, packets: list[TimedPacket]) -> None:
        for packet in packets:
            self.deliver(packet)

    def stream(self, flow: FlowKey) -> bytes:
        """The byte stream the application on ``flow`` has read so far."""
        reassembler = self._streams.get(flow)
        return bytes(reassembler.stream) if reassembler else b""

    def received(self, needle: bytes) -> bool:
        """True when any flow's application stream contains ``needle``."""
        return any(needle in reassembler.stream for reassembler in self._streams.values())

    def streams(self) -> dict[FlowKey, bytes]:
        """Every flow's application stream so far."""
        return {
            flow: bytes(reassembler.stream)
            for flow, reassembler in self._streams.items()
        }
