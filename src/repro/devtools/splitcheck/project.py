"""The project-level pass: whole-tree facts, graph, and ProjectRule.

Per-file rules end at the module boundary; the invariants that make the
split fast path sound -- one telemetry namespace, a lossless worker wire
protocol, modular sequence arithmetic everywhere -- are properties of
the *tree*.  This module aggregates every file's :class:`FileFacts` into
a :class:`ProjectGraph`, loads the documented registry table from
DESIGN.md, and runs :class:`ProjectRule` subclasses over the result.

Project findings use the same Finding/pragma/baseline machinery as file
findings: a ``# splitcheck: ignore[SD2xx]`` on the reported line works,
and fingerprints stay line-number independent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any

from .config import Config
from .engine import Rule, register as register  # re-export for rule modules
from .facts import FileFacts
from .findings import Finding, Severity
from .pragmas import PragmaIndex

__all__ = [
    "DesignRegistry",
    "ProjectContext",
    "ProjectGraph",
    "ProjectRule",
    "load_design_registry",
]

#: Registry-table row kinds recognized in DESIGN.md.
_REGISTRY_KINDS = frozenset({"counter", "gauge", "histogram", "span"})

_ROW_RE = re.compile(r"^\s*\|([^|]+)\|([^|]+)\|")
_TOKEN_RE = re.compile(r"`?([a-z0-9_:{},*]+)`?")


def _expand_braces(token: str) -> list[str]:
    """``a_{x,y}_b`` -> ``[a_x_b, a_y_b]`` (one level, like the docs use)."""
    match = re.search(r"\{([^{}]*)\}", token)
    if match is None:
        return [token]
    head, tail = token[: match.start()], token[match.end() :]
    out: list[str] = []
    for part in match.group(1).split(","):
        out.extend(_expand_braces(head + part + tail))
    return out


@dataclass
class DesignRegistry:
    """The machine-readable registry table parsed out of DESIGN.md.

    Rows look like ``| repro_engine_packets_total | counter | ... |`` for
    metrics and ``| decode:fast_route | span | ... |`` for trace spans.
    Tokens containing ``*`` are treated as prose wildcards and skipped.
    """

    path: str
    #: metric name -> (kind, lineno)
    metrics: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: (stage, event) -> lineno
    spans: dict[tuple[str, str], int] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not self.metrics and not self.spans


def load_design_registry(root: Path, doc_name: str = "DESIGN.md") -> DesignRegistry | None:
    """Parse the registry table rows from ``<root>/DESIGN.md``, if any."""
    doc = root / doc_name
    if not doc.is_file():
        return None
    registry = DesignRegistry(path=doc_name)
    for lineno, line in enumerate(doc.read_text(encoding="utf-8").splitlines(), 1):
        row = _ROW_RE.match(line)
        if row is None:
            continue
        kind = row.group(2).strip().strip("`")
        if kind not in _REGISTRY_KINDS:
            continue
        raw = row.group(1).strip()
        token_match = _TOKEN_RE.fullmatch(raw.strip("`"))
        if token_match is None:
            continue
        for token in _expand_braces(token_match.group(1)):
            if "*" in token:
                continue
            if kind == "span":
                stage, sep, event = token.partition(":")
                if sep:
                    registry.spans.setdefault((stage, event), lineno)
            else:
                registry.metrics.setdefault(token, (kind, lineno))
    return registry


class ProjectGraph:
    """Every scanned file's facts plus the documented registry."""

    def __init__(
        self,
        files: dict[str, FileFacts],
        design: DesignRegistry | None = None,
    ) -> None:
        self.files = files
        self.design = design

    def facts_matching(
        self,
        patterns: tuple[str, ...],
        exclude: tuple[str, ...] = (),
        root: Path | None = None,
    ) -> list[FileFacts]:
        """Facts of files whose path (relative, or absolute under
        ``root``) matches any include glob and no exclude glob."""

        def matches(rel: str, globs: tuple[str, ...]) -> bool:
            abs_posix = (root / rel).as_posix() if root is not None else rel
            return any(
                fnmatch(rel, pattern) or fnmatch(abs_posix, pattern)
                for pattern in globs
            )

        return [
            facts
            for rel, facts in sorted(self.files.items())
            if matches(rel, patterns) and not matches(rel, exclude)
        ]

    def to_json(self) -> dict[str, Any]:
        """The --graph dump: modules, imports, symbols, edges, taints."""
        modules: dict[str, Any] = {}
        for rel, facts in sorted(self.files.items()):
            modules[rel] = {
                "module": facts.module,
                "imports": facts.imports,
                "functions": facts.functions,
                "classes": facts.classes,
                "calls": facts.calls,
                "metrics": facts.metrics,
                "spans": facts.spans,
                "wire_puts": facts.wire_puts,
                "wire_handles": facts.wire_handles,
                "seq_taints": facts.seq_taints,
                "resources": facts.resources,
            }
        design: dict[str, Any] | None = None
        if self.design is not None:
            design = {
                "path": self.design.path,
                "metrics": {
                    name: {"kind": kind, "line": line}
                    for name, (kind, line) in sorted(self.design.metrics.items())
                },
                "spans": [
                    {"stage": stage, "event": event, "line": line}
                    for (stage, event), line in sorted(self.design.spans.items())
                ],
            }
        return {"files": modules, "design": design}


@dataclass
class ProjectContext:
    """What one project rule invocation may look at and report through."""

    graph: ProjectGraph
    config: Config
    #: rel_path -> (source lines, pragma index) for every scanned file.
    sources: dict[str, tuple[list[str], PragmaIndex]]
    severity_override: Severity | None = None
    findings: list[Finding] = field(default_factory=list)
    #: effective scope globs for the running rule (config override wins).
    scope: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()
    #: True when the scan roots cover the whole canonical tree; rules
    #: gate reverse (doc -> code) checks on this so partial scans don't
    #: report everything outside the scan set as missing.
    complete: bool = True

    def facts(self) -> list[FileFacts]:
        return self.graph.facts_matching(
            self.scope, self.exclude, root=self.config.root
        )

    def source_line(self, rel_path: str, lineno: int) -> str:
        entry = self.sources.get(rel_path)
        if entry is not None and 1 <= lineno <= len(entry[0]):
            return entry[0][lineno - 1].strip()
        if rel_path == getattr(self.graph.design, "path", None):
            doc = self.config.root / rel_path
            if doc.is_file():
                lines = doc.read_text(encoding="utf-8").splitlines()
                if 1 <= lineno <= len(lines):
                    return lines[lineno - 1].strip()
        return ""

    def report(
        self,
        rule: "ProjectRule",
        rel_path: str,
        lineno: int,
        col: int,
        message: str,
    ) -> None:
        entry = self.sources.get(rel_path)
        if entry is not None and entry[1].ignores(lineno, rule.id):
            return
        severity = self.severity_override or rule.severity
        self.findings.append(
            Finding(
                rule=rule.id,
                path=rel_path,
                line=lineno,
                col=col + 1,
                message=message,
                severity=severity,
                source=self.source_line(rel_path, lineno),
            )
        )


class ProjectRule(Rule):
    """A rule over the whole graph rather than one file.

    ``default_paths`` keeps its meaning -- it selects which files' facts
    the rule consumes (``ctx.facts()``) -- but the rule runs once per
    scan, after every file's facts exist.
    """

    project = True

    def check(self, ctx: Any) -> None:  # pragma: no cover - not used
        raise NotImplementedError("project rules implement check_project")

    def check_project(self, ctx: ProjectContext) -> None:
        raise NotImplementedError
