"""SD106: worker exception handlers must report before exiting.

Invariant (PR 5): the supervisor's failure taxonomy depends on workers
being loud.  A worker that catches an exception and exits *without*
putting a status message on the results queue is indistinguishable from
a hard crash -- the parent can only infer death from process exit or
heartbeat silence, losing the traceback and misclassifying an engine
error as a crash.  So in the worker modules, every ``except`` handler
that exits the worker (``return``, ``sys.exit``, ``os._exit``) must
contain a queue ``put``/``put_nowait`` first.

Scoped structurally, not by name: the rule applies inside functions that
take an ``out_queue`` parameter -- the worker wire-protocol functions --
so engine-side handlers (e.g. the quarantine's catch-and-return in
``ShardProcessor.feed``) are exempt.  Injected crashes (``os._exit`` in
``runtime/faults.py``) are outside the scoped paths by design: they
simulate exactly the silent death this rule forbids our own code to
produce.
"""

from __future__ import annotations

import ast

from ..astutil import dotted_name
from ..engine import FileContext, Rule, register

__all__ = ["WorkerStatusRule"]

EXIT_CALLS = frozenset({"sys.exit", "os._exit"})
PUT_METHODS = frozenset({"put", "put_nowait"})


def _protocol_functions(tree: ast.Module) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Functions speaking the worker wire protocol (take ``out_queue``)."""
    found = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names = [arg.arg for arg in node.args.args + node.args.kwonlyargs]
            if "out_queue" in names:
                found.append(node)
    return found


def _exits_worker(handler: ast.ExceptHandler) -> bool:
    """Does this handler body leave the worker (return or exit call)?"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Return):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in EXIT_CALLS:
                return True
    return False


def _puts_status(handler: ast.ExceptHandler) -> bool:
    """Does this handler put anything on a queue before leaving?"""
    for node in ast.walk(handler):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in PUT_METHODS
        ):
            return True
        if isinstance(node, ast.Raise):
            # Re-raising hands the exception to an enclosing handler,
            # which this rule holds to the same contract.
            return True
    return False


@register
class WorkerStatusRule(Rule):
    id = "SD106"
    title = "worker exception handler exits without a status message"
    default_paths = ("*/repro/runtime/worker*.py",)

    def check(self, ctx: FileContext) -> None:
        for function in _protocol_functions(ctx.tree):
            for node in ast.walk(function):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if _exits_worker(node) and not _puts_status(node):
                    ctx.report(
                        self,
                        node,
                        "except handler in worker-protocol function "
                        f"{function.name!r} exits without an out_queue.put() "
                        "status message; a silent exit is indistinguishable "
                        "from a crash and loses the traceback -- report "
                        '("error", shard, generation, detail) first',
                    )
