"""IP datagram defragmentation with overlap policies and timeout eviction.

Mirrors the TCP reassembler one layer down: fragments of one datagram are
keyed by (src, dst, protocol, id), overlaps are resolved per policy and
flagged, and the reassembled packet is emitted once the byte range is
complete.  Incomplete datagrams are evicted after ``timeout`` seconds,
modelling the reassembly timer of RFC 791.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..packet import IPv4Packet
from .events import StreamEvent, StreamEventRecord
from .policies import OverlapPolicy, resolve_overlap

DEFAULT_FRAGMENT_TIMEOUT = 30.0
DEFAULT_MAX_DATAGRAM = 65535


@dataclass
class DefragResult:
    """Outcome of feeding one fragment to the defragmenter."""

    packet: IPv4Packet | None = None
    """The reassembled datagram, once complete."""

    events: list[StreamEventRecord] = field(default_factory=list)


@dataclass
class _PartialDatagram:
    """Reassembly state for one in-flight fragmented datagram."""

    first_fragment: IPv4Packet
    arrival: float
    pieces: list[tuple[int, bytearray]] = field(default_factory=list)  # sorted, disjoint
    total_length: int | None = None  # set once the final fragment arrives

    @property
    def buffered_bytes(self) -> int:
        return sum(len(p) for _, p in self.pieces)


class IpDefragmenter:
    """Defragments IPv4 datagrams across many concurrent flows.

    Parameters
    ----------
    policy:
        Overlap resolution policy (fragment overlap behaviour also varies
        by OS, exactly like TCP segment overlap).
    timeout:
        Seconds an incomplete datagram may wait before eviction.
    tiny_threshold:
        When positive, a non-final fragment carrying fewer payload bytes
        raises ``TINY_FRAGMENT``.
    """

    def __init__(
        self,
        *,
        policy: OverlapPolicy = OverlapPolicy.BSD,
        timeout: float = DEFAULT_FRAGMENT_TIMEOUT,
        tiny_threshold: int = 0,
    ) -> None:
        self.policy = policy
        self.timeout = timeout
        self.tiny_threshold = tiny_threshold
        self._partials: dict[tuple, _PartialDatagram] = {}
        self.evicted_total = 0
        self.reassembled_total = 0

    # -- accounting ------------------------------------------------------

    @property
    def pending_datagrams(self) -> int:
        return len(self._partials)

    @property
    def buffered_bytes(self) -> int:
        return sum(p.buffered_bytes for p in self._partials.values())

    # -- fragment intake ---------------------------------------------------

    def add(self, packet: IPv4Packet, timestamp: float = 0.0) -> DefragResult:
        """Feed one packet; passes non-fragments through untouched."""
        result = DefragResult()
        self.expire(timestamp)
        if not packet.is_fragment:
            result.packet = packet
            return result
        if (
            self.tiny_threshold
            and packet.more_fragments
            and len(packet.payload) < self.tiny_threshold
        ):
            result.events.append(
                StreamEventRecord(
                    StreamEvent.TINY_FRAGMENT,
                    packet.fragment_offset,
                    len(packet.payload),
                )
            )
        key = packet.fragment_key
        partial = self._partials.get(key)
        if partial is None:
            partial = _PartialDatagram(first_fragment=packet, arrival=timestamp)
            self._partials[key] = partial
        if packet.fragment_offset == 0:
            partial.first_fragment = packet
        offset = packet.fragment_offset
        end = offset + len(packet.payload)
        if end > DEFAULT_MAX_DATAGRAM:
            # The classic ping-of-death shape: offset + length overflows.
            result.events.append(
                StreamEventRecord(
                    StreamEvent.OUT_OF_WINDOW, offset, len(packet.payload),
                    detail="fragment exceeds 64KiB datagram",
                )
            )
            return result
        if not packet.more_fragments:
            if partial.total_length is not None and partial.total_length != end:
                result.events.append(
                    StreamEventRecord(
                        StreamEvent.INCONSISTENT_FRAGMENT_OVERLAP, end,
                        detail="final fragment moved",
                    )
                )
            partial.total_length = end
        self._merge(partial, offset, bytearray(packet.payload), result)
        if self._complete(partial):
            result.packet = self._finish(key, partial)
            self.reassembled_total += 1
        return result

    def expire(self, now: float) -> int:
        """Evict datagrams older than the timeout; returns how many."""
        stale = [
            key
            for key, partial in self._partials.items()
            if now - partial.arrival > self.timeout
        ]
        for key in stale:
            del self._partials[key]
        self.evicted_total += len(stale)
        return len(stale)

    # -- internals --------------------------------------------------------

    def _merge(
        self,
        partial: _PartialDatagram,
        offset: int,
        data: bytearray,
        result: DefragResult,
    ) -> None:
        end = offset + len(data)
        retained: list[tuple[int, bytearray]] = []
        for old_start, old_data in partial.pieces:
            old_end = old_start + len(old_data)
            ov_start, ov_end = max(old_start, offset), min(old_end, end)
            if ov_start >= ov_end:
                retained.append((old_start, old_data))
                continue
            old_bytes = old_data[ov_start - old_start : ov_end - old_start]
            new_bytes = data[ov_start - offset : ov_end - offset]
            consistent = bytes(old_bytes) == bytes(new_bytes)
            result.events.append(
                StreamEventRecord(
                    StreamEvent.FRAGMENT_OVERLAP
                    if consistent
                    else StreamEvent.INCONSISTENT_FRAGMENT_OVERLAP,
                    ov_start,
                    ov_end - ov_start,
                    detail=f"policy={self.policy.value}",
                )
            )
            if resolve_overlap(self.policy, old_start, old_end, offset, end):
                # New bytes win the contested region; old keeps only its tails.
                if old_start < offset:
                    retained.append((old_start, old_data[: offset - old_start]))
                if old_end > end:
                    retained.append((end, old_data[end - old_start :]))
            else:
                # Old bytes win; trim the new data over the contested region.
                data[ov_start - offset : ov_end - offset] = old_bytes
                retained.append((old_start, old_data))
        # Drop retained pieces fully covered by the (now policy-resolved) new data.
        pieces = [
            (s, d) for s, d in retained if not (offset <= s and s + len(d) <= end)
        ]
        pieces.append((offset, data))
        pieces.sort(key=lambda item: item[0])
        # Coalesce adjacent/overlapping pieces (overlap content already resolved).
        merged: list[tuple[int, bytearray]] = []
        for start, chunk in pieces:
            if merged and start <= merged[-1][0] + len(merged[-1][1]):
                prev_start, prev_chunk = merged[-1]
                keep = start + len(chunk) - (prev_start + len(prev_chunk))
                if keep > 0:
                    prev_chunk += chunk[len(chunk) - keep :]
            else:
                merged.append((start, chunk))
        partial.pieces = merged

    @staticmethod
    def _complete(partial: _PartialDatagram) -> bool:
        if partial.total_length is None:
            return False
        if len(partial.pieces) != 1:
            return False
        start, data = partial.pieces[0]
        return start == 0 and len(data) >= partial.total_length

    def _finish(self, key: tuple, partial: _PartialDatagram) -> IPv4Packet:
        del self._partials[key]
        assert partial.total_length is not None
        payload = bytes(partial.pieces[0][1][: partial.total_length])
        return partial.first_fragment.copy(
            payload=payload,
            fragment_offset=0,
            more_fragments=False,
        )
