"""Segment plans: the intermediate representation of a crafted TCP flow.

An attack strategy is a function from an application payload to a list of
:class:`Seg` -- segments with explicit stream offsets, possibly
overlapping, duplicated, reordered, or carrying garbage at a TTL the
victim will never see.  ``plan_to_packets`` lowers a plan to real wire
packets (SYN, data, FIN) that any of the IPS implementations and the
victim emulator can consume.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_SYN,
    TcpSegment,
    TimedPacket,
    build_tcp_packet,
    seq_add,
)


@dataclass(frozen=True)
class Seg:
    """One planned TCP data segment in stream coordinates."""

    offset: int
    """Stream offset of the first payload byte (0 = first byte after SYN)."""

    data: bytes
    fin: bool = False
    ttl: int | None = None
    """Override the flow TTL (low values model IPS-visible, victim-invisible
    chaff -- the classic insertion attack)."""


def even_segments(payload: bytes, size: int, *, fin: bool = True) -> list[Seg]:
    """The benign plan: in-order segments of ``size`` bytes each."""
    if size <= 0:
        raise ValueError("segment size must be positive")
    segs = [
        Seg(offset=i, data=payload[i : i + size])
        for i in range(0, len(payload), size)
    ]
    if fin and segs:
        segs[-1] = replace(segs[-1], fin=True)
    elif fin:
        segs = [Seg(offset=0, data=b"", fin=True)]
    return segs


def plan_coverage(segs: list[Seg]) -> int:
    """Highest stream offset any segment reaches."""
    return max((seg.offset + len(seg.data) for seg in segs), default=0)


def plan_to_packets(
    segs: list[Seg],
    *,
    src: str = "10.9.9.9",
    dst: str = "10.0.0.2",
    src_port: int = 44000,
    dst_port: int = 80,
    isn: int = 1_000_000,
    ttl: int = 64,
    start_time: float = 1.0,
    gap: float = 0.001,
    include_syn: bool = True,
) -> list[TimedPacket]:
    """Lower a segment plan to timed wire packets.

    Stream offset 0 corresponds to sequence number ``isn + 1`` (the SYN
    consumes ``isn``), matching real TCP numbering.
    """
    packets: list[TimedPacket] = []
    clock = start_time
    ident = 1
    if include_syn:
        syn = TcpSegment(
            src_port=src_port, dst_port=dst_port, seq=isn, flags=TCP_SYN
        )
        packets.append(
            TimedPacket(clock, build_tcp_packet(src, dst, syn, ttl=ttl, identification=ident))
        )
        clock += gap
        ident += 1
    for seg in segs:
        flags = TCP_ACK | (TCP_FIN if seg.fin else 0)
        tcp = TcpSegment(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq_add(isn + 1, seg.offset),
            flags=flags,
            payload=seg.data,
        )
        packets.append(
            TimedPacket(
                clock,
                build_tcp_packet(
                    src,
                    dst,
                    tcp,
                    ttl=seg.ttl if seg.ttl is not None else ttl,
                    identification=ident,
                    dont_fragment=False,
                ),
            )
        )
        clock += gap
        ident += 1
    return packets
