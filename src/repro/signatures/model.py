"""Signature and split-signature data model.

A :class:`Signature` is the paper's object of study in its simplest form:
an exact byte string, optionally constrained to a destination port.  A
:class:`SplitSignature` is the paper's central construct -- the same
signature cut into ``k >= 3`` contiguous pieces, each at least ``p`` bytes
long, together with the small-packet threshold ``B = 2p`` under which the
detection theorem holds (see ``repro.theory``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


_PROTOCOL_NUMBERS = {"tcp": 6, "udp": 17}


@dataclass(frozen=True)
class Signature:
    """One exact-string signature, à la a Snort ``content:`` rule."""

    sid: int
    pattern: bytes
    msg: str = ""
    dst_port: int | None = None
    """Restrict matching to flows towards this destination port (None = any)."""

    protocol: str = "tcp"
    """Transport the rule applies to: "tcp" or "udp"."""

    nocase: bool = False
    """Match the content case-insensitively (Snort ``nocase``)."""

    extra_contents: tuple[bytes, ...] = ()
    """Additional content strings that must *all* also appear in the same
    stream (TCP) or datagram (UDP) for the rule to fire.  ``pattern`` is
    the longest content and the one the splitter operates on."""

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError(f"signature {self.sid} has an empty pattern")
        if any(not c for c in self.extra_contents):
            raise ValueError(f"signature {self.sid} has an empty extra content")
        if any(len(c) > len(self.pattern) for c in self.extra_contents):
            raise ValueError(
                f"signature {self.sid}: pattern must be the longest content"
            )
        if self.dst_port is not None and not 0 <= self.dst_port <= 0xFFFF:
            raise ValueError(f"signature {self.sid} has invalid port {self.dst_port}")
        if self.protocol not in _PROTOCOL_NUMBERS:
            raise ValueError(f"signature {self.sid} has unknown protocol {self.protocol!r}")

    def fold(self, data: bytes) -> bytes:
        """Case-fold ``data`` when this signature is ``nocase``."""
        return data.lower() if self.nocase else data

    @property
    def match_pattern(self) -> bytes:
        """The primary pattern as the matching engines should index it."""
        return self.fold(self.pattern)

    @property
    def match_extras(self) -> tuple[bytes, ...]:
        """Extra contents as the matching engines should index them."""
        return tuple(self.fold(c) for c in self.extra_contents)

    def __len__(self) -> int:
        return len(self.pattern)

    @property
    def protocol_number(self) -> int:
        """The IP protocol number this rule applies to (6 or 17)."""
        return _PROTOCOL_NUMBERS[self.protocol]

    def applies_to_port(self, port: int) -> bool:
        """True when this signature should be evaluated for ``port``."""
        return self.dst_port is None or self.dst_port == port

    def applies_to_flow(self, flow) -> bool:
        """Port and protocol check against a :class:`~repro.packet.FlowKey`."""
        return flow.protocol == self.protocol_number and self.applies_to_port(
            flow.dst_port
        )


@dataclass(frozen=True)
class Piece:
    """One contiguous slice of a split signature."""

    signature: Signature
    index: int
    offset: int
    """Byte offset of this piece within the signature pattern."""

    data: bytes

    def __post_init__(self) -> None:
        expected = self.signature.pattern[self.offset : self.offset + len(self.data)]
        if expected != self.data:
            raise ValueError(
                f"piece {self.index} of sid {self.signature.sid} does not "
                f"match its claimed offset {self.offset}"
            )


@dataclass(frozen=True)
class SplitSignature:
    """A signature split for fast-path detection.

    Invariants (enforced at construction, proven sufficient in
    ``repro.theory``): pieces are contiguous, non-overlapping, cover the
    pattern from ``start_offset`` to its end, each has at least
    ``piece_length`` bytes, and there are at least three of them.
    ``small_packet_threshold`` is ``2 * piece_length``: the fast path
    diverts flows carrying smaller non-final data packets, which is
    exactly what makes the pigeonhole argument go through.

    ``start_offset`` may be positive (rarity-aware splitting skips a
    benign-looking pattern prefix); the theorem's counting argument only
    uses the covered span, so soundness is unaffected.
    """

    signature: Signature
    pieces: tuple[Piece, ...]
    piece_length: int

    def __post_init__(self) -> None:
        if len(self.pieces) < 3:
            raise ValueError(
                f"sid {self.signature.sid}: split produced {len(self.pieces)} "
                "pieces; the detection theorem requires at least 3"
            )
        cursor = self.pieces[0].offset
        for piece in self.pieces:
            if piece.offset != cursor:
                raise ValueError(
                    f"sid {self.signature.sid}: pieces are not contiguous "
                    f"(gap at offset {cursor})"
                )
            if len(piece.data) < self.piece_length:
                raise ValueError(
                    f"sid {self.signature.sid}: piece {piece.index} is "
                    f"{len(piece.data)} bytes, below p={self.piece_length}"
                )
            cursor += len(piece.data)
        if cursor > len(self.signature.pattern):
            raise ValueError(f"sid {self.signature.sid}: pieces overrun the pattern")

    @property
    def small_packet_threshold(self) -> int:
        """Minimum non-final packet payload the fast path accepts (B = 2p)."""
        return 2 * self.piece_length

    @property
    def k(self) -> int:
        """Number of pieces."""
        return len(self.pieces)

    @property
    def start_offset(self) -> int:
        """Pattern offset where piece coverage begins (0 unless the
        splitter skipped a common prefix)."""
        return self.pieces[0].offset


@dataclass
class RuleSet:
    """A collection of signatures plus their splits, keyed by sid."""

    signatures: list[Signature] = field(default_factory=list)

    def __iter__(self):
        return iter(self.signatures)

    def __len__(self) -> int:
        return len(self.signatures)

    def by_sid(self, sid: int) -> Signature:
        for signature in self.signatures:
            if signature.sid == sid:
                return signature
        raise KeyError(f"no signature with sid {sid}")

    def add(self, signature: Signature) -> None:
        self.signatures.append(signature)

    def length_histogram(self) -> dict[int, int]:
        """Pattern-length distribution (Table 1 raw material)."""
        hist: dict[int, int] = {}
        for signature in self.signatures:
            hist[len(signature)] = hist.get(len(signature), 0) + 1
        return dict(sorted(hist.items()))
