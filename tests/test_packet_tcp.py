"""Unit and property tests for the TCP segment model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_SYN,
    MalformedPacketError,
    TcpSegment,
    TruncatedPacketError,
    flags_to_str,
    internet_checksum,
    ip_to_bytes,
    mss_option_bytes,
    pseudo_header,
    seq_add,
    seq_diff,
)


def make_segment(**kw):
    defaults = dict(src_port=12345, dst_port=80, seq=1000, ack=2000, payload=b"GET /")
    defaults.update(kw)
    return TcpSegment(**defaults)


class TestSequenceArithmetic:
    def test_add_wraps(self):
        assert seq_add(2**32 - 1, 2) == 1

    def test_diff_simple(self):
        assert seq_diff(105, 100) == 5
        assert seq_diff(100, 105) == -5

    def test_diff_across_wrap(self):
        assert seq_diff(5, 2**32 - 5) == 10
        assert seq_diff(2**32 - 5, 5) == -10

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=-1000, max_value=1000))
    def test_diff_inverts_add(self, seq, delta):
        assert seq_diff(seq_add(seq, delta), seq) == delta


class TestFlags:
    def test_flags_to_str(self):
        assert flags_to_str(TCP_SYN | TCP_ACK) == "SA"
        assert flags_to_str(0) == "."

    def test_flag_properties(self):
        seg = make_segment(flags=TCP_SYN | TCP_FIN | TCP_ACK)
        assert seg.syn and seg.fin and seg.ack_set and not seg.rst

    def test_seq_len_counts_syn_fin(self):
        assert make_segment(flags=TCP_SYN, payload=b"").seq_len == 1
        assert make_segment(flags=TCP_FIN | TCP_ACK, payload=b"ab").seq_len == 3
        assert make_segment(payload=b"abc").seq_len == 3

    def test_end_seq(self):
        seg = make_segment(seq=2**32 - 1, payload=b"ab")
        assert seg.end_seq == 1


class TestSerializeParse:
    def test_round_trip(self):
        seg = make_segment(window=4096, urgent=7, flags=TCP_ACK | TCP_FIN)
        assert TcpSegment.parse(seg.serialize()) == seg

    def test_round_trip_with_checksum(self):
        seg = make_segment()
        raw = seg.serialize("10.0.0.1", "10.0.0.2")
        parsed = TcpSegment.parse(raw, src_ip="10.0.0.1", dst_ip="10.0.0.2", strict=True)
        assert parsed == seg

    def test_checksum_verifies_against_pseudo_header(self):
        raw = make_segment().serialize("10.0.0.1", "10.0.0.2")
        ph = pseudo_header(ip_to_bytes("10.0.0.1"), ip_to_bytes("10.0.0.2"), 6, len(raw))
        assert internet_checksum(ph + raw) == 0

    def test_strict_parse_rejects_corruption(self):
        raw = bytearray(make_segment().serialize("10.0.0.1", "10.0.0.2"))
        raw[-1] ^= 0xFF
        from repro.packet import ChecksumError

        with pytest.raises(ChecksumError):
            TcpSegment.parse(bytes(raw), src_ip="10.0.0.1", dst_ip="10.0.0.2", strict=True)

    def test_truncated_raises(self):
        with pytest.raises(TruncatedPacketError):
            TcpSegment.parse(b"\x00" * 10)

    def test_bad_data_offset_raises(self):
        raw = bytearray(make_segment().serialize())
        raw[12] = 2 << 4  # offset 8 bytes < 20
        with pytest.raises(MalformedPacketError):
            TcpSegment.parse(bytes(raw))

    def test_seq_normalized_mod_2_32(self):
        assert TcpSegment(src_port=1, dst_port=2, seq=2**32 + 5).seq == 5


class TestOptions:
    def test_mss_round_trip(self):
        seg = make_segment(options=mss_option_bytes(1460), flags=TCP_SYN)
        parsed = TcpSegment.parse(seg.serialize())
        assert parsed.mss_option() == 1460

    def test_no_mss_returns_none(self):
        assert make_segment().mss_option() is None

    def test_nop_padding_is_skipped(self):
        seg = make_segment(options=b"\x01\x01" + mss_option_bytes(536) + b"\x01\x01")
        assert seg.mss_option() == 536

    def test_eol_terminates(self):
        seg = make_segment(options=b"\x00\x00\x00\x00")
        assert seg.parsed_options() == []

    def test_malformed_length_raises(self):
        seg = make_segment(options=b"\x02\x01\x00\x00")  # MSS with length 1
        with pytest.raises(MalformedPacketError):
            seg.parsed_options()

    def test_truncated_option_raises(self):
        seg = make_segment(options=b"\x01\x01\x01\x02")  # length byte missing
        with pytest.raises(MalformedPacketError):
            seg.parsed_options()

    def test_unpadded_options_rejected_at_construction(self):
        with pytest.raises(MalformedPacketError):
            make_segment(options=b"\x01\x01\x01")


class TestValidation:
    def test_port_range(self):
        with pytest.raises(MalformedPacketError):
            make_segment(src_port=70000)

    def test_window_range(self):
        with pytest.raises(MalformedPacketError):
            make_segment(window=-1)


@given(
    src_port=st.integers(min_value=0, max_value=0xFFFF),
    dst_port=st.integers(min_value=0, max_value=0xFFFF),
    seq=st.integers(min_value=0, max_value=2**32 - 1),
    ack=st.integers(min_value=0, max_value=2**32 - 1),
    flags=st.integers(min_value=0, max_value=0x3F),
    window=st.integers(min_value=0, max_value=0xFFFF),
    payload=st.binary(max_size=1460),
)
def test_serialize_parse_round_trip(src_port, dst_port, seq, ack, flags, window, payload):
    seg = TcpSegment(
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=flags,
        window=window,
        payload=payload,
    )
    assert TcpSegment.parse(seg.serialize()) == seg


@given(payload=st.binary(max_size=512))
def test_checksummed_serialization_always_verifies(payload):
    seg = make_segment(payload=payload)
    raw = seg.serialize("172.16.0.1", "172.16.0.2")
    ph = pseudo_header(ip_to_bytes("172.16.0.1"), ip_to_bytes("172.16.0.2"), 6, len(raw))
    assert internet_checksum(ph + raw) == 0
