"""The service subsystem: sources, tenancy, shedding, reload, drain.

The load-bearing promises under test:

- **equivalence**: replaying a trace through ``serve`` (shedding off /
  below overload) alerts identically to the batch runners;
- **hot reload**: a mid-stream rule swap produces the union of the old
  rules' alerts (before) and the new rules' alerts (after), loses zero
  flow state, and never drops an in-flight diverted flow;
- **shedding invariants**: a diverted or force-traced flow is never
  shed at any level, and the loss accounting identity
  ``examined + shed + quarantined + lost == input`` closes;
- **drain**: a stop request mid-stream drains into a partial report
  whose accounting still closes.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.packet import TcpSegment, TimedPacket, build_tcp_packet, flow_key_of
from repro.runtime import (
    ControlMessage,
    EngineSpec,
    ParallelRunner,
    RunnerConfig,
    SerialRunner,
)
from repro.evasion import build_attack
from repro.pcap import read_records, write_trace
from repro.service import (
    DEFAULT_TENANT,
    FRAME_MAGIC,
    LoadShedder,
    PcapTailSource,
    ReplaySource,
    ServiceConfig,
    ShedPolicy,
    SocketSource,
    SplitDetectService,
    TenantSpec,
    TenantTable,
    encode_record,
    open_source,
    send_records,
)
from repro.service.shedding import _SHED_SCALE, _shed_slot
from repro.signatures import RuleSet, Signature, SplitPolicy
from repro.telemetry import trace_id_of
from repro.telemetry.serve import TelemetryPublisher, TelemetryServer, TelemetrySession
from repro.traffic import TrafficProfile, generate_trace

from helpers import ATTACK_SIGNATURE, SIGNATURE_OFFSET, attack_payload, attack_ruleset

# A second signature that only exists in the post-reload rule set.
SECOND_SIGNATURE = b"SECOND-WAVE/exploit\xde\xad\xbe\xef:trigger"
SECOND_SID = 6001


def second_ruleset() -> RuleSet:
    """The post-reload set: everything the seed set has, plus one more."""
    return attack_ruleset(
        extra=[
            Signature(
                sid=SECOND_SID,
                pattern=SECOND_SIGNATURE,
                msg="second wave",
                dst_port=80,
            )
        ]
    )


def second_payload(total: int = 2000, offset: int = 100) -> bytes:
    body = bytearray(b"\x20" * total)
    body[offset : offset + len(SECOND_SIGNATURE)] = SECOND_SIGNATURE
    return bytes(body)


def make_spec(rules: RuleSet | None = None) -> EngineSpec:
    return EngineSpec(
        rules=rules or attack_ruleset(),
        split_policy=SplitPolicy(piece_length=8),
    )


def first_wave() -> list[TimedPacket]:
    """A fragmented catalog attack carrying the seed signature (diverts)."""
    return build_attack(
        "ip_frag_8",
        attack_payload(),
        signature_span=(SIGNATURE_OFFSET, len(ATTACK_SIGNATURE)),
        src="10.66.0.1",
        dst_port=80,
        seed=1,
    )


def second_wave() -> list[TimedPacket]:
    """A segmented attack only the post-reload rule set can see."""
    return build_attack(
        "tcp_seg_8",
        second_payload(),
        signature_span=(100, len(SECOND_SIGNATURE)),
        src="10.66.0.2",
        dst_port=80,
        seed=2,
    )


def records_of(trace: list[TimedPacket]) -> list[tuple[float, bytes]]:
    return [(packet.timestamp, packet.ip.serialize()) for packet in trace]


def alert_sids(alerts) -> set[int]:
    return {alert.sid for alert in alerts if alert.sid is not None}


def run_service(
    source,
    *,
    rules: RuleSet | None = None,
    tenants: list[TenantSpec] | None = None,
    keyer: str = "dst-ip",
    runner_config: RunnerConfig | None = None,
    service_config: ServiceConfig | None = None,
    reload_loader=None,
) -> tuple[SplitDetectService, "ServiceReportType"]:
    table = TenantTable(
        make_spec(rules),
        tenants or [],
        keyer=keyer,
        config=runner_config or RunnerConfig(batch_size=32),
    )
    service = SplitDetectService(
        source,
        table,
        config=service_config or ServiceConfig(batch_size=32, poll_timeout=0.05),
        reload_loader=reload_loader,
    )
    return service, service.run()


ServiceReportType = object  # narrative alias for the helper's return


class HookedSource:
    """A ReplaySource that fires a callback at a chosen poll number.

    The deterministic way to land a stop or reload request at an exact
    stream position: poll *k* triggers the hook before returning its
    records, so the service observes the request at that batch boundary.
    """

    def __init__(self, records, *, at_poll: int, hook) -> None:
        self._inner = ReplaySource(records, label="hooked")
        self.at_poll = at_poll
        self.hook = hook
        self.polls = 0

    @property
    def exhausted(self) -> bool:
        return self._inner.exhausted

    def poll(self, max_records: int, timeout: float):
        self.polls += 1
        if self.polls == self.at_poll and self.hook is not None:
            self.hook()
        return self._inner.poll(max_records, timeout)

    def state(self):
        return self._inner.state()

    def close(self) -> None:
        self._inner.close()


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------


class TestReplaySource:
    def test_polls_in_batches_then_exhausts(self):
        records = records_of(first_wave())
        source = ReplaySource(iter(records))
        out: list[tuple[float, bytes]] = []
        while not source.exhausted:
            out.extend(source.poll(3, timeout=0.0))
        assert out == records
        assert source.state()["records"] == len(records)
        assert source.state()["backlog_fraction"] == 0.0

    def test_close_exhausts(self):
        source = ReplaySource(iter(records_of(first_wave())))
        source.close()
        assert source.exhausted


class TestPcapTailSource:
    def test_follows_a_growing_file(self, tmp_path):
        trace = first_wave()
        full = tmp_path / "full.pcap"
        write_trace(full, trace)
        data = full.read_bytes()
        # Savefile timestamps are quantized to microseconds; compare
        # against the round-tripped records, not the in-memory trace.
        expected = list(read_records(full))
        # Cut mid-way through the *second* record's body: the tail must
        # yield the first record and hold the truncated one back.
        first_len = len(trace[0].ip.serialize())
        cut = 24 + 16 + first_len + 16 + 4
        tailed = tmp_path / "live.pcap"
        tailed.write_bytes(data[:cut])

        source = PcapTailSource(tailed, poll_interval=0.01)
        try:
            got = source.poll(100, timeout=0.2)
            assert len(got) == 1
            assert got[0] == expected[0]
            # Nothing more until the capture tool finishes the record.
            assert source.poll(100, timeout=0.05) == []
            with tailed.open("ab") as handle:
                handle.write(data[cut:])
            rest: list[tuple[float, bytes]] = []
            deadline = time.monotonic() + 2.0
            while len(rest) < len(expected) - 1 and time.monotonic() < deadline:
                rest.extend(source.poll(100, timeout=0.1))
            assert rest == expected[1:]
            assert not source.exhausted  # tails never finish on their own
        finally:
            source.close()
        assert source.exhausted

    def test_waits_for_file_to_exist(self, tmp_path):
        source = PcapTailSource(tmp_path / "not-yet.pcap", poll_interval=0.01)
        try:
            assert source.poll(10, timeout=0.05) == []
            assert source.state()["header_seen"] is False
        finally:
            source.close()


class TestSocketSource:
    def drain(self, source: SocketSource, expect: int, timeout: float = 3.0):
        records: list[tuple[float, bytes]] = []
        deadline = time.monotonic() + timeout
        while len(records) < expect and time.monotonic() < deadline:
            records.extend(source.poll(64, timeout=0.05))
        return records

    def wait_state(self, source: SocketSource, predicate, timeout: float = 3.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            state = source.state()
            if predicate(state):
                return state
            time.sleep(0.01)
        return source.state()

    def test_framed_records_round_trip(self):
        records = records_of(first_wave())
        source = SocketSource(("127.0.0.1", 0), capacity=1024)
        try:
            with socket.create_connection(source.address) as producer:
                sent = send_records(producer, records)
            got = self.drain(source, sent)
            # Thread hand-off preserves per-connection order.
            assert got == records
            state = source.state()
            assert state["records_in"] == sent
            assert state["protocol_errors"] == 0
            assert state["overflow_dropped"] == 0
        finally:
            source.close()

    def test_overflow_is_counted_not_silent(self):
        records = records_of(first_wave() + second_wave())
        assert len(records) > 8
        source = SocketSource(("127.0.0.1", 0), capacity=4)
        try:
            with socket.create_connection(source.address) as producer:
                sent = send_records(producer, records)
            state = self.wait_state(
                source,
                lambda s: s["records_in"] == sent,
            )
            assert state["overflow_dropped"] > 0
            got = self.drain(source, sent - state["overflow_dropped"])
            final = source.state()
            # Every record offered is either delivered or counted lost.
            assert final["records_out"] + final["overflow_dropped"] == sent
        finally:
            source.close()

    def test_bad_magic_closes_only_that_connection(self):
        records = records_of(first_wave())
        source = SocketSource(("127.0.0.1", 0), capacity=1024)
        try:
            with socket.create_connection(source.address) as bad:
                bad.sendall(b"XXXX" + b"garbage")
            self.wait_state(source, lambda s: s["protocol_errors"] == 1)
            with socket.create_connection(source.address) as good:
                sent = send_records(good, records)
            assert self.drain(source, sent) == records
            state = source.state()
            assert state["protocol_errors"] == 1
            assert state["records_in"] == sent
        finally:
            source.close()

    def test_oversized_frame_is_protocol_corruption(self):
        source = SocketSource(("127.0.0.1", 0), capacity=16, max_frame=64)
        try:
            with socket.create_connection(source.address) as producer:
                producer.sendall(FRAME_MAGIC + encode_record(1.0, b"x" * 65))
            state = self.wait_state(source, lambda s: s["protocol_errors"] == 1)
            assert state["protocol_errors"] == 1
            assert source.poll(10, timeout=0.05) == []
        finally:
            source.close()

    def test_backlog_fraction_rises_with_queue_depth(self):
        source = SocketSource(("127.0.0.1", 0), capacity=8)
        try:
            with socket.create_connection(source.address) as producer:
                send_records(producer, [(1.0, b"\x45" + b"\x00" * 19)] * 4)
            state = self.wait_state(
                source, lambda s: s["backlog_fraction"] >= 0.5
            )
            assert state["backlog_fraction"] == pytest.approx(0.5)
        finally:
            source.close()


class TestOpenSource:
    def test_replay_tail_tcp_specs(self, tmp_path):
        pcap = tmp_path / "t.pcap"
        write_trace(pcap, first_wave())
        replay = open_source(f"replay:{pcap}")
        assert isinstance(replay, ReplaySource)
        tail = open_source(f"tail:{pcap}")
        assert isinstance(tail, PcapTailSource)
        tail.close()
        tcp = open_source("tcp:127.0.0.1:0", capacity=16)
        assert isinstance(tcp, SocketSource)
        tcp.close()

    @pytest.mark.parametrize(
        "spec",
        ["", "replay", "tcp:9999", "tcp:localhost:notaport", "ftp:whatever"],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            open_source(spec)


# ---------------------------------------------------------------------------
# Tenancy
# ---------------------------------------------------------------------------


def tcp_packet(src: str, dst: str, dst_port: int = 80) -> TimedPacket:
    segment = TcpSegment(src_port=40000, dst_port=dst_port, seq=1, payload=b"hi")
    return TimedPacket(1.0, build_tcp_packet(src, dst, segment))


class TestTenantTable:
    def two_tenants(self, keyer: str = "dst-ip") -> TenantTable:
        tenants = [
            TenantSpec("acme", ("10.1.0.0/16",), attack_ruleset()),
            TenantSpec("globex", ("10.2.0.7",), second_ruleset()),
        ]
        if keyer == "dst-port":
            tenants = [
                TenantSpec("acme", ("8080",), attack_ruleset()),
                TenantSpec("globex", ("9090",), second_ruleset()),
            ]
        return TenantTable(make_spec(), tenants, keyer=keyer)

    def test_dst_ip_keyer_routes_cidr_and_exact(self):
        table = self.two_tenants()
        assert table.tenant_of(tcp_packet("10.9.9.9", "10.1.44.5")) == "acme"
        assert table.tenant_of(tcp_packet("10.9.9.9", "10.2.0.7")) == "globex"
        assert (
            table.tenant_of(tcp_packet("10.9.9.9", "192.168.0.1"))
            == DEFAULT_TENANT
        )

    def test_src_ip_keyer_uses_the_other_end(self):
        tenants = [TenantSpec("acme", ("10.1.0.0/16",), attack_ruleset())]
        table = TenantTable(make_spec(), tenants, keyer="src-ip")
        assert table.tenant_of(tcp_packet("10.1.2.3", "10.9.9.9")) == "acme"
        assert table.tenant_of(tcp_packet("10.9.9.9", "10.1.2.3")) == DEFAULT_TENANT

    def test_dst_port_keyer_and_fragment_fallback(self):
        table = self.two_tenants(keyer="dst-port")
        assert table.tenant_of(tcp_packet("10.9.9.9", "10.0.0.2", 8080)) == "acme"
        assert table.tenant_of(tcp_packet("10.9.9.9", "10.0.0.2", 80)) == DEFAULT_TENANT
        # A non-first fragment has no transport header to key on.
        from repro.packet import fragment

        segment = TcpSegment(src_port=40000, dst_port=8080, seq=1, payload=b"hi")
        whole = build_tcp_packet(
            "10.9.9.9", "10.0.0.2", segment, dont_fragment=False
        )
        frags = fragment(whole, 28)
        assert len(frags) > 1
        later = TimedPacket(1.0, frags[1])
        assert later.ip.fragment_offset > 0
        assert table.tenant_of(later) == DEFAULT_TENANT

    def test_overlap_resolves_to_first_declared(self):
        tenants = [
            TenantSpec("narrow", ("10.1.2.0/24",), attack_ruleset()),
            TenantSpec("wide", ("10.1.0.0/16",), attack_ruleset()),
        ]
        table = TenantTable(make_spec(), tenants)
        assert table.tenant_of(tcp_packet("10.9.9.9", "10.1.2.3")) == "narrow"

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="keyer"):
            TenantTable(make_spec(), [], keyer="by-vibes")
        with pytest.raises(ValueError, match="reserved"):
            TenantTable(
                make_spec(),
                [TenantSpec(DEFAULT_TENANT, ("10.0.0.0/8",), attack_ruleset())],
            )
        with pytest.raises(ValueError, match="duplicate"):
            TenantTable(
                make_spec(),
                [
                    TenantSpec("a", ("10.0.0.1",), attack_ruleset()),
                    TenantSpec("a", ("10.0.0.2",), attack_ruleset()),
                ],
            )
        with pytest.raises(ValueError, match="selector"):
            TenantTable(
                make_spec(),
                [TenantSpec("a", ("not-an-ip",), attack_ruleset())],
            )

    def test_reload_unknown_tenant_raises(self):
        table = self.two_tenants()
        with pytest.raises(KeyError):
            table.reload({"initech": attack_ruleset()})

    def test_reload_bumps_only_named_tenants(self):
        table = self.two_tenants()
        generations = table.reload({"acme": second_ruleset()}, seq=1)
        assert generations == {"acme": 1}
        assert table.processor("acme").engine.rules_generation == 1
        assert table.processor("globex").engine.rules_generation == 0
        assert table.processor(DEFAULT_TENANT).engine.rules_generation == 0
        state = table.state()
        assert state["tenants"]["acme"]["rules_generation"] == 1
        assert state["keyer"] == "dst-ip"


# ---------------------------------------------------------------------------
# Hot reload: union of alerts, zero flow-state loss, no dropped diversions
# ---------------------------------------------------------------------------


class TestHotReload:
    def test_runner_reload_mid_stream_yields_alert_union(self):
        """Both runners: old-rule alerts before, new-rule alerts after."""
        stream = (
            first_wave()
            + [ControlMessage(op="reload", payload={"rules": second_ruleset()}, seq=1)]
            + second_wave()
        )
        config = RunnerConfig(batch_size=16)
        spec = make_spec()
        serial = SerialRunner(spec, shards=2, config=config).run(list(stream))
        parallel = ParallelRunner(spec, workers=2, config=config).run(list(stream))
        for report in (serial, parallel):
            sids = alert_sids(report.alerts)
            assert 5001 in sids  # seed signature, sent before the swap
            assert SECOND_SID in sids  # only the new rule set knows this

    def test_without_reload_second_wave_is_invisible(self):
        """The control above is doing the work: no swap, no 6001."""
        stream = first_wave() + second_wave()
        report = SerialRunner(
            make_spec(), shards=2, config=RunnerConfig(batch_size=16)
        ).run(stream)
        assert SECOND_SID not in alert_sids(report.alerts)

    def test_reload_preserves_flow_state_and_inflight_diversions(self):
        """The property behind the service's reload contract.

        Feed half of a fragmented (diverting) attack, swap rules, feed
        the rest: every monitor entry and diversion survives the swap
        bit-for-bit, and the in-flight diverted flow still alerts under
        the rules it started with.
        """
        attack = first_wave()
        benign = generate_trace(TrafficProfile(flows=10), seed=3)
        mid = len(attack) // 2
        table = TenantTable(make_spec(), [], config=RunnerConfig(batch_size=16))
        processor = table.processor(DEFAULT_TENANT)
        engine = processor.engine

        processor.feed(benign + attack[:mid])
        before = (
            engine.fast_path.live_flows(),
            engine.fast_path.tracked_flows,
            len(engine.diversions),
            engine.slow_path.active_flows,
        )
        assert before[2] > 0, "the fragmented attack must divert pre-swap"

        generations = table.reload({DEFAULT_TENANT: second_ruleset()}, seq=1)
        assert generations == {DEFAULT_TENANT: 1}
        after = (
            engine.fast_path.live_flows(),
            engine.fast_path.tracked_flows,
            len(engine.diversions),
            engine.slow_path.active_flows,
        )
        assert after == before, "a reload must not touch flow state"

        processor.feed(attack[mid:] + second_wave())
        report = processor.finish()
        sids = alert_sids(report.alerts)
        assert 5001 in sids, "in-flight diverted flow lost across reload"
        assert SECOND_SID in sids, "new rules not active after reload"

    def test_service_reload_applies_at_poll_boundary(self):
        """End-to-end through SplitDetectService.request_reload()."""
        stream = first_wave() + second_wave()
        holder: dict = {}

        def trigger():
            holder["service"].request_reload()

        source = HookedSource(records_of(stream), at_poll=2, hook=trigger)
        table = TenantTable(make_spec(), [], config=RunnerConfig(batch_size=16))
        service = SplitDetectService(
            source,
            table,
            config=ServiceConfig(batch_size=16, poll_timeout=0.05),
            reload_loader=lambda: {DEFAULT_TENANT: second_ruleset()},
        )
        holder["service"] = service
        report = service.run()
        assert report.reloads == 1
        assert report.stop_reason == "exhausted"
        sids = alert_sids(report.runtime.alerts)
        assert 5001 in sids and SECOND_SID in sids
        assert report.accounting_closed
        assert (
            report.tenants["tenants"][DEFAULT_TENANT]["rules_generation"] == 1
        )

    def test_service_reload_failure_keeps_current_rules(self, capsys):
        def bad_loader():
            raise OSError("rules file vanished")

        source = HookedSource(
            records_of(first_wave()),
            at_poll=1,
            hook=lambda: holder["service"].request_reload(),
        )
        holder: dict = {}
        table = TenantTable(make_spec(), [], config=RunnerConfig(batch_size=16))
        service = SplitDetectService(
            source,
            table,
            config=ServiceConfig(batch_size=16, poll_timeout=0.05),
            reload_loader=bad_loader,
        )
        holder["service"] = service
        report = service.run()
        assert report.reloads == 0
        assert "reload failed" in capsys.readouterr().out
        assert 5001 in alert_sids(report.runtime.alerts)
        assert table.processor(DEFAULT_TENANT).engine.rules_generation == 0

    def test_request_reload_without_loader_raises(self):
        table = TenantTable(make_spec(), [])
        service = SplitDetectService(ReplaySource(iter([])), table)
        with pytest.raises(RuntimeError):
            service.request_reload()


# ---------------------------------------------------------------------------
# Load shedding
# ---------------------------------------------------------------------------


class FakeEngine:
    def __init__(self, diverted=()):
        self.diverted = set(diverted)

    def is_diverted(self, flow):
        return flow.canonical() in self.diverted


class FakeTracer:
    def __init__(self, forced=()):
        self.forced = set(forced)

    def is_forced(self, flow):
        return flow.canonical() in self.forced


def sheddable_flow():
    """A flow whose hash slot falls inside the level-1 (0.25) fraction."""
    for host in range(1, 250):
        packet = tcp_packet(f"10.50.0.{host}", "10.0.0.2")
        flow = flow_key_of(packet.ip)
        if _shed_slot(flow) < 0.25 * _SHED_SCALE:
            return flow
    raise AssertionError("no sheddable flow in 250 candidates")


class TestLoadShedder:
    def test_raise_is_immediate_lower_is_hysteretic(self):
        shedder = LoadShedder(ShedPolicy(calm_updates=3))
        assert shedder.update(backlog=0.9) == 1
        assert shedder.update(backlog=0.9) == 2
        assert shedder.update(backlog=0.9) == 3
        assert shedder.update(backlog=0.9) == 3  # pinned at max
        # Mid-band readings neither raise nor count as calm.
        assert shedder.update(backlog=0.5) == 3
        # Three consecutive calm updates step down exactly once.
        assert shedder.update(backlog=0.1) == 3
        assert shedder.update(backlog=0.1) == 3
        assert shedder.update(backlog=0.1) == 2
        # A calm streak broken by overload starts over.
        assert shedder.update(backlog=0.1) == 2
        assert shedder.update(backlog=0.9) == 3
        assert shedder.update(backlog=0.1) == 3

    def test_p99_budget_is_an_independent_trigger(self):
        shedder = LoadShedder(ShedPolicy(p99_budget_ns=1000.0))
        assert shedder.update(backlog=0.0, p99_ns=1500.0) == 1
        assert shedder.last_p99_ratio == pytest.approx(1.5)
        calm = LoadShedder(ShedPolicy())  # budget 0: latency signal off
        assert calm.update(backlog=0.0, p99_ns=10**12) == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ShedPolicy(levels=(0.5, 0.75))
        with pytest.raises(ValueError):
            ShedPolicy(levels=(0.0, 1.5))
        with pytest.raises(ValueError):
            ShedPolicy(backlog_low=0.8, backlog_high=0.2)
        with pytest.raises(ValueError):
            ShedPolicy(calm_updates=0)

    def test_never_sheds_diverted_or_forced_flows(self):
        flow = sheddable_flow()
        shedder = LoadShedder()
        shedder.level = 1

        # Unprotected: the hash says shed, so it sheds.
        assert shedder.should_shed(flow, engine=FakeEngine()) is True
        assert shedder.shed_packets == 1

        # Same flow, now diverted: absolutely protected.
        diverted = FakeEngine(diverted=[flow.canonical()])
        assert shedder.should_shed(flow, engine=diverted) is False
        # Same flow, force-traced: absolutely protected.
        forced = FakeTracer(forced=[flow.canonical()])
        assert (
            shedder.should_shed(flow, engine=FakeEngine(), tracer=forced)
            is False
        )
        assert shedder.protected_packets == 2
        assert shedder.shed_packets == 1

    def test_level_zero_and_disabled_never_shed(self):
        flow = sheddable_flow()
        shedder = LoadShedder()
        assert shedder.should_shed(flow, engine=FakeEngine()) is False
        shedder.level = 1
        shedder.enabled = False
        assert shedder.should_shed(flow, engine=FakeEngine()) is False
        assert shedder.shed_packets == 0

    def test_whole_flow_decisions_are_deterministic(self):
        flow = sheddable_flow()
        shedder = LoadShedder()
        shedder.level = 1
        engine = FakeEngine()
        decisions = {shedder.should_shed(flow, engine=engine) for _ in range(10)}
        assert decisions == {True}, "a shed flow is shed wholly, not per-packet"


class TestSheddingService:
    def overloaded_run(self):
        """Run the gauntlet with the shedder pinned at max level.

        ``backlog_high=0`` makes every signal update an overload, so the
        level ladder climbs to max within the first polls -- injected
        overload without needing a real producer to outrun us.
        """
        trace = generate_trace(TrafficProfile(flows=60), seed=11)
        trace = sorted(
            trace + first_wave() + second_wave(), key=lambda p: p.timestamp
        )
        source = ReplaySource(records_of(trace))
        runner_config = RunnerConfig(batch_size=16, trace=True, telemetry=True)
        table = TenantTable(make_spec(), [], config=runner_config)
        service = SplitDetectService(
            source,
            table,
            config=ServiceConfig(
                batch_size=16,
                poll_timeout=0.05,
                shed_policy=ShedPolicy(
                    levels=(0.0, 0.5, 0.75), backlog_high=0.0, backlog_low=0.0
                ),
            ),
        )
        report = service.run()
        return service, table, report, len(trace)

    def test_accounting_identity_closes_under_shedding(self):
        service, _table, report, offered = self.overloaded_run()
        assert report.shed_packets > 0, "injected overload must actually shed"
        assert report.input_records == offered
        assert (
            report.examined_packets
            + report.shed_packets
            + report.quarantined_packets
            + report.lost_packets
            == report.input_records
        )
        assert report.accounting_closed
        assert report.shed["level"] == 2
        assert report.shed["level_changes"] >= 2

    def test_shed_decisions_never_touch_diverted_flows(self):
        _service, table, report, _ = self.overloaded_run()
        processor = table.processor(DEFAULT_TENANT)
        diverted_ids = {
            trace_id_of(d.flow) for d in processor.engine.diversions
        }
        snapshot = processor.tracer.snapshot()
        shed_ids = {
            int(span["trace"], 16)
            for span in snapshot["spans"]
            if span["stage"] == "service" and span["event"] == "shed"
        }
        assert shed_ids, "shed decisions must land in the flight recorder"
        assert not (shed_ids & diverted_ids), (
            "a diverted flow was shed -- the never-shed invariant is broken"
        )
        # The shed counter also reaches merged telemetry.
        counters = report.runtime.telemetry["counters"]
        assert "repro_service_shed_packets_total" in counters


# ---------------------------------------------------------------------------
# Equivalence with the batch runners, and the drain contract
# ---------------------------------------------------------------------------


class TestServeEquivalence:
    def test_serve_matches_serial_runner_below_overload(self):
        trace = generate_trace(TrafficProfile(flows=30), seed=5)
        trace = sorted(
            trace + first_wave() + second_wave(), key=lambda p: p.timestamp
        )
        config = RunnerConfig(batch_size=32)
        batch = SerialRunner(make_spec(), shards=1, config=config).run(list(trace))

        source = ReplaySource(records_of(trace))
        _service, report = run_service(source, runner_config=config)
        assert report.shed_packets == 0
        assert report.accounting_closed
        assert report.examined_packets == len(trace)
        assert alert_sids(report.runtime.alerts) == alert_sids(batch.alerts)
        assert (
            report.runtime.stats.diversions == batch.stats.diversions
        )

    def test_max_packets_stop(self):
        records = records_of(first_wave() + second_wave())
        source = ReplaySource(records)
        _service, report = run_service(
            source,
            service_config=ServiceConfig(
                batch_size=8, poll_timeout=0.05, max_packets=16
            ),
        )
        assert report.stop_reason == "max_packets"
        assert not report.runtime.interrupted
        assert report.accounting_closed


class TestDrain:
    def test_stop_request_drains_into_partial_report(self):
        stream = first_wave() + second_wave()
        holder: dict = {}
        source = HookedSource(
            records_of(stream),
            at_poll=2,
            hook=lambda: holder["service"].request_stop("sigterm"),
        )
        table = TenantTable(make_spec(), [], config=RunnerConfig(batch_size=8))
        service = SplitDetectService(
            source, table, config=ServiceConfig(batch_size=8, poll_timeout=0.05)
        )
        holder["service"] = service
        report = service.run()
        assert report.stop_reason == "sigterm"
        assert service.stopping
        assert report.runtime.interrupted, "a signal stop is a partial report"
        assert report.accounting_closed
        # Polls 1 and 2 both complete (the stop lands during poll 2 and
        # is honoured at the next loop top): exactly 16 records examined.
        assert report.examined_packets == 16
        assert report.examined_packets < len(stream)

    def test_stop_is_idempotent_and_keeps_first_reason(self):
        table = TenantTable(make_spec(), [])
        service = SplitDetectService(ReplaySource(iter([])), table)
        assert service.request_stop("sigterm")["reason"] == "sigterm"
        assert service.request_stop("sigint")["reason"] == "sigterm"


# ---------------------------------------------------------------------------
# Telemetry endpoints: /healthz with service state, POST /reload auth
# ---------------------------------------------------------------------------


def http_get(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, json.loads(response.read().decode())


def http_post(url: str, token: str | None = None):
    request = urllib.request.Request(url, data=b"{}", method="POST")
    if token is not None:
        request.add_header("Authorization", f"Bearer {token}")
    try:
        with urllib.request.urlopen(request, timeout=5.0) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


class TestServiceEndpoints:
    def test_healthz_reports_uptime_source_and_shed(self):
        publisher = TelemetryPublisher()
        publisher.health = {"status": "running", "mode": "serve"}
        publisher.source_state = lambda: {"kind": "replay", "records": 7}
        publisher.shed_state = lambda: {"level": 1, "shed_packets": 3}
        publisher.tenants_state = lambda: {"keyer": "dst-ip", "tenants": {}}
        with TelemetryServer(publisher, port=0) as server:
            status, body = http_get(f"{server.url}/healthz")
            assert status == 200
            assert body["status"] == "running"
            assert body["uptime_seconds"] >= 0
            assert body["source"]["records"] == 7
            assert body["shed"]["level"] == 1
            status, body = http_get(f"{server.url}/shed")
            assert status == 200 and body["shed_packets"] == 3
            status, body = http_get(f"{server.url}/tenants")
            assert status == 200 and body["keyer"] == "dst-ip"

    def test_shed_and_tenants_404_when_not_serving(self):
        with TelemetryServer(TelemetryPublisher(), port=0) as server:
            for path in ("/shed", "/tenants"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(f"{server.url}{path}", timeout=5.0)
                assert excinfo.value.code == 404

    def test_reload_endpoint_auth_ladder(self):
        publisher = TelemetryPublisher()
        calls: list[int] = []
        with TelemetryServer(publisher, port=0) as server:
            # No token configured: refused outright.
            status, _ = http_post(f"{server.url}/reload", token="whatever")
            assert status == 503
            publisher.reload_token = "s3cret"
            publisher.on_reload = lambda: calls.append(1) or {"reloads_applied": 0}
            status, _ = http_post(f"{server.url}/reload")
            assert status == 401
            status, _ = http_post(f"{server.url}/reload", token="wrong")
            assert status == 401
            assert calls == []
            status, body = http_post(f"{server.url}/reload", token="s3cret")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            assert calls == [1]

    def test_reload_hook_errors_become_500(self):
        publisher = TelemetryPublisher()
        publisher.reload_token = "t"

        def boom():
            raise RuntimeError("no loader configured")

        publisher.on_reload = boom
        with TelemetryServer(publisher, port=0) as server:
            status, body = http_post(f"{server.url}/reload", token="t")
            assert status == 500
            assert "no loader" in body


class TestTelemetrySession:
    def test_disabled_session_is_all_noops(self):
        with TelemetrySession(None) as session:
            assert not session.enabled
            assert session.url is None
            session.update_health(status="running")
            session.publish_trace({})

    def test_enabled_session_serves_and_marks_finished(self):
        announced: list[str] = []
        with TelemetrySession(0, announce=announced.append) as session:
            assert session.enabled
            session.update_health(status="running", mode="serve")
            status, body = http_get(f"{session.url}/healthz")
            assert status == 200 and body["mode"] == "serve"
        assert announced and "http://" in announced[0]
        assert session.publisher.health["status"] == "ok"
        assert session.publisher.health["finished"] is True
