"""Command-line interface: ``splitdetect`` (or ``python -m repro``).

Subcommands:

- ``run``       drive an IPS over a pcap file, print alerts and resources
- ``generate``  synthesize a benign trace (optionally with attacks) to pcap
- ``rules``     show the bundled signature corpus and its split statistics
- ``strategies`` list the evasion catalog
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import (
    Alert,
    ConventionalIPS,
    FastPathConfig,
    NaivePacketIPS,
    SplitDetectIPS,
)
from .evasion import STRATEGIES, build_attack
from .metrics import (
    RunReport,
    run_conventional,
    run_split_detect,
    state_bytes_ratio,
)
from .pcap import read_records, read_trace, write_trace
from .runtime import (
    Backpressure,
    EngineSpec,
    FaultPlan,
    ParallelRunner,
    RunnerConfig,
    ShardPolicy,
    iter_batches,
)
from .signatures import (
    RuleSet,
    SplitPolicy,
    load_bundled_rules,
    load_rules,
    split_ruleset,
)
from .telemetry import NULL_REGISTRY, TelemetryRegistry, write_telemetry
from .traffic import TrafficProfile, generate_trace, inject_attacks


def _load_ruleset(path: str | None) -> RuleSet:
    return load_rules(path) if path else load_bundled_rules()


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _writable_file(text: str) -> Path:
    """A file path whose parent directory already exists (--telemetry-out)."""
    path = Path(text)
    parent = path.parent
    if not parent.is_dir():
        raise argparse.ArgumentTypeError(
            f"parent directory {parent} does not exist"
        )
    return path


def _finish_telemetry(
    args: argparse.Namespace,
    ips: SplitDetectIPS | ConventionalIPS | NaivePacketIPS,
    report: RunReport | None = None,
) -> None:
    """Write the run's telemetry snapshot if --telemetry-out was given."""
    if not ips.telemetry.enabled:
        return
    ips.refresh_telemetry()
    if report is not None and args.engine == "split":
        ips.telemetry.gauge(
            "repro_run_state_bytes_ratio",
            "Measured peak state over the conventional provisioned equivalent",
        ).set(state_bytes_ratio(report))
    if args.telemetry_out is not None:
        path = write_telemetry(
            ips.telemetry, args.telemetry_out, format=args.telemetry_format
        )
        print(f"telemetry ({args.telemetry_format}) written to {path}")


def _print_alerts(alerts: list[Alert], max_alerts: int) -> None:
    print(f"alerts: {len(alerts)}")
    for alert in alerts[:max_alerts]:
        print(f"  {alert}")
    if len(alerts) > max_alerts:
        print(f"  ... and {len(alerts) - max_alerts} more")


def _fast_config(args: argparse.Namespace) -> FastPathConfig | None:
    """Fast-path config from CLI flags; None keeps the engine defaults."""
    if args.state_backend == "dict":
        return None
    return FastPathConfig(state_backend=args.state_backend)


def _cmd_run_parallel(args: argparse.Namespace, rules: RuleSet) -> int:
    """The sharded path: N worker processes behind the flow hash."""
    spec = EngineSpec(
        rules=rules,
        split_policy=SplitPolicy(piece_length=args.piece_length),
        fast_config=_fast_config(args),
    )
    faults = None
    if args.inject:
        try:
            faults = FaultPlan.parse(args.inject)
        except ValueError as exc:
            print(f"bad --inject spec: {exc}", file=sys.stderr)
            return 2
        print(f"fault plan: {faults.describe()}")
    config = RunnerConfig(
        batch_size=args.batch_size,
        shard_policy=ShardPolicy(args.shard_policy),
        backpressure=Backpressure.SHED if args.shed else Backpressure.BLOCK,
        queue_depth=args.queue_depth,
        evict_interval=args.evict_interval,
        telemetry=not args.no_telemetry,
        max_restarts=args.max_restarts,
        restart_backoff=args.restart_backoff,
        faults=faults,
    )
    runner = ParallelRunner(spec, workers=args.workers, config=config)
    # Undecoded records, not parsed packets: the runner's quarantine
    # owns malformed frames, so a hostile capture cannot kill the run.
    report = runner.run(read_records(args.pcap))
    print(
        f"processed {report.packets} packets across {report.workers} shards "
        f"in {report.wall_seconds:.2f}s "
        f"({report.wall_throughput_pps:,.0f} pkt/s wall, "
        f"{report.aggregate_shard_pps:,.0f} pkt/s aggregate)"
    )
    if report.shed_packets:
        print(f"SHED {report.shed_packets} packets "
              f"({report.shed_batches} batches) under backpressure")
    if report.worker_restarts:
        print(f"RESTARTED {report.worker_restarts} worker(s)")
    for interval in report.degraded:
        if interval.start_ts is not None and interval.end_ts is not None:
            window = f"{interval.start_ts:.3f}..{interval.end_ts:.3f}"
        elif interval.open:
            window = "open"
        else:
            window = "unconfirmed start"
        print(
            f"DEGRADED shard {interval.shard} gen {interval.generation} "
            f"[{interval.reason}] packets_lost={interval.packets_lost} "
            f"flows_reset={interval.flows_reset} "
            f"alerts_salvaged={interval.alerts_salvaged} window={window}"
        )
    if report.quarantined:
        causes = ", ".join(
            f"{cause}={count}" for cause, count in sorted(report.quarantined.items())
        )
        print(f"QUARANTINED {report.quarantined_packets} malformed frame(s): {causes}")
    print(f"diverted flows: {report.diverted_flows}  "
          f"({report.diversion_byte_fraction:.2%} of bytes on slow path)")
    for reason, count in sorted(report.divert_reasons.items()):
        print(f"  divert[{reason}] = {count}")
    for shard in report.shards:
        print(f"  shard[{shard.shard}]: {shard.stats.packets_total} packets, "
              f"{len(shard.alerts)} alerts, {shard.diverted_flows} diverted, "
              f"{shard.busy_seconds:.2f}s busy")
    print(f"peak state: {report.peak_state_bytes} bytes over "
          f"{report.peak_flows} flows (summed shard provisioning)")
    _print_alerts(report.alerts, args.max_alerts)
    if report.registry is not None and args.telemetry_out is not None:
        path = write_telemetry(
            report.registry, args.telemetry_out, format=args.telemetry_format
        )
        print(f"telemetry ({args.telemetry_format}) written to {path}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.no_telemetry and args.telemetry_out is not None:
        print("--telemetry-out needs instrumentation; drop --no-telemetry",
              file=sys.stderr)
        return 2
    if args.workers and args.engine != "split":
        print("--workers shards the split engine only; conventional/naive "
              "baselines run single-process", file=sys.stderr)
        return 2
    if args.state_backend != "dict" and args.engine != "split":
        print("--state-backend configures the split engine's fast path; "
              "conventional/naive baselines have no flow monitor",
              file=sys.stderr)
        return 2
    if (args.inject or args.max_restarts) and not args.workers:
        print("--inject/--max-restarts drive the sharded runtime; add "
              "--workers N", file=sys.stderr)
        return 2
    if args.max_restarts < 0:
        print(f"--max-restarts must be >= 0, got {args.max_restarts}",
              file=sys.stderr)
        return 2
    rules = _load_ruleset(args.rules)
    print(f"loaded {len(rules)} signatures")
    if args.workers:
        return _cmd_run_parallel(args, rules)
    # Single-process path.  The trace is streamed lazily off the pcap in
    # batches, so footprint stays bounded regardless of capture size.
    trace = read_trace(args.pcap)
    telemetry = NULL_REGISTRY if args.no_telemetry else TelemetryRegistry()
    if args.engine == "split":
        ips = SplitDetectIPS(
            rules,
            split_policy=SplitPolicy(piece_length=args.piece_length),
            fast_config=_fast_config(args),
            telemetry=telemetry,
        )
        report = run_split_detect(
            ips,
            trace,
            batch_size=args.batch_size,
            evict_interval=args.evict_interval,
        )
        print(f"processed {report.packets} packets")
        print(f"diverted flows: {report.diverted_flows}  "
              f"({report.diversion_byte_fraction:.2%} of bytes on slow path)")
        for reason, count in sorted(report.divert_reasons.items()):
            print(f"  divert[{reason}] = {count}")
    elif args.engine == "conventional":
        ips = ConventionalIPS(rules, telemetry=telemetry)
        report = run_conventional(ips, trace)
        print(f"processed {report.packets} packets")
    else:
        ips = NaivePacketIPS(rules, telemetry=telemetry)
        alerts = []
        packets = 0
        for batch in iter_batches(trace, args.batch_size):
            alerts.extend(ips.process_batch(batch))
            packets += len(batch)
        print(f"processed {packets} packets")
        _print_alerts(alerts, args.max_alerts)
        _finish_telemetry(args, ips)
        return 0
    print(f"peak state: {report.peak_state_bytes} bytes over {report.peak_flows} flows")
    _print_alerts(report.alerts, args.max_alerts)
    _finish_telemetry(args, ips, report)
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    profile = TrafficProfile(flows=args.flows)
    trace = generate_trace(profile, seed=args.seed)
    attacks = []
    rules = _load_ruleset(args.rules)
    for name in args.attack or []:
        if name not in STRATEGIES:
            print(f"unknown strategy {name!r}; see 'splitdetect strategies'", file=sys.stderr)
            return 2
        signature = rules.signatures[0]
        payload = b"X" * 200 + signature.pattern + b"Y" * 200
        attacks.append(
            build_attack(
                name,
                payload,
                signature_span=(200, len(signature.pattern)),
                src=f"10.250.0.{len(attacks) + 1}",
                dst_port=signature.dst_port or 80,
            )
        )
    merged = inject_attacks(trace, attacks) if attacks else trace
    count = write_trace(args.out, merged)
    print(f"wrote {count} packets to {args.out}"
          + (f" ({len(attacks)} attack flows)" if attacks else ""))
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    rules = _load_ruleset(args.rules)
    policy = SplitPolicy(piece_length=args.piece_length)
    split = split_ruleset(rules, policy)
    print(f"signatures: {len(rules)}")
    print(f"splittable: {len(split.splits)}   unsplittable: {len(split.unsplittable)}")
    print(f"pieces: {split.piece_count}   small-packet threshold B: "
          f"{split.small_packet_threshold} bytes")
    if args.histogram:
        print("pattern-length histogram:")
        for length, count in rules.length_histogram().items():
            print(f"  {length:>4} bytes: {'#' * count} ({count})")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json
    import random

    from .signatures import ByteFrequencyModel, lint_ruleset
    from .signatures.lint import LintLevel
    from .traffic import benign_payload

    rules = _load_ruleset(args.rules)
    model = None
    if not args.no_model:
        model = ByteFrequencyModel()
        rng = random.Random(99)
        for _ in range(30):
            model.train(benign_payload(rng, 4000))
    findings = lint_ruleset(
        rules, SplitPolicy(piece_length=args.piece_length), model
    )
    errors = sum(1 for f in findings if f.level is LintLevel.ERROR)
    warnings = sum(1 for f in findings if f.level is LintLevel.WARNING)
    if args.json:
        json.dump(
            {
                "rules": len(rules),
                "errors": errors,
                "warnings": warnings,
                "findings": [
                    {
                        "level": f.level.value,
                        "sid": f.sid,
                        "code": f.code,
                        "message": f.message,
                    }
                    for f in findings
                ],
            },
            sys.stdout,
            indent=2,
        )
        sys.stdout.write("\n")
    else:
        for finding in findings:
            print(finding)
        print(f"{len(rules)} rules: {len(findings)} findings, {errors} errors")
    if errors:
        return 1
    if args.strict and warnings:
        return 1
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .devtools.splitcheck.cli import run_check

    return run_check(args)


def cmd_stats(args: argparse.Namespace) -> int:
    from .analysis import characterize, format_stats

    trace = list(read_trace(args.pcap))
    for line in format_stats(characterize(trace)):
        print(line)
    return 0


def cmd_strategies(_args: argparse.Namespace) -> int:
    for name in sorted(STRATEGIES):
        strategy = STRATEGIES[name]
        print(f"{name:<18} {strategy.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="splitdetect",
        description="Split-Detect IPS (SIGCOMM 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an IPS over a pcap file")
    run.add_argument("pcap")
    run.add_argument("--rules", help="Snort-content rules file (default: bundled corpus)")
    run.add_argument("--engine", choices=("split", "conventional", "naive"), default="split")
    run.add_argument(
        "--state-backend",
        choices=("dict", "table", "sketch"),
        default="dict",
        help="fast-path flow state: 'dict' (unbounded exact map, default), "
             "'table' (fixed set-associative flow table), or 'sketch' "
             "(cold slots + count-min anomaly sketch + exact hot set -- "
             "constant memory at any flow count)",
    )
    run.add_argument("--piece-length", type=int, default=8)
    run.add_argument("--max-alerts", type=int, default=20)
    run.add_argument(
        "--batch-size",
        type=_positive_int,
        default=256,
        help="packets per process_batch call (amortizes the fast-path scan)",
    )
    run.add_argument(
        "--telemetry-out",
        type=_writable_file,
        metavar="PATH",
        help="write the run's telemetry snapshot to this file",
    )
    run.add_argument(
        "--telemetry-format",
        choices=("json", "prometheus"),
        default="json",
        help="exposition format for --telemetry-out (default: json)",
    )
    run.add_argument(
        "--no-telemetry",
        action="store_true",
        help="run with the no-op registry (skips all instrumentation)",
    )
    run.add_argument(
        "--workers",
        type=_positive_int,
        default=0,
        metavar="N",
        help="shard the split engine across N worker processes behind a "
             "flow-consistent hash (default: single-process)",
    )
    run.add_argument(
        "--shard-policy",
        choices=tuple(policy.value for policy in ShardPolicy),
        default=ShardPolicy.FLOW.value,
        help="shard key: 'flow' hashes the address pair (fragment-safe, "
             "default); 'tuple5' adds ports for finer balance",
    )
    pressure = run.add_mutually_exclusive_group()
    pressure.add_argument(
        "--block",
        action="store_true",
        help="block the feeder when a shard queue is full (lossless; default)",
    )
    pressure.add_argument(
        "--shed",
        action="store_true",
        help="drop batches when a shard queue is full, counting every "
             "shed packet",
    )
    run.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=8,
        help="bounded per-worker queue depth, in batches (default: 8)",
    )
    run.add_argument(
        "--evict-interval",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="sweep idle flow state every SECONDS of packet time "
             "(default: no automatic eviction)",
    )
    run.add_argument(
        "--max-restarts",
        type=int,
        default=0,
        metavar="N",
        help="supervise workers: restart a dead/hung shard up to N times "
             "with a fresh engine, reporting the gap as a degraded "
             "interval (default 0: any worker failure aborts the run)",
    )
    run.add_argument(
        "--restart-backoff",
        type=_positive_float,
        default=0.05,
        metavar="SECONDS",
        help="base of the supervisor's exponential restart backoff "
             "(default: 0.05)",
    )
    run.add_argument(
        "--inject",
        action="append",
        metavar="FAULT",
        help="inject a deterministic fault, e.g. 'crash:shard=1,at=500' "
             "or 'stall:shard=0,at=100,seconds=0.2'; kinds: crash, hang, "
             "stall, slowdown, decode, skew (repeatable; needs --workers)",
    )
    run.set_defaults(func=cmd_run)

    gen = sub.add_parser("generate", help="synthesize a trace to pcap")
    gen.add_argument("out")
    gen.add_argument("--flows", type=int, default=100)
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--rules", help="rules file supplying the attack signature")
    gen.add_argument(
        "--attack",
        action="append",
        metavar="STRATEGY",
        help="inject an attack flow using this evasion strategy (repeatable)",
    )
    gen.set_defaults(func=cmd_generate)

    rules = sub.add_parser("rules", help="signature corpus statistics")
    rules.add_argument("--rules")
    rules.add_argument("--piece-length", type=int, default=8)
    rules.add_argument("--histogram", action="store_true")
    rules.set_defaults(func=cmd_rules)

    lint = sub.add_parser("lint", help="check a rules file for Split-Detect fitness")
    lint.add_argument("--rules")
    lint.add_argument("--piece-length", type=int, default=8)
    lint.add_argument("--no-model", action="store_true",
                      help="skip the benign-traffic noisy-piece analysis")
    lint.add_argument("--strict", action="store_true",
                      help="exit non-zero on warnings too (CI mode)")
    lint.add_argument("--json", action="store_true",
                      help="emit findings as JSON for machine consumption")
    lint.set_defaults(func=cmd_lint)

    check = sub.add_parser(
        "check",
        help="run the splitcheck static invariant analyzer over the codebase",
    )
    from .devtools.splitcheck.cli import configure_parser as _configure_check

    _configure_check(check)
    check.set_defaults(func=cmd_check)

    stats = sub.add_parser("stats", help="characterize a pcap trace")
    stats.add_argument("pcap")
    stats.set_defaults(func=cmd_stats)

    strategies = sub.add_parser("strategies", help="list the evasion catalog")
    strategies.set_defaults(func=cmd_strategies)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
