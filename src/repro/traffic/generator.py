"""Synthetic trace generation: the repo's substitute for the paper's traces.

The paper evaluated on captured campus/enterprise traffic.  Offline, we
synthesize traces whose *relevant statistics* are parameterized and
calibrated to published trace studies of the era:

- flow sizes: bounded-Pareto (heavy tail -- a few elephants, many mice);
- packet sizes: the classic trimodal mix (ACK-ish 40, ~576, ~1460);
- benign reordering (~1%), retransmission (~0.5%), interactive tiny
  segments, and a small fragmented fraction.

Everything is deterministic in the seed, and the output is a list of
:class:`TimedPacket` (writable to real pcap via ``repro.pcap``).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, replace

from ..evasion.plan import Seg, even_segments, plan_to_packets
from ..packet import TimedPacket, UdpDatagram, build_udp_packet, fragment
from .payloads import benign_payload


@dataclass(frozen=True)
class TrafficProfile:
    """Knobs describing a benign traffic population."""

    flows: int = 100
    mean_flow_bytes: int = 12_000
    max_flow_bytes: int = 500_000
    pareto_alpha: float = 1.2
    segment_sizes: tuple[tuple[int, float], ...] = ((1460, 0.55), (576, 0.30), (256, 0.15))
    """(size, weight) mixture for data segment sizes within a flow."""

    reorder_rate: float = 0.002
    """Probability that a data packet is swapped with its successor.
    Trace studies of the era put visible reordering at 0.1-2% of packets;
    the default sits at the low end because an enterprise monitoring
    point sees little cross-path reordering."""

    retransmit_rate: float = 0.002
    """Probability that a data packet is duplicated (spurious or lost-ACK
    retransmission visible at the monitor)."""

    tiny_rate: float = 0.002
    """Fraction of flows that are interactive (many small segments)."""

    small_segment_rate: float = 0.01
    """Probability that a bulk-flow data segment is a small application
    write (size uniform in [1, 256]) -- the continuous small-packet tail
    every real trace shows (PUSH-bounded writes, header-only sends)."""

    fragment_rate: float = 0.0005
    """Probability that a data packet gets IP-fragmented at 576 bytes
    (fragments were ~0.25% of wide-area packets in 2006 measurements)."""

    server_ports: tuple[tuple[int, float], ...] = (
        (80, 0.55), (443, 0.20), (25, 0.10), (110, 0.05), (139, 0.05), (8080, 0.05),
    )
    mean_interarrival: float = 0.01
    """Mean gap between flow starts (seconds)."""

    udp_fraction: float = 0.08
    """Fraction of flows that are UDP exchanges (DNS-like short datagrams)."""


@dataclass
class GeneratedFlow:
    """One synthesized connection, before interleaving."""

    packets: list[TimedPacket]
    client: str
    server: str
    server_port: int
    payload_bytes: int
    interactive: bool


def _weighted(rng: random.Random, table: tuple[tuple[int, float], ...]) -> int:
    values = [v for v, _ in table]
    weights = [w for _, w in table]
    return rng.choices(values, weights=weights, k=1)[0]


def _flow_size(rng: random.Random, profile: TrafficProfile) -> int:
    """Bounded-Pareto flow size with the profile's mean scale."""
    alpha = profile.pareto_alpha
    minimum = max(64, int(profile.mean_flow_bytes * (alpha - 1) / alpha))
    size = int(minimum / (rng.random() ** (1 / alpha)))
    return min(size, profile.max_flow_bytes)


def _segment_plan(
    rng: random.Random, payload: bytes, profile: TrafficProfile, interactive: bool
) -> list[Seg]:
    if interactive:
        return even_segments(payload, rng.randrange(1, 8))
    segs: list[Seg] = []
    offset = 0
    while offset < len(payload):
        if rng.random() < profile.small_segment_rate:
            size = rng.randrange(1, 257)
        else:
            size = _weighted(rng, profile.segment_sizes)
        segs.append(Seg(offset=offset, data=payload[offset : offset + size]))
        offset += size
    if segs:
        segs[-1] = replace(segs[-1], fin=True)
    return segs


def generate_flow(
    rng: random.Random,
    profile: TrafficProfile,
    *,
    start_time: float,
    client: str,
    server: str,
    client_port: int,
) -> GeneratedFlow:
    """Synthesize one benign client->server flow."""
    interactive = rng.random() < profile.tiny_rate
    size = _flow_size(rng, profile)
    if interactive:
        size = min(size, 2_000)
    payload = benign_payload(rng, size)
    server_port = _weighted(rng, profile.server_ports)
    segs = _segment_plan(rng, payload, profile, interactive)
    packets = plan_to_packets(
        segs,
        src=client,
        dst=server,
        src_port=client_port,
        dst_port=server_port,
        isn=rng.randrange(2**32),
        start_time=start_time,
        gap=0.0005 + rng.random() * 0.002,
    )
    packets = _perturb(rng, packets, profile)
    return GeneratedFlow(
        packets=packets,
        client=client,
        server=server,
        server_port=server_port,
        payload_bytes=len(payload),
        interactive=interactive,
    )


def _perturb(
    rng: random.Random, packets: list[TimedPacket], profile: TrafficProfile
) -> list[TimedPacket]:
    """Apply benign network pathologies: reorder, retransmit, fragment."""
    out = list(packets)
    i = 1  # never move the SYN
    while i < len(out) - 1:
        if rng.random() < profile.reorder_rate:
            out[i], out[i + 1] = (
                TimedPacket(out[i].timestamp, out[i + 1].ip),
                TimedPacket(out[i + 1].timestamp, out[i].ip),
            )
            i += 2
            continue
        i += 1
    final: list[TimedPacket] = []
    for packet in out:
        if packet.ip.payload and rng.random() < profile.fragment_rate:
            ip = packet.ip.copy(dont_fragment=False)
            for frag in fragment(ip, 576):
                final.append(TimedPacket(packet.timestamp, frag))
            continue
        final.append(packet)
        if packet.ip.payload and rng.random() < profile.retransmit_rate:
            final.append(TimedPacket(packet.timestamp + 0.0001, packet.ip))
    return final


def generate_udp_exchange(
    rng: random.Random,
    *,
    start_time: float,
    client: str,
    server: str,
    client_port: int,
) -> list[TimedPacket]:
    """A DNS-like UDP exchange: one to three small query datagrams."""
    port = rng.choice([53, 53, 53, 123, 161])
    packets: list[TimedPacket] = []
    clock = start_time
    for _ in range(rng.randrange(1, 4)):
        size = rng.randrange(20, 220)
        dgram = UdpDatagram(
            src_port=client_port,
            dst_port=port,
            payload=benign_payload(rng, size),
        )
        packets.append(TimedPacket(clock, build_udp_packet(client, server, dgram)))
        clock += 0.002 + rng.random() * 0.01
    return packets


def generate_trace(
    profile: TrafficProfile | None = None, *, seed: int = 1
) -> list[TimedPacket]:
    """Synthesize a whole interleaved benign trace."""
    profile = profile or TrafficProfile()
    rng = random.Random(seed)
    streams: list[list[TimedPacket]] = []
    clock = 0.0
    for index in range(profile.flows):
        clock += rng.expovariate(1.0 / profile.mean_interarrival)
        client = f"10.{rng.randrange(1, 250)}.{rng.randrange(1, 250)}.{rng.randrange(2, 250)}"
        server = f"192.168.{rng.randrange(1, 250)}.{rng.randrange(2, 250)}"
        if rng.random() < profile.udp_fraction:
            streams.append(
                generate_udp_exchange(
                    rng,
                    start_time=clock,
                    client=client,
                    server=server,
                    client_port=1024 + (index % 60000),
                )
            )
            continue
        flow = generate_flow(
            rng,
            profile,
            start_time=clock,
            client=client,
            server=server,
            client_port=1024 + (index % 60000),
        )
        streams.append(flow.packets)
    return merge_streams(streams)


def merge_streams(streams: list[list[TimedPacket]]) -> list[TimedPacket]:
    """Interleave per-flow packet lists by timestamp (stable)."""
    return list(heapq.merge(*streams, key=lambda p: p.timestamp))


def inject_attacks(
    trace: list[TimedPacket], attacks: list[list[TimedPacket]], *, spread: float | None = None
) -> list[TimedPacket]:
    """Blend attack flows into a benign trace, preserving time order.

    Attack packet timestamps are shifted to spread the flows across the
    trace's duration (or ``spread`` seconds when given).
    """
    if not trace:
        return merge_streams(attacks)
    horizon = spread if spread is not None else max(p.timestamp for p in trace)
    shifted: list[list[TimedPacket]] = []
    for index, attack in enumerate(attacks):
        if not attack:
            continue
        base = attack[0].timestamp
        offset = horizon * (index + 1) / (len(attacks) + 1)
        shifted.append(
            [TimedPacket(p.timestamp - base + offset, p.ip) for p in attack]
        )
    return merge_streams([trace] + shifted)
