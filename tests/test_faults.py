"""Fault tolerance: injection plans, quarantine, supervision, cleanup.

The contract under test is the runtime's "never silently" guarantee:
whatever a worker failure or a malformed frame costs, the merged report
accounts for it exactly -- ``examined + shed + quarantined + lost``
equals the input -- and a clean supervised run stays byte-identical to
the serial reference.
"""

from __future__ import annotations

import multiprocessing as mp

import pytest

from repro.evasion import build_attack
from repro.packet import IPv4Packet, TimedPacket
from repro.packet.errors import MalformedPacketError
from repro.runtime import (
    DECODE_ERRORS,
    EngineSpec,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ParallelRunner,
    Quarantine,
    RunnerConfig,
    SerialRunner,
    WorkerFailure,
    decode_packets,
)
from repro.signatures import SplitPolicy
from repro.traffic import TrafficProfile, generate_trace, inject_attacks

from helpers import ATTACK_SIGNATURE, SIGNATURE_OFFSET, attack_payload, attack_ruleset


def make_spec() -> EngineSpec:
    return EngineSpec(rules=attack_ruleset(), split_policy=SplitPolicy(piece_length=8))


def gauntlet_trace(flows: int = 30) -> list[TimedPacket]:
    trace = generate_trace(TrafficProfile(flows=flows), seed=7)
    span = (SIGNATURE_OFFSET, len(ATTACK_SIGNATURE))
    attacks = [
        build_attack(
            name,
            attack_payload(),
            signature_span=span,
            src=f"10.66.0.{i + 1}",
            dst_port=80,
            seed=i,
        )
        for i, name in enumerate(["tcp_seg_8", "ip_frag_8", "stealth_segments"])
    ]
    return inject_attacks(trace, attacks)


def supervised_config(**overrides) -> RunnerConfig:
    """Fast failure detection so supervision tests finish in CI time."""
    defaults = dict(
        batch_size=32,
        max_restarts=2,
        restart_backoff=0.01,
        heartbeat_interval=0.05,
        heartbeat_timeout=1.0,
        drain_timeout=60.0,
    )
    defaults.update(overrides)
    return RunnerConfig(**defaults)


def assert_accounting(report, n_input: int) -> None:
    """The never-silently identity: every input packet is disposed of."""
    total = (
        report.packets
        + report.shed_packets
        + report.quarantined_packets
        + report.degraded_packets
    )
    assert total == n_input, (
        f"accounting hole: examined={report.packets} shed={report.shed_packets} "
        f"quarantined={report.quarantined_packets} lost={report.degraded_packets} "
        f"!= input={n_input}"
    )


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------


def test_fault_plan_parse_grammar():
    plan = FaultPlan.parse(["crash:shard=1,at=500", "stall:at=10,seconds=0.25"])
    assert plan.specs == (
        FaultSpec(FaultKind.CRASH, shard=1, at=500),
        FaultSpec(FaultKind.STALL, shard=0, at=10, seconds=0.25),
    )
    assert "crash:shard=1,at=500" in plan.describe()


@pytest.mark.parametrize(
    "text",
    [
        "segfault:shard=0",  # unknown kind
        "crash:when=5",  # unknown field
        "crash:shard=x",  # bad int
        "stall:shard=0,at=5",  # timed kind without seconds
        "crash:shard=-1",  # negative shard
    ],
)
def test_fault_plan_parse_rejects(text):
    with pytest.raises(ValueError):
        FaultPlan.parse([text])


def test_fault_plan_random_is_deterministic():
    one = FaultPlan.random(42, shards=4)
    two = FaultPlan.random(42, shards=4)
    assert one == two
    assert one.seed == 42
    assert 1 <= len(one.specs) <= 3
    assert all(0 <= spec.shard < 4 for spec in one.specs)
    assert FaultPlan.random(43, shards=4) != one


def test_for_shard_orders_by_packet_index():
    plan = FaultPlan.parse(
        ["stall:shard=1,at=50,seconds=0.1", "decode:shard=1,at=5", "crash:shard=0,at=1"]
    )
    assert [spec.at for spec in plan.for_shard(1)] == [5, 50]
    assert [spec.kind for spec in plan.for_shard(0)] == [FaultKind.CRASH]


def test_injector_in_process_ignores_process_faults():
    """crash/hang must never take down the SerialRunner's own process."""
    plan = FaultPlan.parse(["crash:shard=0,at=0", "hang:shard=0,at=0"])
    injector = FaultInjector(plan, 0, allow_process_faults=False)
    injector.before_batch(0, [None] * 4)  # returns instead of exiting
    assert injector.pending == 0


def test_injector_decode_fault_raises_packet_error():
    plan = FaultPlan.parse(["decode:shard=0,at=2"])
    injector = FaultInjector(plan, 0, allow_process_faults=False)
    with pytest.raises(MalformedPacketError):
        injector.before_batch(0, [None] * 4)  # at=2 falls inside [0, 4)
    assert injector.pending == 0  # one-shot: consumed even though it raised
    late = FaultInjector(plan, 0, allow_process_faults=False)
    with pytest.raises(MalformedPacketError):
        # Catch-up semantics: a trigger index the batching skipped past
        # still fires on the next batch rather than being lost.
        late.before_batch(4, [None] * 4)


def test_injector_skew_accumulates():
    plan = FaultPlan.parse(
        ["skew:shard=0,at=0,seconds=100", "skew:shard=0,at=5,seconds=-40"]
    )
    injector = FaultInjector(plan, 0, allow_process_faults=False)
    injector.before_batch(0, [None] * 10)
    assert injector.clock_skew == pytest.approx(60.0)


# ---------------------------------------------------------------------------
# Quarantine
# ---------------------------------------------------------------------------


def test_decode_packets_quarantines_garbage():
    quarantine = Quarantine()
    good = gauntlet_trace(flows=2)[:5]
    items = [good[0], b"\x00\x01", (1.5, b"junk"), good[1], bytes(range(20))]
    out = list(decode_packets(items, quarantine))
    assert out[:1] == [good[0]]
    assert good[1] in out
    assert quarantine.total == len(items) - len(out)
    assert all(count > 0 for count in quarantine.counts.values())


def test_serial_runner_survives_garbage_and_counts_it():
    trace = gauntlet_trace(flows=5)
    garbage = [b"", b"\xff" * 3, (0.5, b"\x45\x00")]
    clean = SerialRunner(make_spec(), shards=2).run(trace)
    mixed = SerialRunner(make_spec(), shards=2).run(list(trace) + garbage)
    assert mixed.quarantined_packets == len(garbage)
    assert mixed.is_degraded
    # Quarantined junk never changes what the valid traffic produced.
    assert mixed.digest() == clean.digest()
    assert_accounting(mixed, len(trace) + len(garbage))


def test_engine_counts_transport_decode_errors():
    """A truncated TCP header is counted, not raised, at the engine level."""
    spec = make_spec()
    runner = SerialRunner(spec, shards=1)
    bad_transport = TimedPacket(
        0.0, IPv4Packet(src="10.0.0.1", dst="10.0.0.2", protocol=6, payload=b"\x01")
    )
    report = runner.run([bad_transport])
    assert report.stats.packets_total == 1
    assert report.stats.decode_errors == 1


def test_injected_decode_fault_quarantines_batch():
    trace = gauntlet_trace(flows=5)
    config = RunnerConfig(
        batch_size=16, faults=FaultPlan.parse(["decode:shard=0,at=0"])
    )
    report = SerialRunner(make_spec(), shards=2, config=config).run(trace)
    # The whole first routed bucket for shard 0 (at most one batch_size,
    # less after the per-shard split) is quarantined conservatively.
    quarantined = report.quarantined.get("MalformedPacketError")
    assert quarantined is not None and 1 <= quarantined <= 16
    assert_accounting(report, len(trace))


# ---------------------------------------------------------------------------
# Supervision
# ---------------------------------------------------------------------------


def test_supervised_clean_run_matches_serial():
    trace = gauntlet_trace()
    config = supervised_config()
    serial = SerialRunner(make_spec(), shards=2, config=config).run(trace)
    parallel = ParallelRunner(make_spec(), workers=2, config=config).run(trace)
    assert parallel.digest() == serial.digest()
    assert parallel.alerts == serial.alerts
    assert parallel.degraded == []
    assert parallel.worker_restarts == 0
    assert mp.active_children() == []


def test_supervised_crash_restart_and_loss_accounting():
    trace = gauntlet_trace()
    config = supervised_config(faults=FaultPlan.parse(["crash:shard=0,at=120"]))
    report = ParallelRunner(make_spec(), workers=2, config=config).run(trace)
    assert report.worker_restarts >= 1
    assert report.degraded
    assert any(iv.reason == "crash" for iv in report.degraded)
    assert report.degraded_packets > 0
    assert_accounting(report, len(trace))
    # Salvaged + surviving alerts are a subset of the serial reference.
    serial = SerialRunner(make_spec(), shards=2, config=supervised_config()).run(trace)
    reference = {(a.timestamp, str(a.flow), a.sid, a.msg) for a in serial.alerts}
    produced = {(a.timestamp, str(a.flow), a.sid, a.msg) for a in report.alerts}
    assert produced <= reference
    # The untouched shard's alerts survive byte-identical.
    ref_by_shard = {s.shard: s.alerts for s in serial.shards}
    for shard_report in report.shards:
        if shard_report.shard != 0:
            assert shard_report.alerts == ref_by_shard[shard_report.shard]
    assert mp.active_children() == []


def test_supervised_hang_detection_restarts_worker():
    trace = gauntlet_trace()
    config = supervised_config(
        heartbeat_timeout=0.4,
        max_restarts=1,
        faults=FaultPlan.parse(["hang:shard=1,at=60"]),
    )
    report = ParallelRunner(make_spec(), workers=2, config=config).run(trace)
    assert any(iv.reason == "hang" for iv in report.degraded)
    assert report.worker_restarts >= 1
    assert_accounting(report, len(trace))
    assert mp.active_children() == []


def test_supervised_budget_exhaustion_completes_degraded():
    """A shard that keeps dying is buried, not retried forever -- and the
    run still completes with its loss on the books."""
    trace = gauntlet_trace()
    config = supervised_config(
        max_restarts=1, faults=FaultPlan.parse(["crash:shard=0,at=0"])
    )
    report = ParallelRunner(make_spec(), workers=2, config=config).run(trace)
    # Generation 0 and its single replacement both crash at packet 0.
    assert report.worker_restarts == 1
    assert len([iv for iv in report.degraded if iv.shard == 0]) == 2
    assert report.degraded[-1].open  # the shard stayed dead
    assert_accounting(report, len(trace))
    assert mp.active_children() == []


def test_legacy_mode_still_fails_fast():
    """max_restarts=0 preserves the historical fail-fast contract."""
    trace = gauntlet_trace(flows=3)
    config = RunnerConfig(batch_size=32, faults=FaultPlan.parse(["crash:shard=0,at=0"]))
    assert not config.supervised
    with pytest.raises(WorkerFailure):
        ParallelRunner(make_spec(), workers=2, config=config).run(trace)
    assert mp.active_children() == []


def test_no_zombies_after_legacy_failure():
    """The finally-block audit: an induced failure leaves no child
    processes (and no stuck queue feeder threads keeping them alive)."""
    spec = EngineSpec(rules=None)  # construction fails in every worker
    with pytest.raises(WorkerFailure):
        ParallelRunner(spec, workers=3).run(gauntlet_trace(flows=2))
    assert mp.active_children() == []


def test_config_validation():
    with pytest.raises(ValueError):
        RunnerConfig(max_restarts=-1)
    with pytest.raises(ValueError):
        RunnerConfig(restart_backoff=0.0)
    with pytest.raises(ValueError):
        RunnerConfig(heartbeat_timeout=0.1, heartbeat_interval=0.2)


# ---------------------------------------------------------------------------
# Property-based: garbage never escapes the decode boundary
# ---------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


def _parses_cleanly(data: bytes) -> bool:
    try:
        IPv4Packet.parse(data)
    except DECODE_ERRORS:
        return False
    return True


@given(
    frames=st.lists(
        st.one_of(
            st.binary(min_size=0, max_size=60),
            # Start from a plausible IPv4 first byte so some inputs get
            # deep into the parser before failing (or even succeed).
            st.builds(
                lambda body: b"\x45" + body, st.binary(min_size=0, max_size=59)
            ),
        ),
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_garbage_frames_never_escape_the_pipeline(frames):
    """Any byte string either parses and is examined, or is quarantined;
    nothing raises out of ``run`` and the ledger matches the oracle."""
    bad = sum(0 if _parses_cleanly(frame) else 1 for frame in frames)
    report = SerialRunner(make_spec(), shards=2).run(frames)
    assert report.quarantined_packets == bad
    assert report.packets == len(frames) - bad
    assert_accounting(report, len(frames))


@given(data=st.binary(min_size=0, max_size=80))
@settings(max_examples=120, deadline=None)
def test_single_frame_decode_is_total(data):
    """decode_packets is total over bytes: yield or quarantine, never raise."""
    quarantine = Quarantine()
    out = list(decode_packets([data], quarantine))
    assert len(out) + quarantine.total == 1
    if quarantine.total:
        ((cause, count),) = quarantine.counts.items()
        assert count == 1
        assert quarantine.examples[cause]  # an exemplar was retained
