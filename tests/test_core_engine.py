"""Integration tests: the Split-Detect engine and the baselines, end to end.

The detection matrix here is the executable form of the paper's Table 3:
every catalog evasion is detected by Split-Detect and by the conventional
IPS, while the naive per-packet matcher misses exactly the strategies
that hide the signature from single-packet inspection.
"""

import pytest

from helpers import (
    ATTACK_SIGNATURE,
    attack_payload,
    attack_ruleset,
    signature_span,
)
from repro.core import (
    AlertKind,
    ConventionalIPS,
    DivertReason,
    NaivePacketIPS,
    SplitDetectIPS,
)
from repro.evasion import STRATEGIES, Victim, build_attack
from repro.signatures import SplitPolicy


def detected(alerts, sid=5001):
    """An attack counts as detected on a signature hit (full or partial)
    for the right sid, or on an ambiguity alert (evasion in progress)."""
    for alert in alerts:
        if alert.kind in (AlertKind.SIGNATURE, AlertKind.PARTIAL_SIGNATURE):
            if alert.sid == sid:
                return True
        elif alert.kind is AlertKind.AMBIGUITY:
            return True
    return False


def run_ips(ips, packets):
    alerts = []
    for packet in packets:
        alerts.extend(ips.process(packet))
    return alerts


def fresh_split_detect(**kw):
    return SplitDetectIPS(attack_ruleset(), split_policy=SplitPolicy(piece_length=8), **kw)


class TestBenignTraffic:
    def test_no_alerts_no_diversion(self):
        ips = fresh_split_detect()
        payload = (b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n" + b"<html>hi</html>" * 100)
        packets = build_attack("plain", payload)
        alerts = run_ips(ips, packets)
        assert alerts == []
        assert ips.stats.diversions == 0
        assert ips.stats.slow_packets == 0

    def test_benign_stays_entirely_on_fast_path(self):
        ips = fresh_split_detect()
        payload = b"innocuous content " * 200
        packets = build_attack("mss_segments", payload)
        run_ips(ips, packets)
        assert ips.stats.fast_packets == ips.stats.packets_total


class TestDetectionMatrix:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_split_detect_catches_every_strategy(self, name):
        ips = fresh_split_detect()
        packets = build_attack(name, attack_payload(), signature_span=signature_span())
        alerts = run_ips(ips, packets)
        assert detected(alerts), f"Split-Detect missed {name}"

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_conventional_catches_every_strategy(self, name):
        ips = ConventionalIPS(attack_ruleset())
        packets = build_attack(name, attack_payload(), signature_span=signature_span())
        alerts = run_ips(ips, packets)
        assert detected(alerts), f"conventional IPS missed {name}"

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_naive_is_evaded_exactly_as_cataloged(self, name):
        strategy = STRATEGIES[name]
        ips = NaivePacketIPS(attack_ruleset())
        packets = build_attack(name, attack_payload(), signature_span=signature_span())
        alerts = run_ips(ips, packets)
        saw = any(a.sid == 5001 for a in alerts)
        assert saw != strategy.evades_naive, (
            f"{name}: naive IPS {'caught' if saw else 'missed'} the attack, "
            f"catalog says evades_naive={strategy.evades_naive}"
        )

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_attack_validity_reconfirmed_with_ips_in_path(self, name):
        # Sanity: the same packet sequence the IPS judged really does reach
        # the victim (detection without delivery would prove nothing).
        strategy = STRATEGIES[name]
        packets = build_attack(name, attack_payload(), signature_span=signature_span())
        victim = Victim(policy=strategy.victim_policy, hops_behind_ips=strategy.victim_hops)
        victim.deliver_all(packets)
        assert victim.received(ATTACK_SIGNATURE)


class TestDiversionPlumbing:
    def test_piece_match_divert_confirms_on_slow_path(self):
        ips = fresh_split_detect()
        packets = build_attack("plain", attack_payload())
        alerts = run_ips(ips, packets)
        assert ips.divert_reasons[DivertReason.PIECE_MATCH] == 1
        assert any(a.kind is AlertKind.SIGNATURE and a.sid == 5001 for a in alerts)

    def test_diverted_flow_stays_diverted(self):
        ips = fresh_split_detect()
        packets = build_attack("tcp_seg_8", attack_payload())
        run_ips(ips, packets[: len(packets) // 2])
        mid_slow = ips.stats.slow_packets
        assert mid_slow > 0
        run_ips(ips, packets[len(packets) // 2 :])
        # Everything after the first divert went to the slow path.
        assert ips.stats.slow_packets > mid_slow

    def test_diversion_recorded_once_per_flow(self):
        ips = fresh_split_detect()
        packets = build_attack("tcp_seg_8", attack_payload())
        run_ips(ips, packets)
        assert ips.stats.diversions == 1
        assert len(ips.diversions) == 1

    def test_flow_leaves_diverted_set_on_close(self):
        ips = fresh_split_detect()
        packets = build_attack("tcp_seg_8", attack_payload())
        run_ips(ips, packets)  # plan ends with FIN; one direction only
        # The FIN only closes one direction; force idle eviction.
        ips.evict_idle(now=1e9)
        assert ips.diverted_flow_count == 0

    def test_fragmented_flow_diverts_and_reassembles(self):
        ips = fresh_split_detect()
        packets = build_attack("ip_frag_8", attack_payload())
        alerts = run_ips(ips, packets)
        assert ips.divert_reasons[DivertReason.IP_FRAGMENT] >= 1
        assert detected(alerts)

    def test_state_bytes_sum_both_paths(self):
        ips = fresh_split_detect()
        packets = build_attack("tcp_seg_8", attack_payload())
        run_ips(ips, packets[:-1])
        assert ips.state_bytes() == ips.fast_path.state_bytes() + ips.slow_path.state_bytes()
        assert ips.slow_path.state_bytes() > 0


class TestHousekeepingRegression:
    """evict_idle must prune *every* per-flow record, not just _diverted
    (probation counters, fail-open refusals, and fast-path monitor
    entries all used to leak on flows that died without a clean close)."""

    def _stalled_diverted_flow(self, ips):
        """Divert a benign flow via reordering, then abandon it mid-probation."""
        from repro.evasion import even_segments, plan_to_packets

        payload = b"benign filler content, nothing to see " * 60
        packets = plan_to_packets(even_segments(payload, 500))
        # SYN, then two data segments swapped; no FIN/RST ever arrives.
        run_ips(ips, [packets[0], packets[2], packets[1], packets[3]])
        assert ips.divert_reasons[DivertReason.OUT_OF_ORDER] == 1

    def test_evict_idle_prunes_probation(self):
        ips = fresh_split_detect()
        self._stalled_diverted_flow(ips)
        assert ips._probation
        ips.evict_idle(now=1e9)
        assert not ips._probation
        assert ips.diverted_flow_count == 0

    def test_evict_idle_prunes_refused(self):
        ips = fresh_split_detect(slow_capacity_flows=0)
        alerts = run_ips(ips, build_attack("plain", attack_payload())[:-1])
        assert any(a.kind is AlertKind.RESOURCE for a in alerts)
        assert ips._refused
        ips.evict_idle(now=1e9)
        assert not ips._refused

    def test_evict_idle_reclaims_fastpath_monitor(self):
        ips = fresh_split_detect()
        payload = b"plain benign web traffic " * 40
        packets = build_attack("plain", payload)
        run_ips(ips, packets[:-1])  # no close
        assert ips.fast_path.tracked_flows > 0
        ips.evict_idle(now=1e9)
        assert ips.fast_path.tracked_flows == 0


class TestBatchProcessing:
    """process_batch must be packet-for-packet identical to process."""

    @staticmethod
    def interleaved_trace():
        import itertools

        streams = [
            build_attack("plain", b"ordinary web page content " * 100, src_port=51000),
            build_attack("tcp_seg_8", attack_payload(), src_port=51001),
            build_attack("plain", attack_payload(), src_port=51002),
        ]
        return [
            packet
            for group in itertools.zip_longest(*streams)
            for packet in group
            if packet is not None
        ]

    def test_split_detect_batch_equals_sequential(self):
        packets = self.interleaved_trace()
        sequential = fresh_split_detect()
        seq_alerts = run_ips(sequential, packets)
        batched = fresh_split_detect()
        batch_alerts = []
        for start in range(0, len(packets), 7):  # odd size: batches cut mid-flow
            batch_alerts.extend(batched.process_batch(packets[start : start + 7]))
        assert batch_alerts == seq_alerts
        assert batched.stats == sequential.stats
        assert batched.divert_reasons == sequential.divert_reasons
        assert batched.diverted_flow_count == sequential.diverted_flow_count

    def test_naive_batch_equals_sequential(self):
        packets = build_attack("plain", attack_payload())
        sequential = NaivePacketIPS(attack_ruleset())
        seq_alerts = run_ips(sequential, packets)
        batched = NaivePacketIPS(attack_ruleset())
        batch_alerts = batched.process_batch(packets)
        assert batch_alerts == seq_alerts
        assert batched.packets_processed == sequential.packets_processed
        assert batched.bytes_scanned == sequential.bytes_scanned

    def test_conventional_batch_equals_sequential(self):
        packets = self.interleaved_trace()
        sequential = ConventionalIPS(attack_ruleset())
        seq_alerts = run_ips(sequential, packets)
        batched = ConventionalIPS(attack_ruleset())
        batch_alerts = batched.process_batch(packets)
        assert batch_alerts == seq_alerts


class TestPartialSignatureRecovery:
    def test_attack_started_before_diversion_is_still_caught(self):
        """Prefix in-order, then tiny segments: the suffix matcher's case."""
        from repro.evasion import Seg, plan_to_packets

        payload = attack_payload()
        start, length = signature_span()
        # First packet: everything up to mid-signature (in order, large).
        cut = start + length // 2
        segs = [Seg(offset=0, data=payload[:cut])]
        # Rest in tiny segments (diverts on the first one).
        for offset in range(cut, len(payload), 4):
            segs.append(Seg(offset=offset, data=payload[offset : offset + 4]))
        packets = plan_to_packets(segs)
        ips = fresh_split_detect()
        alerts = run_ips(ips, packets)
        assert detected(alerts)

    def test_partial_alert_kind_used_when_prefix_unseen(self):
        from repro.evasion import Seg, plan_to_packets

        payload = attack_payload()
        start, length = signature_span()
        cut = start + 6  # cut inside the first piece: prefix truly unseen
        segs = [Seg(offset=0, data=payload[:cut])]
        for offset in range(cut, len(payload), 4):
            segs.append(Seg(offset=offset, data=payload[offset : offset + 4]))
        packets = plan_to_packets(segs)
        ips = fresh_split_detect()
        alerts = run_ips(ips, packets)
        kinds = {a.kind for a in alerts if a.sid == 5001}
        assert AlertKind.PARTIAL_SIGNATURE in kinds or AlertKind.SIGNATURE in kinds


class TestConventionalBaseline:
    def test_alerts_once_per_occurrence(self):
        ips = ConventionalIPS(attack_ruleset())
        payload = attack_payload()
        packets = build_attack("mss_segments", payload)
        alerts = run_ips(ips, packets)
        assert len([a for a in alerts if a.sid == 5001]) == 1

    def test_port_constraint_respected(self):
        ips = ConventionalIPS(attack_ruleset())
        packets = build_attack("mss_segments", attack_payload(), dst_port=9999)
        alerts = run_ips(ips, packets)
        assert not any(a.sid == 5001 for a in alerts)

    def test_state_grows_with_flows(self):
        ips = ConventionalIPS(attack_ruleset())
        benign = b"just text " * 100
        for port in (1001, 1002, 1003):
            run_ips(ips, build_attack("mss_segments", benign, src_port=port)[:-1])
        assert ips.active_flows == 3
        assert ips.state_bytes() > 0

    def test_ambiguity_alert_on_inconsistent_overlap(self):
        ips = ConventionalIPS(attack_ruleset())
        packets = build_attack("ttl_chaff", attack_payload())
        alerts = run_ips(ips, packets)
        assert any(a.kind is AlertKind.AMBIGUITY for a in alerts)

    def test_naive_has_no_state(self):
        ips = NaivePacketIPS(attack_ruleset())
        run_ips(ips, build_attack("mss_segments", attack_payload()))
        assert ips.state_bytes() == 0
