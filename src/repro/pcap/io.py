"""Reading and writing pcap savefiles at the raw-record and IPv4-packet level.

``PcapWriter``/``PcapReader`` move (timestamp, bytes) records; the
``write_trace``/``read_trace`` helpers convert to and from the library's
``TimedPacket`` view, handling both raw-IP and Ethernet link types.
"""

from __future__ import annotations

import io
import os
from collections.abc import Iterable, Iterator
from typing import BinaryIO

from ..packet import ETHERTYPE_IPV4, EthernetFrame, IPv4Packet, TimedPacket
from .format import (
    GLOBAL_HEADER_SIZE,
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IP,
    RECORD_HEADER_SIZE,
    PcapFormatError,
    PcapHeader,
    decode_global_header,
    decode_record_header,
    encode_global_header,
    encode_record_header,
)


class PcapWriter:
    """Streams (timestamp, packet bytes) records into a savefile.

    Usable as a context manager; the global header is written on
    construction so even an empty capture is a valid file.
    """

    def __init__(
        self,
        stream: BinaryIO | str | os.PathLike,
        *,
        linktype: int = LINKTYPE_RAW_IP,
        snaplen: int = 65535,
    ) -> None:
        if isinstance(stream, (str, os.PathLike)):
            self._stream: BinaryIO = open(stream, "wb")
            self._owns_stream = True
        else:
            self._stream = stream
            self._owns_stream = False
        self.linktype = linktype
        self.snaplen = snaplen
        self.records_written = 0
        self._stream.write(encode_global_header(linktype, snaplen))

    def write_record(self, timestamp: float, data: bytes) -> None:
        """Append one record, truncating to the snaplen if necessary."""
        captured = data[: self.snaplen]
        self._stream.write(encode_record_header(timestamp, len(captured), len(data)))
        self._stream.write(captured)
        self.records_written += 1

    def write_packet(self, packet: TimedPacket) -> None:
        """Append an IPv4 packet, framing it to match the file's linktype."""
        raw = packet.ip.serialize()
        if self.linktype == LINKTYPE_ETHERNET:
            raw = EthernetFrame(ethertype=ETHERTYPE_IPV4, payload=raw).serialize()
        self.write_record(packet.timestamp, raw)

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PcapReader:
    """Iterates (timestamp, captured bytes) records out of a savefile."""

    def __init__(self, stream: BinaryIO | str | os.PathLike) -> None:
        if isinstance(stream, (str, os.PathLike)):
            self._stream: BinaryIO = open(stream, "rb")
            self._owns_stream = True
        else:
            self._stream = stream
            self._owns_stream = False
        self.header: PcapHeader = decode_global_header(
            self._stream.read(GLOBAL_HEADER_SIZE)
        )

    @property
    def linktype(self) -> int:
        return self.header.linktype

    def __iter__(self) -> Iterator[tuple[float, bytes]]:
        while True:
            header = self._stream.read(RECORD_HEADER_SIZE)
            if not header:
                return
            timestamp, captured, _original = decode_record_header(
                header, self.header.byte_order, nanosecond=self.header.nanosecond
            )
            data = self._stream.read(captured)
            if len(data) < captured:
                raise PcapFormatError(
                    f"truncated record body: need {captured} bytes, got {len(data)}"
                )
            yield timestamp, data

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_trace(
    path: str | os.PathLike,
    packets: Iterable[TimedPacket],
    *,
    linktype: int = LINKTYPE_RAW_IP,
) -> int:
    """Write a sequence of timed IPv4 packets to ``path``; returns the count."""
    with PcapWriter(path, linktype=linktype) as writer:
        for packet in packets:
            writer.write_packet(packet)
        return writer.records_written


def read_trace(path: str | os.PathLike) -> Iterator[TimedPacket]:
    """Yield timed IPv4 packets from a savefile, unwrapping Ethernet frames.

    Records that do not contain IPv4 (e.g. ARP) are skipped silently, as
    tools like tcpdump do when filtering on ``ip``.
    """
    with PcapReader(path) as reader:
        ethernet = reader.linktype == LINKTYPE_ETHERNET
        if not ethernet and reader.linktype != LINKTYPE_RAW_IP:
            raise PcapFormatError(f"unsupported linktype {reader.linktype}")
        for timestamp, data in reader:
            if ethernet:
                frame = EthernetFrame.parse(data)
                if frame.ethertype != ETHERTYPE_IPV4:
                    continue
                data = frame.payload
            yield TimedPacket(timestamp, IPv4Packet.parse(data))


def read_records(path: str | os.PathLike) -> Iterator[tuple[float, bytes]]:
    """Yield undecoded ``(timestamp, IP bytes)`` records from a savefile.

    The quarantine-aware feed for the runners: Ethernet framing is
    unwrapped and non-IPv4 ethertypes skipped, but the IP layer is *not*
    parsed here -- a corrupt record reaches the caller as raw bytes, so
    the runtime's decode quarantine can count it per cause instead of
    this reader raising mid-trace (:func:`read_trace`'s behaviour).  A
    record too short to carry an Ethernet header passes through whole,
    for the same reason.
    """
    with PcapReader(path) as reader:
        ethernet = reader.linktype == LINKTYPE_ETHERNET
        if not ethernet and reader.linktype != LINKTYPE_RAW_IP:
            raise PcapFormatError(f"unsupported linktype {reader.linktype}")
        for timestamp, data in reader:
            if ethernet:
                try:
                    frame = EthernetFrame.parse(data)
                except Exception:
                    yield timestamp, data
                    continue
                if frame.ethertype != ETHERTYPE_IPV4:
                    continue
                data = frame.payload
            yield timestamp, data


def trace_to_bytes(packets: Iterable[TimedPacket]) -> bytes:
    """Render a trace to an in-memory pcap image (handy for tests)."""
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    for packet in packets:
        writer.write_packet(packet)
    return buffer.getvalue()
