"""Service mode: ``splitdetect serve`` as a long-lived daemon.

Everything the batch CLI lacks for continuous operation, composed from
the existing layers rather than re-implemented:

- :mod:`~repro.service.sources` -- pluggable ingestion (pcap replay,
  pcap tail-follow, framed TCP/Unix socket protocol), all feeding
  undecoded records so the runtime's quarantine owns malformed input;
- :mod:`~repro.service.tenancy` -- per-tenant signature sets behind a
  configurable keyer, each tenant a shared-nothing
  :class:`~repro.runtime.worker.ShardProcessor` with its own compiled
  AC tables, counters, and rule generation;
- :mod:`~repro.service.shedding` -- adaptive load shedding off live
  backlog and stage-p99 signals, protecting diverted and force-traced
  flows absolutely;
- :mod:`~repro.service.lifecycle` -- the loop itself: hot reload at
  batch boundaries via the worker control protocol, clean SIGTERM
  drain, and a final report whose loss accounting closes
  (``examined + shed + quarantined + lost == input``).

See DESIGN.md "Service mode" for the full contract.
"""

from .lifecycle import ServiceConfig, ServiceReport, SplitDetectService
from .shedding import LoadShedder, ShedPolicy
from .sources import (
    FRAME_MAGIC,
    MAX_FRAME_BYTES,
    PcapTailSource,
    ReplaySource,
    SocketSource,
    encode_record,
    open_source,
    send_records,
)
from .tenancy import DEFAULT_TENANT, TENANT_KEYERS, TenantSpec, TenantTable

__all__ = [
    "DEFAULT_TENANT",
    "FRAME_MAGIC",
    "LoadShedder",
    "MAX_FRAME_BYTES",
    "PcapTailSource",
    "ReplaySource",
    "ServiceConfig",
    "ServiceReport",
    "ShedPolicy",
    "SocketSource",
    "SplitDetectService",
    "TENANT_KEYERS",
    "TenantSpec",
    "TenantTable",
    "encode_record",
    "open_source",
    "send_records",
]
