"""The analyzer core: rule registry, per-file context, and the scan loop.

A rule is a class with an ``id`` (``SDxxx``), a default path scope, and
a ``check(ctx)`` that reports findings through the context.  The context
owns pragma suppression, severity overrides, and source extraction so
rules only contain domain logic.  Registration is import-time via the
:func:`register` decorator; :mod:`repro.devtools.splitcheck.rules`
imports every rule module for its side effect.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from .config import Config
from .findings import Finding, Severity
from .pragmas import PragmaIndex

__all__ = [
    "FileContext",
    "Rule",
    "all_rules",
    "build_graph",
    "check_paths",
    "iter_python_files",
    "register",
]


@dataclass
class FileContext:
    """Everything one rule invocation may look at for one file."""

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    lines: list[str]
    pragmas: PragmaIndex
    severity_override: Severity | None = None
    findings: list[Finding] = field(default_factory=list)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def report(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> None:
        """Record a finding unless a line pragma suppresses it."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.pragmas.ignores(lineno, rule.id):
            return
        severity = self.severity_override or rule.severity
        self.findings.append(
            Finding(
                rule=rule.id,
                path=self.rel_path,
                line=lineno,
                col=col + 1,
                message=message,
                severity=severity,
                source=self.source_line(lineno),
            )
        )


class Rule:
    """Base class: subclass, set the class attributes, implement check."""

    id: str = "SD000"
    title: str = ""
    severity: Severity = Severity.ERROR
    #: fnmatch globs (POSIX form) a file must match for the rule to run.
    #: Matched against both the absolute path and the config-root-relative
    #: path, so ``*/repro/core/*.py`` works from any checkout location.
    default_paths: tuple[str, ...] = ("*.py",)
    #: True on :class:`~repro.devtools.splitcheck.project.ProjectRule`
    #: subclasses, which run once over the whole graph instead of per file.
    project: bool = False

    def applies_to(
        self,
        abs_path: str,
        rel_path: str,
        paths: tuple[str, ...],
        exclude: tuple[str, ...] = (),
    ) -> bool:
        if any(
            fnmatch(abs_path, pattern) or fnmatch(rel_path, pattern)
            for pattern in exclude
        ):
            return False
        return any(
            fnmatch(abs_path, pattern) or fnmatch(rel_path, pattern)
            for pattern in paths
        )

    def check(self, ctx: FileContext) -> None:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = cls.id.upper()
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {rule_id}: {existing} vs {cls}")
    _REGISTRY[rule_id] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """The registry, with every built-in rule module imported."""
    # Imported here (not at module top) to avoid a cycle: rule modules
    # import ``register`` from this module.
    from . import rules as _rules  # noqa: F401

    return dict(sorted(_REGISTRY.items()))


def iter_python_files(
    paths: list[Path], exclude: tuple[str, ...]
) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    out: list[Path] = []

    def excluded(candidate: Path) -> bool:
        posix = candidate.as_posix()
        return any(fnmatch(posix, pattern) for pattern in exclude)

    for path in paths:
        path = path.resolve()
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            if candidate not in seen and not excluded(candidate):
                seen.add(candidate)
                out.append(candidate)
    return out


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def check_paths(
    paths: list[Path],
    config: Config,
    *,
    select: frozenset[str] | None = None,
    cache_path: Path | None = None,
) -> tuple[list[Finding], int]:
    """Run every enabled rule over every file; returns (findings, files).

    ``select`` narrows to the named rules (CLI ``--select``); config
    ``disable`` always wins.  A file that fails to parse produces a
    single ``SD000`` syntax finding rather than aborting the scan.

    With ``cache_path`` set, unchanged files (by content fingerprint)
    reuse their cached facts and findings instead of re-parsing; the
    project pass always runs, over cached + fresh facts alike.
    """
    findings, files, _graph = _run(
        paths, config, select=select, cache_path=cache_path, need_graph=False
    )
    return findings, files


def build_graph(paths: list[Path], config: Config) -> "object":
    """The project graph for ``--graph``: facts for every scanned file."""
    _, _, graph = _run(
        paths, config, select=frozenset(), cache_path=None, need_graph=True
    )
    return graph


def _run(
    paths: list[Path],
    config: Config,
    *,
    select: frozenset[str] | None,
    cache_path: Path | None,
    need_graph: bool,
) -> tuple[list[Finding], int, "object"]:
    # Imported here (not at module top) to avoid cycles: the project and
    # cache layers import ``Rule``/``register`` from this module.
    from .cache import FactsCache, cache_signature, fingerprint
    from .facts import FileFacts, extract_facts
    from .project import ProjectContext, ProjectGraph, load_design_registry

    registry = all_rules()
    enabled: list[Rule] = []
    for rule_id, cls in registry.items():
        if rule_id in config.disable:
            continue
        if select is not None and rule_id not in select:
            continue
        enabled.append(cls())
    file_rules = [rule for rule in enabled if not rule.project]
    project_rules = [rule for rule in enabled if rule.project]

    cache: FactsCache | None = None
    if cache_path is not None:
        cache = FactsCache(
            cache_path, cache_signature(config, select, tuple(registry))
        )

    files = iter_python_files(paths, config.exclude)
    findings: list[Finding] = []
    facts_map: dict[str, FileFacts] = {}
    sources: dict[str, tuple[list[str], PragmaIndex]] = {}
    for file_path in files:
        raw = file_path.read_bytes()
        source = raw.decode("utf-8")
        rel = _rel_path(file_path, config.root)
        pragmas = PragmaIndex(source)
        if pragmas.skip_file:
            continue
        cached = cache.get(rel, fingerprint(raw)) if cache is not None else None
        if cached is not None:
            facts, file_findings = cached
        else:
            try:
                tree = ast.parse(source, filename=str(file_path))
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        rule="SD000",
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        message=f"file does not parse: {exc.msg}",
                        severity=Severity.ERROR,
                    )
                )
                continue
            file_findings = []
            abs_posix = file_path.resolve().as_posix()
            for rule in file_rules:
                rule_cfg = config.rule_config(rule.id)
                scope = (
                    rule_cfg.paths
                    if rule_cfg.paths is not None
                    else rule.default_paths
                )
                if not rule.applies_to(
                    abs_posix, rel, scope, rule_cfg.exclude or ()
                ):
                    continue
                ctx = FileContext(
                    path=file_path,
                    rel_path=rel,
                    source=source,
                    tree=tree,
                    lines=source.splitlines(),
                    pragmas=pragmas,
                    severity_override=(
                        Severity(rule_cfg.severity) if rule_cfg.severity else None
                    ),
                )
                rule.check(ctx)
                file_findings.extend(ctx.findings)
            facts = extract_facts(rel, tree, source)
            if cache is not None:
                cache.put(rel, fingerprint(raw), facts, file_findings)
        findings.extend(file_findings)
        facts_map[rel] = facts
        sources[rel] = (source.splitlines(), pragmas)

    graph = None
    if project_rules or need_graph:
        # A scan is "complete" when its roots cover the canonical package
        # tree; reverse checks (doc row -> code site) only make sense then,
        # or a partial `splitdetect check src/repro/core` would flag every
        # registration living elsewhere as orphaned.
        canonical = config.root / "src" / "repro"
        if not canonical.is_dir():
            canonical = config.root
        canonical = canonical.resolve()
        roots = [path.resolve() for path in paths]
        complete = any(
            canonical == root or canonical.is_relative_to(root)
            for root in roots
        )
        graph = ProjectGraph(facts_map, load_design_registry(config.root))
        for rule in project_rules:
            rule_cfg = config.rule_config(rule.id)
            scope = (
                rule_cfg.paths if rule_cfg.paths is not None else rule.default_paths
            )
            ctx = ProjectContext(
                graph=graph,
                config=config,
                sources=sources,
                severity_override=(
                    Severity(rule_cfg.severity) if rule_cfg.severity else None
                ),
                scope=scope,
                exclude=rule_cfg.exclude or (),
                complete=complete,
            )
            rule.check_project(ctx)
            findings.extend(ctx.findings)

    if cache is not None:
        cache.prune(set(facts_map))
        cache.write()
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files), graph
