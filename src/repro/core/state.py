"""Fast-path flow-state backends behind one protocol.

The fast path's monitor needs one tiny record per flow direction (an
expected sequence number plus a last-seen stamp).  *Where* that record
lives is the paper's whole state argument, so the storage is pluggable:

- :class:`DictBackend` -- an unbounded python dict.  Exact, simple, and
  the evaluation oracle; memory grows linearly with concurrent flows.
- :class:`TableBackend` -- the fixed set-associative
  :class:`~repro.core.flowtable.FlowTable` (the hardware-faithful SRAM
  model); exact until full, then per-bucket LRU eviction.
- :class:`~repro.core.sketch.SketchBackend` -- the 1M-flow regime:
  fixed compact slots for cold flows, a count-min sketch of per-flow
  anomaly counters, and a small exact hot set promoted on first
  anomaly.  Constant provisioned memory at any flow count, at the cost
  of a bounded false-divert rate (``benchmarks/bench_state_scale.py``
  measures it).

:class:`FastPath` talks to all three through :class:`StateBackend` and
follows a read/mutate/write-back discipline: ``get`` (or ``peek`` for
passive probes), mutate the returned :class:`FlowState`, then ``put`` it
back.  The write-back is a no-op for the dict, an LRU touch for the
table, and the one chance a compact backend gets to persist the update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Protocol

from ..packet import FlowKey
from .flowtable import FlowTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sketch imports us)
    from .sketch import CountMinSketch

__all__ = [
    "FAST_FLOW_STATE_BYTES",
    "DictBackend",
    "FlowState",
    "StateBackend",
    "TableBackend",
]

#: Per-flow-direction fast-path state in a hardware realization:
#: a 12-byte five-tuple fingerprint, a 4-byte expected sequence number,
#: and a flag byte, padded to an 8-byte-aligned table entry.
FAST_FLOW_STATE_BYTES = 24


@dataclass
class FlowState:
    """What the fast path remembers about one flow direction."""

    expected_seq: int | None = None
    last_seen: float = 0.0


class StateBackend(Protocol):
    """Storage contract for the fast path's per-flow monitor records.

    Mapping-shaped on purpose -- ``get``/``put``/``pop``/``items`` --
    plus the accounting hooks the telemetry and benchmarks read.
    """

    def get(self, flow: FlowKey) -> FlowState | None:
        """Active read (the flow just sent a packet); may promote/LRU-touch."""
        ...

    def peek(self, flow: FlowKey) -> FlowState | None:
        """Passive probe: no LRU promotion, no hit/miss accounting."""
        ...

    def put(self, flow: FlowKey, state: FlowState) -> None:
        """Write back a (possibly new) record after mutation."""
        ...

    def pop(self, flow: FlowKey, default: FlowState | None = None) -> FlowState | None:
        """Remove and return the record (dict-compatible default)."""
        ...

    def clear(self) -> None: ...

    def items(self) -> Iterator[tuple[FlowKey, FlowState]]:
        """Iterate the *exact* records (a compact backend yields only its
        hot set -- cold slots are keyless and self-recycling)."""
        ...

    def __len__(self) -> int: ...

    def record_anomaly(self, flow: FlowKey) -> None:
        """Note that this flow triggered a divert-worthy anomaly (feeds
        the sketch backend's promotion counters; exact backends ignore it)."""
        ...

    def evict_idle(self, now: float, idle_timeout: float) -> int:
        """Reclaim exact records idle past the timeout; returns the count.
        Exact backends drop the records; the sketch backend *demotes*
        them to cold slots (state survives, the exact entry is freed)."""
        ...

    def provisioned_bytes(self) -> int:
        """State footprint as a hardware design would count it: occupied
        entries for the unbounded dict, full provisioned capacity for the
        fixed-size backends."""
        ...

    @property
    def table_evictions(self) -> int:
        """Records lost to capacity (bucket LRU or cold-slot recycling);
        0 for the unbounded dict."""
        ...

    def sketch_snapshot(self) -> CountMinSketch | None:
        """A copy of the anomaly sketch for cross-shard merging (None for
        exact backends)."""
        ...


def _evict_idle_exact(backend: StateBackend, now: float, idle_timeout: float) -> int:
    """Shared idle sweep for the exact backends: scan and drop."""
    stale = [
        flow for flow, state in backend.items() if now - state.last_seen > idle_timeout
    ]
    for flow in stale:
        backend.pop(flow, None)
    return len(stale)


class DictBackend(dict):  # type: ignore[type-arg]
    """Unbounded exact state: a plain dict with the protocol's extras.

    Subclasses ``dict`` so the hot-path operations (``get``, ``pop``,
    ``items``, ``len``) are the native C implementations -- the protocol
    costs this backend nothing per packet.
    """

    peek = dict.get  # a dict read has no side effects to suppress

    def put(self, flow: FlowKey, state: FlowState) -> None:
        self[flow] = state

    def record_anomaly(self, flow: FlowKey) -> None:
        return None

    def evict_idle(self, now: float, idle_timeout: float) -> int:
        return _evict_idle_exact(self, now, idle_timeout)

    def provisioned_bytes(self) -> int:
        return len(self) * FAST_FLOW_STATE_BYTES

    @property
    def table_evictions(self) -> int:
        return 0

    def sketch_snapshot(self) -> CountMinSketch | None:
        return None


class TableBackend(FlowTable):  # type: ignore[type-arg]
    """Fixed set-associative state (the hardware SRAM model).

    Inherits the table's ``get``/``peek``/``put``/``pop``/``items``;
    adds the protocol's accounting surface.  ``put`` on a resident key
    re-appends within the bucket, which matches the LRU position the
    preceding ``get`` already gave it -- the write-back discipline does
    not perturb replacement order.
    """

    def __init__(
        self,
        buckets: int,
        ways: int,
        *,
        key_bytes: Callable[[FlowKey], bytes] | None = None,
    ) -> None:
        super().__init__(buckets, ways, key_bytes=key_bytes)

    def record_anomaly(self, flow: FlowKey) -> None:
        return None

    def evict_idle(self, now: float, idle_timeout: float) -> int:
        return _evict_idle_exact(self, now, idle_timeout)

    def provisioned_bytes(self) -> int:
        return self.capacity * FAST_FLOW_STATE_BYTES

    @property
    def table_evictions(self) -> int:
        return self.evictions

    def sketch_snapshot(self) -> CountMinSketch | None:
        return None
