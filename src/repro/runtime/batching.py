"""Fixed-size batch iteration shared by the runners and the CLI.

One helper, used everywhere a packet stream is consumed in batches: the
single-process run harness, the serial runner's router loop, and the
parallel runner's feeder.  Working from an iterator (not a list) is what
lets ``repro run`` stream a multi-GB pcap under a bounded footprint --
at most one batch of parsed packets is alive per pipeline stage.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import islice

from ..packet import TimedPacket
from ..packet.batch import PacketBatch
from .control import ControlMessage

__all__ = ["iter_batches", "iter_batches_with_controls", "rebatch_columns"]


def iter_batches(
    packets: Iterable[TimedPacket], size: int
) -> Iterator[list[TimedPacket]]:
    """Yield consecutive lists of at most ``size`` packets.

    Consumes lazily: each batch is materialized only when requested, so
    feeding from :func:`repro.pcap.read_trace` never holds more than one
    batch (per consumer) in memory.
    """
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    iterator = iter(packets)
    while True:
        batch = list(islice(iterator, size))
        if not batch:
            return
        yield batch


def rebatch_columns(
    batches: Iterable[PacketBatch], size: int
) -> Iterator[PacketBatch]:
    """Split oversized columnar batches down to at most ``size`` rows.

    Split-only by design: batches are never merged across capture
    buffers (a merge would force a copy and break the shared-buffer
    zero-copy contract), so a source already at or under ``size`` passes
    through untouched.  Quarantined exceptions ride on the first slice
    of a split batch so the feeder-side ledger sees each exactly once.
    """
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    for batch in batches:
        if len(batch) <= size:
            yield batch
            continue
        for start in range(0, len(batch), size):
            piece = batch.slice(start, start + size)
            if start == 0:
                piece.quarantined = batch.quarantined
            yield piece


def iter_batches_with_controls(
    items: Iterable["TimedPacket | ControlMessage"], size: int
) -> Iterator[tuple[str, "list[TimedPacket] | ControlMessage"]]:
    """Batch a packet stream that may carry interleaved control messages.

    Yields ``("batch", list[TimedPacket])`` and ``("ctl", ControlMessage)``
    items in stream order.  A control message flushes the batch under
    construction first, so every consumer applies the command at exactly
    the stream position the producer issued it -- the property that makes
    a hot reload deterministic with respect to the packet sequence.
    """
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    batch: list[TimedPacket] = []
    for item in items:
        if isinstance(item, ControlMessage):
            if batch:
                yield "batch", batch
                batch = []
            yield "ctl", item
            continue
        batch.append(item)
        if len(batch) >= size:
            yield "batch", batch
            batch = []
    if batch:
        yield "batch", batch
