"""Unit and property tests for the IPv4 packet model and fragmentation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet import (
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    IPv4Packet,
    MalformedPacketError,
    TruncatedPacketError,
    bytes_to_ip,
    fragment,
    internet_checksum,
    ip_to_bytes,
)


def make_packet(**kw):
    defaults = dict(src="10.0.0.1", dst="192.168.1.2", payload=b"hello world")
    defaults.update(kw)
    return IPv4Packet(**defaults)


class TestAddressConversion:
    def test_round_trip(self):
        for addr in ("0.0.0.0", "255.255.255.255", "10.1.2.3"):
            assert bytes_to_ip(ip_to_bytes(addr)) == addr

    def test_rejects_garbage(self):
        for bad in ("10.0.0", "10.0.0.0.0", "a.b.c.d", ""):
            with pytest.raises(MalformedPacketError):
                ip_to_bytes(bad)

    def test_rejects_wrong_length_bytes(self):
        with pytest.raises(MalformedPacketError):
            bytes_to_ip(b"\x01\x02\x03")


class TestSerializeParse:
    def test_round_trip_plain(self):
        pkt = make_packet(ttl=17, identification=0xBEEF, tos=0x10)
        parsed = IPv4Packet.parse(pkt.serialize())
        assert parsed == pkt

    def test_round_trip_fragment_fields(self):
        pkt = make_packet(more_fragments=True, fragment_offset=64)
        parsed = IPv4Packet.parse(pkt.serialize())
        assert parsed.more_fragments and parsed.fragment_offset == 64

    def test_round_trip_df(self):
        parsed = IPv4Packet.parse(make_packet(dont_fragment=True).serialize())
        assert parsed.dont_fragment and not parsed.more_fragments

    def test_header_checksum_is_valid(self):
        raw = make_packet().serialize()
        assert internet_checksum(raw[:20]) == 0

    def test_options_round_trip(self):
        pkt = make_packet(options=b"\x01\x01\x01\x00")
        parsed = IPv4Packet.parse(pkt.serialize())
        assert parsed.options == b"\x01\x01\x01\x00"
        assert parsed.header_length == 24

    def test_strict_parse_rejects_corrupted_header(self):
        raw = bytearray(make_packet().serialize())
        raw[8] ^= 0xFF  # flip TTL without fixing the checksum
        IPv4Packet.parse(bytes(raw))  # lenient parse accepts
        from repro.packet import ChecksumError

        with pytest.raises(ChecksumError):
            IPv4Packet.parse(bytes(raw), strict=True)

    def test_parse_accepts_trailing_padding(self):
        pkt = make_packet()
        parsed = IPv4Packet.parse(pkt.serialize() + b"\x00" * 6)
        assert parsed.payload == pkt.payload

    def test_truncated_header_raises(self):
        with pytest.raises(TruncatedPacketError):
            IPv4Packet.parse(b"\x45\x00")

    def test_truncated_payload_raises(self):
        raw = make_packet(payload=b"x" * 100).serialize()
        with pytest.raises(TruncatedPacketError):
            IPv4Packet.parse(raw[:50])

    def test_rejects_ipv6_version(self):
        raw = bytearray(make_packet().serialize())
        raw[0] = (6 << 4) | 5
        with pytest.raises(MalformedPacketError):
            IPv4Packet.parse(bytes(raw))


class TestValidation:
    def test_rejects_unaligned_fragment_offset(self):
        with pytest.raises(MalformedPacketError):
            make_packet(fragment_offset=3)

    def test_rejects_huge_fragment_offset(self):
        with pytest.raises(MalformedPacketError):
            make_packet(fragment_offset=0x10000)

    def test_rejects_unpadded_options(self):
        with pytest.raises(MalformedPacketError):
            make_packet(options=b"\x01")

    def test_rejects_bad_ttl(self):
        with pytest.raises(MalformedPacketError):
            make_packet(ttl=300)

    def test_rejects_oversized_payload(self):
        with pytest.raises(MalformedPacketError):
            make_packet(payload=b"x" * 65536).serialize()


class TestFragmentation:
    def test_packet_below_mtu_is_untouched(self):
        pkt = make_packet(payload=b"x" * 100)
        frags = fragment(pkt, 1500)
        assert frags == [pkt]

    def test_fragments_cover_payload_exactly(self):
        pkt = make_packet(payload=bytes(range(256)) * 10)
        frags = fragment(pkt, 500)
        assert all(f.total_length <= 500 for f in frags)
        reassembled = bytearray(len(pkt.payload))
        for f in frags:
            reassembled[f.fragment_offset : f.fragment_offset + len(f.payload)] = f.payload
        assert bytes(reassembled) == pkt.payload

    def test_mf_bits(self):
        frags = fragment(make_packet(payload=b"x" * 3000), 1500)
        assert all(f.more_fragments for f in frags[:-1])
        assert not frags[-1].more_fragments

    def test_nonfinal_fragments_are_8_byte_aligned(self):
        frags = fragment(make_packet(payload=b"x" * 3000), 777)
        for f in frags[:-1]:
            assert len(f.payload) % 8 == 0

    def test_refragmenting_a_fragment_preserves_mf(self):
        middle = make_packet(payload=b"x" * 1000, more_fragments=True, fragment_offset=512)
        frags = fragment(middle, 300)
        assert all(f.more_fragments for f in frags)
        assert frags[0].fragment_offset == 512

    def test_df_refuses(self):
        with pytest.raises(MalformedPacketError):
            fragment(make_packet(payload=b"x" * 3000, dont_fragment=True), 1500)

    def test_tiny_mtu_refuses(self):
        with pytest.raises(MalformedPacketError):
            fragment(make_packet(payload=b"x" * 3000), 24)

    def test_fragment_key_groups_by_id(self):
        a = make_packet(identification=7)
        b = make_packet(identification=7, protocol=IP_PROTO_UDP)
        assert a.fragment_key != b.fragment_key
        assert a.fragment_key == make_packet(identification=7).fragment_key


octet = st.integers(min_value=0, max_value=255)
ip_addr = st.builds(lambda a, b, c, d: f"{a}.{b}.{c}.{d}", octet, octet, octet, octet)


@given(
    src=ip_addr,
    dst=ip_addr,
    payload=st.binary(max_size=2000),
    ttl=st.integers(min_value=0, max_value=255),
    ident=st.integers(min_value=0, max_value=0xFFFF),
    proto=st.sampled_from([IP_PROTO_TCP, IP_PROTO_UDP, 47]),
)
def test_serialize_parse_round_trip(src, dst, payload, ttl, ident, proto):
    pkt = IPv4Packet(
        src=src, dst=dst, protocol=proto, payload=payload, ttl=ttl, identification=ident
    )
    assert IPv4Packet.parse(pkt.serialize()) == pkt


@given(payload=st.binary(min_size=1, max_size=5000), mtu=st.integers(min_value=48, max_value=1500))
def test_fragmentation_always_reassembles(payload, mtu):
    pkt = IPv4Packet(src="1.2.3.4", dst="5.6.7.8", payload=payload)
    frags = fragment(pkt, mtu)
    rebuilt = bytearray(len(payload))
    seen_end = 0
    for f in frags:
        rebuilt[f.fragment_offset : f.fragment_offset + len(f.payload)] = f.payload
        seen_end = max(seen_end, f.fragment_offset + len(f.payload))
    assert bytes(rebuilt) == payload
    assert seen_end == len(payload)
